#!/usr/bin/env python
"""Use case 2.1.3 — Legal Compliance (e-discovery).

The paper's scenario: litigation discovery must "locate and preserve
broad classes of information", where relevance "may be due to indirect
contractual relationships ... and may require determining the transitive
closure of relationships extracted from the content."

Run:  python examples/legal_discovery.py
"""

from repro import ApplianceConfig, Impliance
from repro.discovery.annotators import RegexAnnotator
from repro.discovery.relationships import RelationshipRule
from repro.index.joins import JoinEdge
from repro.workloads.legal import LegalWorkload


def main() -> None:
    workload = LegalWorkload(n_companies=10, n_contracts=14, n_emails=80, seed=31)

    app = Impliance(ApplianceConfig(n_data_nodes=3, n_grid_nodes=2))
    # Contract ids like CTR-0007 inside e-mail bodies are extracted and
    # linked back to the contract master rows.
    app.add_annotator(
        RegexAnnotator("contract-ref", "contract_ref", r"\bCTR-\d{4}\b", "ref")
    )

    print("== infusing companies, contracts, and mailboxes ==")
    for doc in workload.documents():
        app.ingest_document(doc)
    print("documents:", app.doc_count)
    app.discover()
    print("annotations:", app.discovery.stats.annotations_created)

    # Build the contract graph from structured rows: partner edges and
    # governs edges (contract row -> both parties).
    for row in app.sql("SELECT contract_id, party_a, party_b FROM contracts").rows:
        contract_doc = f"lgl-contract-{row['contract_id']}"
        a, b = f"lgl-co-{row['party_a']}", f"lgl-co-{row['party_b']}"
        app.indexes.joins.add(JoinEdge("partner", a, b))
        app.indexes.joins.add(JoinEdge("governs", contract_doc, a))
        app.indexes.joins.add(JoinEdge("governs", contract_doc, b))
    # Link annotated mails to the contracts they cite.
    for doc in list(app.documents()):
        if doc.metadata.get("label") != "contract_ref":
            continue
        ref = doc.content["annotation"]["payload"]["ref"]  # e.g. CTR-0007
        contract_doc = f"lgl-contract-{int(ref.split('-')[1])}"
        mail_doc = doc.content["annotation"]["subject"]
        app.indexes.joins.add(JoinEdge("cites", mail_doc, contract_doc))

    target = "lgl-co-0"
    print(f"\n== litigation target: {workload.company_name(0)} ({target}) ==")

    # 1. Transitive closure of partnership relationships.
    partners = app.graph().closure(target, relations={"partner"})
    truth = {f"lgl-co-{c}" for c in workload.transitive_partners(0)}
    print(f"direct+indirect partners found: {len(partners)} "
          f"(ground truth {len(truth)}, match={partners == truth})")

    # 2. Everything pertinent: closure over all relations, bounded hops.
    pertinent = app.graph().closure(target, max_hops=3)
    mails = sorted(d for d in pertinent if d.startswith("lgl-mail"))
    contracts = sorted(d for d in pertinent if d.startswith("lgl-contract"))
    print(f"pertinent within 3 hops: {len(contracts)} contracts, {len(mails)} e-mails")

    responsive_truth = workload.responsive_emails(0)
    found = set(mails)
    if responsive_truth:
        recall = len(found & responsive_truth) / len(responsive_truth)
        print(f"responsive-mail recall vs ground truth: {recall:.2f}")

    # 3. How is a specific mail connected to the target company?
    if mails:
        chain = app.graph().how_connected(mails[0], target, max_hops=4)
        print("example evidence chain:", chain.render() if chain else "n/a")

    # 4. Legal hold: preservation through immutable versions.
    print("\n== legal hold ==")
    exhibit = mails[0] if mails else "lgl-mail-0"
    original = app.lookup(exhibit)
    app.update_document(exhibit, {"email": {"status": "processed by counsel"}})
    home = app.cluster.home_of(exhibit)
    preserved = home.store.get_version(exhibit, original.version)
    print(f"exhibit {exhibit}: head is v{app.lookup(exhibit).version}, "
          f"original v{preserved.version} preserved "
          f"(digest {preserved.content_digest()[:12]})")

    # 5. Proactive auditing: who is most entangled?
    print("\n== most-connected documents (audit hot spots) ==")
    for doc_id, degree in app.graph().hubs(top=5):
        print(f"  {doc_id}: degree {degree}")


if __name__ == "__main__":
    main()
