#!/usr/bin/env python
"""Operations & compliance tour: the Section-4 "other issues" in action.

Shows the extension subsystems working together on one appliance:
policy-driven access control with auditing, branching/merging versions,
lineage tracing, rolling software upgrades, and autonomic failure
recovery — all with zero administrator actions on the ledger.

Run:  python examples/secure_operations.py
"""

from repro import ApplianceConfig, Impliance
from repro.core.upgrades import UpgradePolicy
from repro.security import (
    AccessPolicy, Action, Effect, Principal, Rule, Scope,
)
from repro.storage.branching import BranchManager, MergeConflict
from repro.storage.lineage import LineageIndex


def main() -> None:
    app = Impliance(ApplianceConfig(n_data_nodes=3, n_grid_nodes=2,
                                    product_lexicon=("WidgetPro",)))

    # -- data: contracts plus a public note -----------------------------
    app.ingest({"kid": 1, "party": "Acme", "value": 250_000.0},
               table="contracts", doc_id="k1")
    app.ingest({"emp": 7, "amount": 180_000.0}, table="salaries", doc_id="pay7")
    app.ingest("public note: the WidgetPro launch went great", doc_id="note1")
    app.discover()

    # -- 1. policy-driven access control ---------------------------------
    print("== access control ==")
    policy = AccessPolicy([
        Rule("analysts-read", ["analyst"], [Action.READ, Action.QUERY]),
        Rule("hide-payroll", ["analyst"], [Action.READ, Action.QUERY],
             Scope(table="salaries"), Effect.DENY),
        Rule("legal-writes", ["legal"], [Action.READ, Action.QUERY, Action.UPDATE]),
    ])
    analyst = app.secure_session(Principal("ana", ["analyst"]), policy)
    legal = app.secure_session(Principal("lee", ["legal"]), policy, analyst.audit)

    print("analyst sees contracts:", len(analyst.sql("SELECT * FROM contracts").rows))
    print("analyst sees salaries: ", len(analyst.sql("SELECT * FROM salaries").rows))
    print("analyst reads pay7:    ", analyst.lookup("pay7"))
    print("legal   reads pay7:    ", legal.lookup("pay7") is not None)

    # -- 2. auditing: who touched what / what touched this ---------------
    print("\n== audit trail ==")
    for record in analyst.audit.accesses_to("pay7"):
        verdict = "granted" if record.granted else "DENIED"
        print(f"  ts={record.ts} {record.principal} {record.action.value} pay7: {verdict}")
    print("denials on file:", len(analyst.audit.denials()))

    # -- 3. branching & merging (contract renegotiation) -----------------
    print("\n== branching versions ==")
    home = app.cluster.home_of("k1")
    branches = BranchManager(home.store)
    branches.create_branch("k1", "renegotiation")
    branches.commit("k1", "renegotiation",
                    {"contracts": {"kid": 1, "party": "Acme", "value": 300_000.0}})
    print("trunk value: ", branches.head("k1").first(("contracts", "value")))
    print("branch value:", branches.head("k1", "renegotiation").first(("contracts", "value")))
    merged = branches.merge("k1", "renegotiation")
    print(f"merged to trunk v{merged.version}:",
          merged.first(("contracts", "value")))

    # -- 4. lineage: provenance of discovery output ----------------------
    print("\n== lineage ==")
    lineage = LineageIndex(app.documents())
    derived = sorted(lineage.impact("note1"))
    print(f"derived from note1: {derived}")
    if derived:
        trace = lineage.trace(derived[0])
        print(f"trace of {derived[0]}: depth={trace.depth}, "
              f"base sources={trace.base_sources()}")

    # -- 5. rolling upgrade under an availability policy ------------------
    print("\n== rolling software upgrade ==")
    report = app.upgrade_software("v2.4", UpgradePolicy(max_offline_fraction=0.34))
    print(f"upgraded {report.nodes_upgraded} nodes in {report.wave_count} waves, "
          f"finished at t={report.finish_ms:.0f} sim-ms")

    # -- 6. failure: autonomic recovery, nobody paged ---------------------
    print("\n== failure injection ==")
    victim = app.cluster.data_nodes[0].node_id
    app.fail_node(victim)
    health = app.health()
    print(f"failed {victim}; topology now {len(health['topology']['data'])} data nodes; "
          f"under-replicated={health['under_replicated']}, "
          f"admin actions={health['admin_actions']}")


if __name__ == "__main__":
    main()
