#!/usr/bin/env python
"""Use case 2.1.2 — Integrating Content and Data.

The paper's scenario: insurance companies need to "find the names of
procedures ... within the text of claim forms" and relate that to
structured data about the patient, the provider, and the procedure, to
"determine if the repair estimate is excessive."

Run:  python examples/insurance_claims.py
"""

from repro import ApplianceConfig, Impliance
from repro.discovery.relationships import RelationshipRule
from repro.model.views import annotation_view
from repro.workloads.insurance import InsuranceWorkload


def main() -> None:
    workload = InsuranceWorkload(n_patients=30, n_providers=8, n_claims=120, seed=23)

    app = Impliance(ApplianceConfig(
        n_data_nodes=3, n_grid_nodes=2,
        procedure_lexicon=workload.procedure_lexicon(),
    ))
    # Procedure names found in free-text forms link to the structured
    # claims that bill them.
    app.add_relationship_rule(
        RelationshipRule(
            "bills_procedure", "procedure_mention", "procedure",
            ("claims", "procedure"),
        )
    )

    print("== infusing claims, forms, and XML accident reports ==")
    for doc in workload.documents():
        app.ingest_document(doc)
    print("documents:", app.doc_count)

    app.discover()
    print("annotations:", app.discovery.stats.annotations_created,
          "| associations:", app.indexes.joins.edge_count)

    # -- structured side: typical cost per procedure ---------------------
    print("\n== typical billed amount per procedure (SQL) ==")
    typical_rows = app.sql(
        "SELECT procedure, count(*) AS n, avg(amount) AS typical, min(amount) AS floor "
        "FROM claims GROUP BY procedure ORDER BY typical DESC"
    ).rows
    floors = {}
    for row in typical_rows:
        floors[row["procedure"]] = row["floor"]
        print(f"  {row['procedure']:>14}: n={row['n']:>3}  avg=${row['typical']:>9,.2f}")

    # -- excess detection: structured + mining, cross-checked ------------
    print("\n== excessive estimates (amount > 2x the procedure floor) ==")
    suspects = set()
    for row in app.sql("SELECT claim_id, procedure, amount FROM claims").rows:
        if row["amount"] > 2.0 * floors[row["procedure"]]:
            suspects.add(f"ins-claim-{row['claim_id']}")
            print(f"  claim {row['claim_id']:>3}: {row['procedure']} at "
                  f"${row['amount']:,.2f}")

    # The piggyback miner reaches the same conclusions from page traffic
    # other queries already paid for.
    for _ in app.documents():
        pass
    mined = {doc_id for doc_id, _, _ in app.miner.exceptions(("claims", "amount"), 2.5)}
    planted = workload.inflated_claims()
    print(f"\nplanted frauds: {len(planted)} | SQL flagged: {len(suspects)} "
          f"| miner flagged: {len(mined)}")
    print("SQL recall:   ", round(len(suspects & planted) / len(planted), 2))
    print("miner overlap:", round(len(mined & planted) / len(planted), 2))

    # -- content side: from a suspicious form back to its claim ----------
    print("\n== content-to-data navigation ==")
    hits = app.search("estimate seems high needs review", top_k=3)
    form = hits[0]
    related = app.graph().related(form.doc_id, relation="bills_procedure")
    print(f"  suspicious form {form.doc_id} links to claims: {sorted(related)[:4]}")

    # -- unified structural search across schemas ------------------------
    print("\n== every document with a monetary 'amount' or 'estimate' ==")
    amounts = app.indexes.structure.docs_with_suffix(("amount",))
    estimates = app.indexes.structure.docs_with_suffix(("estimate",))
    print(f"  relational claims with /amount: {len(amounts)}")
    print(f"  XML accident reports with /estimate: {len(estimates)}")

    # Expose discovered procedures to the legacy reporting tool.
    app.define_view(annotation_view("found_procedures", "procedure_mention", ["procedure"]))
    top = app.sql(
        "SELECT procedure, count(*) AS k FROM found_procedures "
        "GROUP BY procedure ORDER BY k DESC LIMIT 3"
    ).rows
    print("\n== most-mentioned procedures in free text (via view) ==")
    for row in top:
        print(f"  {row['procedure']:>14}: {row['k']}")


if __name__ == "__main__":
    main()
