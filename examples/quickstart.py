#!/usr/bin/env python
"""Quickstart: the Impliance "stewing pot" in five minutes.

Throw data of any shape in with no preparation — one ``ingest()`` call,
format sniffed — search it immediately, let discovery simmer, then query
the enriched result through all four interfaces (keyword, faceted, SQL,
graph).  The appliance watches itself too: the closing stats snapshot
comes from the built-in telemetry layer.

Run:  python examples/quickstart.py
"""

from repro import ApplianceConfig, Impliance, format_snapshot
from repro.discovery.relationships import RelationshipRule
from repro.model.views import annotation_view


def main() -> None:
    # 1. "Deployment": construct the appliance. That's the whole install.
    app = Impliance(ApplianceConfig(product_lexicon=("WidgetPro", "GadgetMax")))
    print("appliance online:", app.cluster.inventory.total, "nodes detected")

    # 2. Infuse data in whatever shape it arrives. No schema declared,
    #    no format flag needed — ingest() sniffs it.
    app.ingest({"pid": 1, "name": "WidgetPro", "price": 129.0}, table="products")
    app.ingest({"pid": 2, "name": "GadgetMax", "price": 349.0}, table="products")
    app.ingest(
        "Call transcript: Ms. Alice Johnson is delighted with the WidgetPro. "
        "She may also want the GadgetMax. Reach her at 555-123-4567."
    )
    app.ingest(
        "From: alice@example.com\nTo: sales@vendor.example\n"
        "Subject: GadgetMax quote\n\n"
        "Hi - Alice Johnson here again. Could you quote the GadgetMax? "
        "My budget is $400.00."
    )
    app.ingest("<inventory><sku>WidgetPro</sku><stock>42</stock></inventory>")
    print("documents infused:", app.doc_count)

    # 3. Ladle out the unchanged ingredients immediately.
    rows = app.sql("SELECT name, price FROM products ORDER BY price").rows
    print("sql over fresh rows:", rows)
    hits = app.search("delighted WidgetPro")
    print("keyword hit:", hits[0].doc_id)

    # 4. Let discovery simmer: annotators, entity resolution, join indexes.
    app.add_relationship_rule(
        RelationshipRule("mentions", "product_mention", "product", ("products", "name"))
    )
    processed = app.discover()
    print(f"discovery processed {processed} docs, "
          f"created {app.discovery.stats.annotations_created} annotations, "
          f"found {app.indexes.joins.edge_count} associations")

    # 5. The enriched stew: ask how things are connected — every query
    #    interface returns the same QueryResult shape.
    transcript = hits[0].doc_id
    result = app.connections(transcript, "row-products-000001")
    print("connection:", result.connection.render() if result else "none")

    # 6. Annotations come back to SQL through a system-supplied view.
    app.define_view(annotation_view("people", "person", ["name"]))
    print("people discovered:", app.sql("SELECT DISTINCT name FROM people").rows)

    # 7. Guided (faceted) navigation over everything.
    session = app.faceted()
    print("formats in the pot:", session.facet_counts("format"))

    # 8. One health pane, zero admin actions.
    print("health:", app.health())

    # 9. And the appliance's own account of what it just did: documents
    #    ingested, annotations produced, queries served, span timings.
    print()
    print(format_snapshot(app.stats(), title="appliance telemetry"))


if __name__ == "__main__":
    main()
