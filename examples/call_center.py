#!/usr/bin/env python
"""Use case 2.1.1 — Exploiting Customer Relationship Management.

The paper's scenario: capture what customers say on support calls,
extract the products they mention and how they feel about them, relate
that to the customer master data, and surface cross-sell candidates —
happy customers whose peers bought products they do not own yet.

Run:  python examples/call_center.py
"""

from collections import defaultdict

from repro import ApplianceConfig, Impliance
from repro.discovery.relationships import RelationshipRule
from repro.model.views import annotation_view
from repro.workloads.callcenter import CallCenterWorkload


def main() -> None:
    workload = CallCenterWorkload(n_customers=30, n_transcripts=120, seed=11)

    app = Impliance(ApplianceConfig(
        n_data_nodes=3, n_grid_nodes=2,
        product_lexicon=workload.product_lexicon(),
    ))
    app.add_relationship_rule(
        RelationshipRule("mentions", "product_mention", "product", ("products", "name"))
    )

    print("== infusing CRM corpus (master data + transcripts) ==")
    for doc in workload.documents():
        app.ingest_document(doc)
    print("documents:", app.doc_count, "| discovery backlog:", app.discovery.backlog)

    print("\n== background discovery pass ==")
    app.discover()
    stats = app.discovery.stats
    print(f"annotations: {stats.annotations_created}, associations: {stats.edges_added}")

    # Expose sentiment to plain SQL (Figure 2's view mechanism).
    app.define_view(
        annotation_view("call_sentiment", "sentiment", ["polarity", "score"])
    )
    app.define_view(
        annotation_view("product_mentions", "product_mention", ["product"])
    )

    print("\n== product sentiment dashboard (pure SQL over discovery output) ==")
    mood = app.sql(
        "SELECT polarity, count(*) AS calls FROM call_sentiment "
        "GROUP BY polarity ORDER BY calls DESC"
    ).rows
    for row in mood:
        print(f"  {row['polarity']:>9}: {row['calls']} calls")

    print("\n== which products are people talking about? ==")
    buzz = app.sql(
        "SELECT product, count(*) AS mentions FROM product_mentions "
        "GROUP BY product ORDER BY mentions DESC LIMIT 5"
    ).rows
    for row in buzz:
        print(f"  {row['product']:>10}: {row['mentions']} mentions")

    # Cross-sell: for each resolved caller, what they praised and what
    # similar (business-segment) peers also discuss.
    print("\n== cross-sell candidates ==")
    praised_by_doc = defaultdict(set)
    for row in app.sql(
        "SELECT subject_id, polarity FROM call_sentiment WHERE polarity = 'positive'"
    ).rows:
        praised_by_doc[row["subject_id"]] = set()
    for row in app.sql("SELECT subject_id, product FROM product_mentions").rows:
        if row["subject_id"] in praised_by_doc:
            praised_by_doc[row["subject_id"]].add(row["product"])

    candidates = 0
    for entity in app.discovery.resolver.entities("person")[:8]:
        mentioned = set()
        for doc_id in entity.doc_ids:
            mentioned |= praised_by_doc.get(doc_id, set())
        if not mentioned:
            continue
        not_yet = sorted(set(workload.product_lexicon()) - mentioned)[:2]
        if not_yet:
            candidates += 1
            print(f"  {entity.canonical}: happy with {sorted(mentioned)}, "
                  f"pitch {not_yet}")
    print(f"({candidates} candidates found)")

    # Guided search: drill from everything to angry calls about a product.
    print("\n== faceted drill-down: unhappy GadgetMax calls ==")
    hot_product = buzz[0]["product"]
    session = app.faceted(query=hot_product)
    print("  matching calls:", session.count())
    angry = [
        hit.doc_id
        for hit in session.results(top_k=20)
        if hit.document is not None
        and any(
            row["subject_id"] == hit.doc_id and row["polarity"] == "negative"
            for row in app.sql("SELECT subject_id, polarity FROM call_sentiment").rows
        )
    ]
    print(f"  of which negative: {len(angry)} -> route to retention team")


if __name__ == "__main__":
    main()
