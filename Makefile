PYTHON ?= python
export PYTHONPATH := src

.PHONY: test verify smoke bench

test:
	$(PYTHON) -m pytest -x -q

smoke:
	$(PYTHON) benchmarks/bench_fig1_pipeline.py --quick

# Tier-1 gate: the full unit suite plus an end-to-end pipeline smoke.
verify: test smoke

bench:
	$(PYTHON) -m pytest benchmarks -q
