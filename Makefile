PYTHON ?= python
export PYTHONPATH := src

.PHONY: test verify smoke chaos-smoke exec-smoke cache-smoke bench

test:
	$(PYTHON) -m pytest -x -q

smoke:
	$(PYTHON) benchmarks/bench_fig1_pipeline.py --quick

chaos-smoke:
	$(PYTHON) benchmarks/bench_chaos_availability.py --quick

exec-smoke:
	$(PYTHON) benchmarks/bench_exec_vectorized.py --quick

cache-smoke:
	$(PYTHON) benchmarks/bench_cache.py --quick

# Tier-1 gate: the full unit suite plus an end-to-end pipeline smoke,
# a fast fault-injection/availability smoke, the vectorized-engine
# speedup smoke (writes BENCH_exec.json), and the cache-hierarchy
# speedup smoke (writes BENCH_cache.json).
verify: test smoke chaos-smoke exec-smoke cache-smoke

bench:
	$(PYTHON) -m pytest benchmarks -q
