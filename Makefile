PYTHON ?= python
export PYTHONPATH := src

.PHONY: test verify smoke chaos-smoke bench

test:
	$(PYTHON) -m pytest -x -q

smoke:
	$(PYTHON) benchmarks/bench_fig1_pipeline.py --quick

chaos-smoke:
	$(PYTHON) benchmarks/bench_chaos_availability.py --quick

# Tier-1 gate: the full unit suite plus an end-to-end pipeline smoke
# and a fast fault-injection/availability smoke.
verify: test smoke chaos-smoke

bench:
	$(PYTHON) -m pytest benchmarks -q
