PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint verify smoke chaos-smoke exec-smoke cache-smoke ingest-smoke serving-smoke ivm-smoke ivm-test storage-smoke storage-test recovery-smoke recovery-test adaptive-smoke adaptive-test perf-regress coverage bench

test:
	$(PYTHON) -m pytest -x -q

# Correctness lint (config in pyproject.toml).  Falls back to a syntax
# gate when ruff is not installed, so verify works in minimal containers.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	elif $(PYTHON) -c "import ruff" >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; running syntax gate (compileall)"; \
		$(PYTHON) -m compileall -q src tests benchmarks; \
	fi

smoke:
	$(PYTHON) benchmarks/bench_fig1_pipeline.py --quick

chaos-smoke:
	$(PYTHON) benchmarks/bench_chaos_availability.py --quick

exec-smoke:
	$(PYTHON) benchmarks/bench_exec_vectorized.py --quick

cache-smoke:
	$(PYTHON) benchmarks/bench_cache.py --quick

ingest-smoke:
	$(PYTHON) benchmarks/bench_ingest.py --quick

serving-smoke:
	$(PYTHON) benchmarks/bench_serving.py --quick

ivm-smoke:
	$(PYTHON) benchmarks/bench_ivm.py --quick

# Native columnar page format (docs/STORAGE.md): stored-bytes reduction
# smoke (writes BENCH_storage.json).
storage-smoke:
	$(PYTHON) benchmarks/bench_ablation_storage.py --quick

# The storage-marked tests on their own (encoding round-trip properties
# and columnar-scan identity).
storage-test:
	$(PYTHON) -m pytest -m storage -q

# The ivm-marked tests on their own (the differential IVM harness and
# the continuous-query unit tier).
ivm-test:
	$(PYTHON) -m pytest -m ivm -q

# Point-in-time recovery smoke (docs/RECOVERY.md): kills a data node
# mid-ingest and asserts RPO=0 / finite RTO (writes BENCH_recovery.json).
recovery-smoke:
	$(PYTHON) benchmarks/bench_recovery.py --quick

# The recovery-marked tests on their own (replication units, restore
# fidelity properties, and the repair bugfix sweep).
recovery-test:
	$(PYTHON) -m pytest -m recovery -q

# Compiled pipelines + mid-query re-optimization (docs/ADAPTIVE.md):
# stale-stats gap closure, degraded-node escape, and the compiled-vs-
# interpreted wall-clock win (writes BENCH_adaptive.json).
adaptive-smoke:
	$(PYTHON) benchmarks/bench_adaptive.py --quick

# The adaptive-marked property tests on their own (compiled + adaptive
# execution equivalence, including chaos penalties).
adaptive-test:
	$(PYTHON) -m pytest -m adaptive -q

# Re-runs the quick benchmarks into scratch files and fails on a >20%
# drop of any committed headline speedup (tools/perf_regress.py).
perf-regress:
	$(PYTHON) tools/perf_regress.py

# Line-coverage floor on the invalidation/IVM core (repro.cache,
# repro.query.materialized, repro.query.ivm).  Uses pytest-cov when
# installed; stdlib trace fallback otherwise.
coverage:
	$(PYTHON) tools/coverage_gate.py

# Tier-1 gate: lint, the full unit suite, an end-to-end pipeline smoke,
# a fast fault-injection/availability smoke, the vectorized-engine
# speedup smoke (writes BENCH_exec.json), the cache-hierarchy speedup
# smoke (writes BENCH_cache.json), the batched-ingest speedup smoke
# (writes BENCH_ingest.json), the multi-tenant serving smoke (writes
# BENCH_serving.json; also runs under `pytest -m serving`), the
# ivm-marked differential tests, the incremental-maintenance smoke
# (writes BENCH_ivm.json), the columnar stored-bytes smoke (writes
# BENCH_storage.json), and the point-in-time recovery smoke asserting
# RPO=0 under a mid-ingest crash (writes BENCH_recovery.json), the
# adaptive-marked equivalence properties, the compiled-pipeline /
# re-optimization smoke (writes BENCH_adaptive.json), and the
# perf-regression gate over the committed headline speedups.
verify: lint test smoke chaos-smoke exec-smoke cache-smoke ingest-smoke serving-smoke ivm-test ivm-smoke storage-smoke recovery-smoke adaptive-test adaptive-smoke perf-regress

bench:
	$(PYTHON) -m pytest benchmarks -q
