#!/usr/bin/env python
"""Line-coverage gate for the invalidation/IVM core (``make coverage``).

Runs the cache + materialization + IVM test files and fails when line
coverage of ``repro.cache`` and ``repro.query.materialized`` /
``repro.query.ivm`` drops below the floor — the delta machinery is the
one place a silently untested branch turns into a stale answer.

Prefers ``pytest-cov`` when it is installed.  In minimal containers
(no pytest-cov, no coverage.py) it falls back to the stdlib ``trace``
module: the test run executes under a line tracer, executable lines are
recovered from the compiled code objects, and the ratio is gated the
same way.  The fallback's line accounting is slightly coarser than
coverage.py's (it sees lines the interpreter starts, not statements), so
the floor is set with margin below the measured value.
"""

from __future__ import annotations

import dis
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Modules the gate measures.
TARGET_FILES = [
    "src/repro/cache/__init__.py",
    "src/repro/cache/bus.py",
    "src/repro/cache/config.py",
    "src/repro/cache/hierarchy.py",
    "src/repro/cache/plancache.py",
    "src/repro/cache/probememo.py",
    "src/repro/cache/resultcache.py",
    "src/repro/query/materialized.py",
    "src/repro/query/ivm.py",
]

#: The tests that exercise them.
TEST_FILES = [
    "tests/test_cache.py",
    "tests/test_cache_properties.py",
    "tests/test_materialized.py",
    "tests/test_ivm.py",
    "tests/test_ivm_properties.py",
]

#: Fail-under floor (percent, across all target files combined).
FLOOR = 80.0

PYTEST_ARGS = ["-q", "-p", "no:cacheprovider", "-W", "ignore::DeprecationWarning"]


def _have_pytest_cov() -> bool:
    try:
        import pytest_cov  # noqa: F401

        return True
    except ImportError:
        return False


def run_with_pytest_cov() -> int:
    import subprocess

    cmd = [
        sys.executable,
        "-m",
        "pytest",
        "--cov=repro.cache",
        "--cov=repro.query.materialized",
        "--cov=repro.query.ivm",
        f"--cov-fail-under={FLOOR}",
        *PYTEST_ARGS,
        *TEST_FILES,
    ]
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    return subprocess.call(cmd, cwd=REPO, env=env)


# ----------------------------------------------------------------------
# stdlib fallback
# ----------------------------------------------------------------------
def _executable_lines(path: str) -> set:
    """Line numbers the interpreter can start, from the compiled code
    object tree (the stdlib analogue of coverage.py's statement set)."""
    with open(path) as fh:
        code = compile(fh.read(), path, "exec")
    lines = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        for _, line in dis.findlinestarts(obj):
            if line is not None:
                lines.add(line)
        for const in obj.co_consts:
            if hasattr(const, "co_code"):
                stack.append(const)
    return lines


def run_with_trace() -> int:
    import trace

    import pytest

    sys.path.insert(0, os.path.join(REPO, "src"))
    os.chdir(REPO)
    tracer = trace.Trace(count=1, trace=0, ignoredirs=[sys.prefix, sys.exec_prefix])
    rc = tracer.runfunc(pytest.main, PYTEST_ARGS + TEST_FILES)
    if rc not in (0, None):
        print(f"coverage gate: test run failed (exit {rc})")
        return int(rc)

    counts = tracer.results().counts  # {(filename, lineno): hits}
    executed_by_file: dict = {}
    for (filename, lineno), _ in counts.items():
        executed_by_file.setdefault(os.path.abspath(filename), set()).add(lineno)

    total_executable = 0
    total_executed = 0
    print(f"\n{'file':<44} {'lines':>6} {'hit':>6} {'cover':>7}")
    print("-" * 66)
    for rel in TARGET_FILES:
        path = os.path.join(REPO, rel)
        executable = _executable_lines(path)
        executed = executed_by_file.get(os.path.abspath(path), set()) & executable
        total_executable += len(executable)
        total_executed += len(executed)
        pct = 100.0 * len(executed) / len(executable) if executable else 100.0
        print(f"{rel:<44} {len(executable):>6} {len(executed):>6} {pct:>6.1f}%")
    total_pct = 100.0 * total_executed / total_executable if total_executable else 100.0
    print("-" * 66)
    print(f"{'TOTAL':<44} {total_executable:>6} {total_executed:>6} {total_pct:>6.1f}%")

    if total_pct < FLOOR:
        print(f"\ncoverage gate FAILED: {total_pct:.1f}% < floor {FLOOR:.1f}%")
        return 1
    print(f"\ncoverage gate passed: {total_pct:.1f}% >= floor {FLOOR:.1f}%")
    return 0


def main() -> int:
    if _have_pytest_cov():
        print("coverage gate: using pytest-cov")
        return run_with_pytest_cov()
    print("coverage gate: pytest-cov not installed; using stdlib trace fallback")
    return run_with_trace()


if __name__ == "__main__":
    raise SystemExit(main())
