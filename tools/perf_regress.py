"""Performance-regression gate over the committed benchmark headlines.

Re-runs the quick benchmarks into scratch files and compares each
headline ratio against its committed baseline (``git show HEAD:<file>``;
falls back to the working-tree copy when the file is new or the tree is
not a git checkout).  A headline that lands more than ``TOLERANCE``
below its baseline fails the gate — faster is always fine.

Headlines are *ratios* (speedups), not absolute wall times, so the gate
is stable across machines: a slower container slows both sides of every
comparison.  Run by ``make perf-regress`` (wired into ``make verify``).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Allowed relative drop before the gate fails (0.2 == 20%).
TOLERANCE = 0.2

#: Fresh-run attempts per benchmark.  Headlines are wall-clock ratios,
#: so a single quick run can dip below the floor on pure scheduler
#: noise; the gate keeps the per-headline best across attempts and
#: stops early once everything clears.  A real regression fails all
#: three attempts.
MAX_ATTEMPTS = 3

#: (committed baseline, benchmark script, headline paths into the JSON)
CHECKS = [
    (
        "BENCH_exec.json",
        "benchmarks/bench_exec_vectorized.py",
        ["speedup", "columnar.speedup"],
    ),
    (
        "BENCH_cache.json",
        "benchmarks/bench_cache.py",
        ["speedup"],
    ),
    (
        "BENCH_adaptive.json",
        "benchmarks/bench_adaptive.py",
        ["compiled.speedup", "chaos.sim_speedup"],
    ),
]


def load_baseline(name: str):
    """The committed JSON for *name*, else the working-tree copy."""
    try:
        blob = subprocess.run(
            ["git", "show", f"HEAD:{name}"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout
        return json.loads(blob), "HEAD"
    except (subprocess.CalledProcessError, FileNotFoundError, json.JSONDecodeError):
        pass
    path = os.path.join(REPO_ROOT, name)
    if os.path.exists(path):
        with open(path) as fh:
            return json.load(fh), "working tree"
    return None, None


def dig(summary: dict, dotted: str):
    node = summary
    for part in dotted.split("."):
        node = node[part]
    return float(node)


def run_fresh(script: str, out_path: str) -> dict | None:
    """One quick run of *script* into *out_path*; None if the run errored."""
    proc = subprocess.run(
        [sys.executable, script, "--quick", "--out", out_path],
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        tail = "\n".join((proc.stderr or proc.stdout).strip().splitlines()[-6:])
        print(f"  {script}: attempt errored (exit {proc.returncode}):\n{tail}")
        return None
    with open(out_path) as fh:
        return json.load(fh)


def check_benchmark(baseline_name, script, headlines, scratch) -> list:
    """Regressed-headline messages for one benchmark (empty == pass)."""
    baseline, source = load_baseline(baseline_name)
    if baseline is None:
        print(f"  {baseline_name}: no baseline anywhere, skipping")
        return []
    best = {}
    ran = 0
    for attempt in range(MAX_ATTEMPTS):
        fresh = run_fresh(script, os.path.join(scratch, baseline_name))
        if fresh is None:
            continue
        ran += 1
        for headline in headlines:
            got = dig(fresh, headline)
            best[headline] = max(best.get(headline, got), got)
        floors = (dig(baseline, h) * (1.0 - TOLERANCE) for h in headlines)
        if all(best[h] >= f for h, f in zip(headlines, floors)):
            break
    if ran == 0:
        return [f"{baseline_name}: all {MAX_ATTEMPTS} fresh runs errored"]
    failures = []
    for headline in headlines:
        want = dig(baseline, headline)
        got = best[headline]
        floor = want * (1.0 - TOLERANCE)
        verdict = "ok" if got >= floor else "REGRESSED"
        print(
            f"  {baseline_name}:{headline}: baseline({source})"
            f" {want:.2f}x, fresh {got:.2f}x, floor {floor:.2f}x"
            f" -> {verdict}"
        )
        if got < floor:
            failures.append(
                f"{baseline_name}:{headline} fell {want:.2f}x -> {got:.2f}x"
                f" (> {TOLERANCE:.0%} regression)"
            )
    return failures


def main() -> int:
    failures = []
    with tempfile.TemporaryDirectory(prefix="perf-regress-") as scratch:
        for baseline_name, script, headlines in CHECKS:
            failures.extend(
                check_benchmark(baseline_name, script, headlines, scratch)
            )
    if failures:
        print("\nPERF REGRESS: FAIL")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("\nPERF REGRESS: OK (all headlines within tolerance)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
