"""The document projection: one walk, every index-facing view.

The document-at-a-time write path recomputes the same derived views of a
document over and over: ``extract_text`` walks the content tree and
classifies every leaf, ``ValueIndex.add`` walks and classifies again,
``StructuralIndex.add`` walks a third time — and because every data node
*and* the global catalog maintain their own indexes, each walk happens
once per consumer.  For a single reactive put that is merely wasteful;
for a bulk load it dominates the cost.

The staged ingest pipeline (``repro.ingest``) fixes this at the model
layer: the *model-validate* stage projects each document exactly once —
one recursive walk that simultaneously collects leaf paths, structural
paths, the prose projection, tokenized postings, and typed value entries
— and every downstream consumer (per-node index maintenance, the global
catalog, auto-view upkeep) reuses the same :class:`DocumentProjection`.

Projecting is also where model validation happens: an unsupported leaf
type raises :class:`TypeError` here, at the validate stage, instead of
deep inside an index listener after the bytes are already durable.

The projection is derived purely from ``content`` (never from identity
or timestamps), so it is cached on the immutable document and survives
the store's timestamp-stamping copy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.model.values import (
    Path,
    ValueType,
    classify_value,
    coerce_numeric,
)

#: One typed value entry: (path, normalized value, numeric coercion).
#: Exactly the tuple :class:`repro.index.structural.ValueIndex` records.
ValueEntry = Tuple[Path, Any, Optional[float]]


@dataclass(frozen=True)
class DocumentProjection:
    """Every index-facing view of one document, computed in one walk.

    Attributes
    ----------
    leaf_paths:
        Path of every leaf, in document order, including ``None``-valued
        leaves (auto-view column detection needs those too).
    structure:
        The full structural path set — interior and leaf paths — exactly
        as :meth:`Document.structure` reports it.
    text:
        The searchable prose projection (``extract_text`` equivalent).
    term_positions:
        Positional postings of :attr:`text`, term → positions, in first-
        occurrence order (what the inverted index stores per document).
    token_count:
        Total token count of :attr:`text` (the BM25 document length).
    value_entries:
        ``(path, normalized, numeric)`` per non-null leaf, in document
        order — the value-index entries.
    """

    leaf_paths: Tuple[Path, ...]
    structure: FrozenSet[Path]
    text: str
    term_positions: Dict[str, List[int]]
    token_count: int
    value_entries: Tuple[ValueEntry, ...]


def _project_content(content: Any) -> DocumentProjection:
    from repro.index.text import tokenize_with_positions

    leaves: List[Tuple[Path, Any]] = []
    structure: set = set()

    # One walk replacing iter_paths + iter_structure_paths + the leaf
    # re-walks of extract_text and ValueIndex.add.  Leaf order matches
    # iter_paths (dict insertion order, lists flattened in place).
    def walk(node: Any, prefix: Path) -> None:
        if prefix:
            structure.add(prefix)
        if isinstance(node, dict):
            for key in node:
                walk(node[key], prefix + (str(key),))
        elif isinstance(node, (list, tuple)):
            for item in node:
                walk(item, prefix)
        else:
            leaves.append((prefix, node))

    walk(content, ())

    pieces: List[str] = []
    entries: List[ValueEntry] = []
    for path, value in leaves:
        if value is None:
            continue
        # classify_value raising TypeError here IS the model validation:
        # a non-scalar leaf is rejected before anything touches storage.
        value_type = classify_value(value)
        if isinstance(value, str):
            if value_type in (ValueType.TEXT, ValueType.STRING):
                pieces.append(value)
            normalized: Any = value.strip().lower()
        else:
            normalized = value
        numeric: Optional[float] = None
        if value_type.is_numeric:
            try:
                numeric = coerce_numeric(value)
            except (TypeError, ValueError):
                numeric = None
        entries.append((path, normalized, numeric))

    text = "\n".join(pieces)
    term_positions: Dict[str, List[int]] = {}
    token_count = 0
    for term, position in tokenize_with_positions(text):
        term_positions.setdefault(term, []).append(position)
        token_count += 1

    return DocumentProjection(
        leaf_paths=tuple(path for path, _ in leaves),
        structure=frozenset(structure),
        text=text,
        term_positions=term_positions,
        token_count=token_count,
        value_entries=tuple(entries),
    )


def projection_of(document) -> DocumentProjection:
    """The (cached) projection of *document*.

    The first call walks the content tree; later calls — from another
    index manager, another pipeline stage, or the stamped store copy that
    inherited the cache — return the same object.  Safe to cache because
    documents are frozen and the projection depends only on ``content``.
    """
    cached = document.__dict__.get("_projection")
    if cached is None:
        cached = _project_content(document.content)
        object.__setattr__(document, "_projection", cached)
    return cached
