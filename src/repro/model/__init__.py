"""Uniform data model (paper Section 3.2, Figure 2).

Impliance views all ingested data as a collection of *documents*, each of
which carries its own schema.  A document is an immutable, versioned tree
of values; relational rows, e-mails, XML, CSV records, and free text are
all mapped into this one model by the converters in
:mod:`repro.model.converters`.  Annotations produced by the discovery
engine are themselves documents that *reference* the documents they
describe (:mod:`repro.model.annotations`), and relational applications see
documents again through system-supplied views
(:mod:`repro.model.views`) — the round trip of the paper's Figure 2.
"""

from repro.model.document import Document, DocumentKind, Path
from repro.model.schema import DocumentSchema, SchemaRegistry, infer_schema
from repro.model.values import (
    ValueType,
    classify_value,
    iter_paths,
    path_to_string,
    string_to_path,
)
from repro.model.converters import (
    from_csv,
    from_email,
    from_json_object,
    from_relational_row,
    from_text,
    from_xml,
)
from repro.model.annotations import (
    Annotation,
    Span,
    make_annotation_document,
    spans_of,
    payload_of,
)
from repro.model.views import RelationalView, ViewCatalog, ViewColumn

__all__ = [
    "Document",
    "DocumentKind",
    "Path",
    "DocumentSchema",
    "SchemaRegistry",
    "infer_schema",
    "ValueType",
    "classify_value",
    "iter_paths",
    "path_to_string",
    "string_to_path",
    "from_csv",
    "from_email",
    "from_json_object",
    "from_relational_row",
    "from_text",
    "from_xml",
    "Annotation",
    "Span",
    "make_annotation_document",
    "spans_of",
    "payload_of",
    "RelationalView",
    "ViewCatalog",
    "ViewColumn",
]
