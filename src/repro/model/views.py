"""System-supplied relational views over documents (Figure 2).

"These derived annotations and associations may themselves be exposed to
SQL applications through system-supplied views that map the native data
types back into relational rows.  Exploiting views in this way facilitates
adding new functionality to existing applications without having to
rewrite the entire application to use new APIs."

A :class:`RelationalView` selects matching documents (by source table,
document kind, or annotation label), projects paths into named columns,
and can *widen* annotation rows with columns drawn from the annotation's
subject document — so a legacy SQL application sees discovered sentiment
or extracted entities as just another table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

from repro.model.annotations import is_annotation_document, subject_of
from repro.model.document import Document, DocumentKind
from repro.model.values import Path, string_to_path

Row = Dict[str, Any]
DocumentLookup = Callable[[str], Optional[Document]]


@dataclass(frozen=True)
class ViewColumn:
    """One output column: a name and the document path feeding it.

    ``source`` selects whether the path is resolved against the matched
    document itself (``"self"``) or against the annotation's subject
    document (``"subject"``).
    """

    name: str
    path: Path
    source: str = "self"

    def __post_init__(self) -> None:
        if self.source not in ("self", "subject"):
            raise ValueError(f"unknown column source {self.source!r}")
        if isinstance(self.path, str):  # accept "/a/b" convenience form
            object.__setattr__(self, "path", string_to_path(self.path))
        else:
            object.__setattr__(self, "path", tuple(self.path))


@dataclass(frozen=True)
class RelationalView:
    """A named projection of documents into rows.

    Parameters
    ----------
    name:
        View (virtual table) name used in SQL.
    columns:
        Output columns, in order.
    table:
        If set, only documents whose ``metadata['table']`` matches qualify.
    kind:
        If set, only documents of this kind qualify.
    annotation_label:
        If set, only annotation documents carrying this label qualify.
    predicate:
        Optional extra row filter applied after projection.
    """

    name: str
    columns: Sequence[ViewColumn]
    table: Optional[str] = None
    kind: Optional[DocumentKind] = None
    annotation_label: Optional[str] = None
    predicate: Optional[Callable[[Row], bool]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("view name must be non-empty")
        if not self.columns:
            raise ValueError(f"view {self.name!r} has no columns")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise ValueError(f"view {self.name!r} has duplicate column names")
        object.__setattr__(self, "columns", tuple(self.columns))

    @property
    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    @property
    def needs_subject(self) -> bool:
        return any(c.source == "subject" for c in self.columns)

    # ------------------------------------------------------------------
    def matches(self, document: Document) -> bool:
        """Does *document* feed this view?"""
        if self.kind is not None and document.kind is not self.kind:
            return False
        if self.table is not None and document.metadata.get("table") != self.table:
            return False
        if self.annotation_label is not None:
            if not is_annotation_document(document):
                return False
            if document.metadata.get("label") != self.annotation_label:
                return False
        return True

    def project(
        self,
        document: Document,
        lookup: Optional[DocumentLookup] = None,
    ) -> Optional[Row]:
        """Project one matching document into a row (``None`` if filtered).

        Subject-sourced columns require *lookup* to resolve the annotated
        document; a missing subject yields NULL columns rather than an
        error, because annotations may outlive a superseded base version.
        """
        subject: Optional[Document] = None
        if self.needs_subject:
            if lookup is None:
                raise ValueError(
                    f"view {self.name!r} has subject columns but no lookup was provided"
                )
            if is_annotation_document(document):
                subject = lookup(subject_of(document))

        row: Row = {}
        for column in self.columns:
            if column.source == "self":
                row[column.name] = document.first(column.path)
            else:
                row[column.name] = subject.first(column.path) if subject else None
        if self.predicate is not None and not self.predicate(row):
            return None
        return row

    def rows(
        self,
        documents: Iterable[Document],
        lookup: Optional[DocumentLookup] = None,
    ) -> Iterator[Row]:
        """Evaluate the view over a document stream."""
        for document in documents:
            if not self.matches(document):
                continue
            row = self.project(document, lookup)
            if row is not None:
                yield row


class ColumnProjector:
    """Columnar (struct-of-arrays) projection of documents through a view.

    The row path builds one dict per document (``view.project``); the
    vectorized scan appends each column value to a list instead, and —
    for the common table-view shape where every column is a self-sourced
    two-segment path under one root — resolves the root *once* per
    document and reads columns with plain dict gets, instead of walking
    ``get_path`` per column.  Documents that need the general machinery
    (view predicates, subject columns, nested values) fall back to
    ``view.project`` per document, so the projected values are always
    identical to the row path.

    The caller is responsible for :meth:`RelationalView.matches`; this
    object only projects.  ``columns``/``length`` expose the accumulated
    result (the exec layer wraps them into ColumnBatches).
    """

    __slots__ = ("view", "lookup", "names", "columns", "length", "_paths", "_root")

    def __init__(self, view: RelationalView, lookup: Optional[DocumentLookup] = None) -> None:
        self.view = view
        self.lookup = lookup
        self.names = [c.name for c in view.columns]
        self.columns: Dict[str, List[Any]] = {name: [] for name in self.names}
        self.length = 0
        self._paths = [c.path for c in view.columns]
        root = None
        if (
            view.predicate is None
            and not view.needs_subject
            and self._paths
            and all(len(p) == 2 for p in self._paths)
        ):
            roots = {p[0] for p in self._paths}
            if len(roots) == 1:
                root = next(iter(roots))
        self._root = root

    def add(self, document: Document) -> bool:
        """Project one matching document; True when a row was appended."""
        values = self._fast_values(document)
        if values is not None:
            for name, value in zip(self.names, values):
                self.columns[name].append(value)
            self.length += 1
            return True
        return self._add_generic(document)

    def _fast_values(self, document: Document) -> Optional[List[Any]]:
        if self._root is None:
            return None
        content = document.content
        if type(content) is not dict:
            return None
        inner = content.get(self._root)
        if type(inner) is not dict:
            return None
        values: List[Any] = []
        for path in self._paths:
            value = inner.get(path[1])
            if isinstance(value, (dict, list, tuple)):
                return None  # nested value: defer to get_path's leaf walk
            values.append(value)
        return values

    def _add_generic(self, document: Document) -> bool:
        row = self.view.project(document, self.lookup)
        if row is None:
            return False
        for name in self.names:
            self.columns[name].append(row.get(name))
        self.length += 1
        return True


def base_table_view(name: str, table: str, columns: Sequence[str]) -> RelationalView:
    """Convenience: the identity view over rows infused from *table*.

    This is the Figure 2 fast path — "the row can immediately be queried
    by SQL and retrieved without change".
    """
    view_columns = [ViewColumn(col, (table, col)) for col in columns]
    return RelationalView(name=name, columns=view_columns, table=table)


def annotation_view(
    name: str,
    label: str,
    payload_fields: Sequence[str],
    subject_columns: Optional[Mapping[str, Sequence[str]]] = None,
) -> RelationalView:
    """Convenience: expose annotations with *label* as a relational table.

    ``payload_fields`` become columns drawn from the annotation payload;
    ``subject_columns`` maps output column names to paths resolved in the
    subject document, widening each annotation row with base-data context.
    """
    columns: List[ViewColumn] = [
        ViewColumn("subject_id", ("annotation", "subject")),
        ViewColumn("confidence", ("annotation", "confidence")),
    ]
    for fieldname in payload_fields:
        columns.append(ViewColumn(fieldname, ("annotation", "payload", fieldname)))
    for col_name, path in (subject_columns or {}).items():
        columns.append(ViewColumn(col_name, tuple(path), source="subject"))
    return RelationalView(
        name=name,
        columns=columns,
        kind=DocumentKind.ANNOTATION,
        annotation_label=label,
    )


class ViewCatalog:
    """Registry of system-supplied and user-defined views."""

    def __init__(self) -> None:
        self._views: Dict[str, RelationalView] = {}

    def define(self, view: RelationalView) -> None:
        if view.name in self._views:
            raise ValueError(f"view {view.name!r} already defined")
        self._views[view.name] = view

    def replace(self, view: RelationalView) -> None:
        self._views[view.name] = view

    def get(self, name: str) -> RelationalView:
        try:
            return self._views[name]
        except KeyError:
            raise KeyError(f"no view named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._views

    def names(self) -> List[str]:
        return sorted(self._views)

    def __len__(self) -> int:
        return len(self._views)
