"""Format converters: every ingest format maps into the document model.

"The data infused into Impliance is mapped from its initial format to a
uniform data model" (Section 2.2, Figure 1).  Each converter preserves the
original content losslessly enough that the unchanged ingredients can be
ladled back out: the ``source_format`` field records the origin, and the
content tree mirrors the source structure.
"""

from __future__ import annotations

import csv
import io
import xml.etree.ElementTree as ElementTree
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.model.document import Document


def from_relational_row(
    doc_id: str,
    table: str,
    row: Mapping[str, Any],
    primary_key: Optional[Sequence[str]] = None,
) -> Document:
    """Map one relational row into a document (the Figure 2 insertion path).

    The table name and primary key land in metadata so the system-supplied
    view (:class:`repro.model.views.RelationalView`) can reconstruct the
    row exactly, and so SQL can query it immediately after infusion.
    """
    if not table:
        raise ValueError("table name must be non-empty")
    metadata: Dict[str, Any] = {"table": table}
    if primary_key:
        metadata["primary_key"] = list(primary_key)
        missing = [k for k in primary_key if k not in row]
        if missing:
            raise ValueError(f"primary key columns missing from row: {missing}")
    return Document(
        doc_id=doc_id,
        content={table: dict(row)},
        source_format="relational",
        metadata=metadata,
    )


def from_csv(
    id_prefix: str,
    table: str,
    payload: str,
    delimiter: str = ",",
) -> List[Document]:
    """Parse CSV text (header row required) into one document per record."""
    reader = csv.DictReader(io.StringIO(payload), delimiter=delimiter)
    if reader.fieldnames is None:
        raise ValueError("CSV payload has no header row")
    documents = []
    for i, record in enumerate(reader):
        doc = Document(
            doc_id=f"{id_prefix}-{i}",
            content={table: {k: v for k, v in record.items() if k is not None}},
            source_format="csv",
            metadata={"table": table, "csv_row": i},
        )
        documents.append(doc)
    return documents


def _element_to_tree(element: ElementTree.Element) -> Any:
    """Convert an XML element into the dict/list/scalar content model."""
    children = list(element)
    node: Dict[str, Any] = {}
    for name, value in element.attrib.items():
        node[f"@{name}"] = value
    if children:
        grouped: Dict[str, List[Any]] = {}
        for child in children:
            grouped.setdefault(child.tag, []).append(_element_to_tree(child))
        for tag, items in grouped.items():
            node[tag] = items[0] if len(items) == 1 else items
        tail_text = (element.text or "").strip()
        if tail_text:
            node["#text"] = tail_text
        return node
    text = (element.text or "").strip()
    if node:
        if text:
            node["#text"] = text
        return node
    return text if text else None


def from_xml(doc_id: str, payload: str) -> Document:
    """Parse an XML document into the content model.

    Attributes become ``@name`` keys, repeated child tags become lists,
    and mixed text lands under ``#text`` — the usual lossy-but-queryable
    XML-to-tree mapping.  The structural index then covers "every path in
    the document" exactly as Section 3.2 requires.
    """
    try:
        root = ElementTree.fromstring(payload)
    except ElementTree.ParseError as exc:
        raise ValueError(f"malformed XML: {exc}") from exc
    return Document(
        doc_id=doc_id,
        content={root.tag: _element_to_tree(root)},
        source_format="xml",
        metadata={"root_tag": root.tag},
    )


def from_email(doc_id: str, raw: str) -> Document:
    """Parse an RFC-822-ish e-mail (headers, blank line, body).

    Header names are lower-cased; ``to``/``cc`` split on commas into
    lists.  E-mail is the canonical semi-structured source in the paper's
    legal-compliance use case (Section 2.1.3).
    """
    if "\n\n" in raw:
        head, body = raw.split("\n\n", 1)
    else:
        head, body = raw, ""
    headers: Dict[str, Any] = {}
    current_key: Optional[str] = None
    for line in head.splitlines():
        if not line.strip():
            continue
        if line[0] in " \t" and current_key:
            headers[current_key] = f"{headers[current_key]} {line.strip()}"
            continue
        if ":" not in line:
            raise ValueError(f"malformed e-mail header line: {line!r}")
        name, _, value = line.partition(":")
        current_key = name.strip().lower()
        headers[current_key] = value.strip()
    for list_header in ("to", "cc", "bcc"):
        if list_header in headers and isinstance(headers[list_header], str):
            parts = [p.strip() for p in headers[list_header].split(",") if p.strip()]
            if len(parts) > 1:
                headers[list_header] = parts
    content = {"email": {"headers": headers, "body": body.strip()}}
    return Document(
        doc_id=doc_id,
        content=content,
        source_format="email",
        metadata={"subject": headers.get("subject", ""), "from": headers.get("from", "")},
    )


def from_text(doc_id: str, text: str, title: str = "") -> Document:
    """Wrap free text (a call transcript, a contract, a report)."""
    content: Dict[str, Any] = {"document": {"body": text}}
    if title:
        content["document"]["title"] = title
    return Document(
        doc_id=doc_id,
        content=content,
        source_format="text",
        metadata={"title": title} if title else {},
    )


def from_json_object(doc_id: str, obj: Any, metadata: Optional[Mapping[str, Any]] = None) -> Document:
    """Wrap an already-tree-shaped object (the identity conversion)."""
    return Document(
        doc_id=doc_id,
        content=obj,
        source_format="json",
        metadata=dict(metadata or {}),
    )


_EMAIL_HEADER_HINTS = {"from", "to", "subject", "cc", "bcc", "date", "message-id"}


def _looks_like_email(payload: str) -> bool:
    """Heuristic: leading RFC-822-ish header block with known names."""
    head = payload.split("\n\n", 1)[0]
    hints = 0
    for line in head.splitlines():
        if not line.strip():
            return False
        if line[0] in " \t":
            continue  # folded continuation
        name, sep, _ = line.partition(":")
        if not sep or not name or " " in name.strip():
            return False
        if name.strip().lower() in _EMAIL_HEADER_HINTS:
            hints += 1
    return hints >= 2


def _looks_like_csv(payload: str, delimiter: str = ",") -> bool:
    """Heuristic: 2+ lines whose delimiter counts agree (header + rows)."""
    lines = [ln for ln in payload.strip().splitlines() if ln.strip()]
    if len(lines) < 2 or delimiter not in lines[0]:
        return False
    width = lines[0].count(delimiter)
    return all(ln.count(delimiter) == width for ln in lines[1:])


def sniff_format(payload: Any, table: Optional[str] = None) -> str:
    """Guess the ingest format of *payload* (the `Impliance.ingest`
    dispatcher's fallback when no explicit ``format`` is given).

    Rules, in order: a :class:`Document` passes through; a mapping is a
    relational row when a *table* is named, otherwise a JSON tree; a
    string is XML if it parses, an e-mail if it leads with a known
    header block, CSV when a *table* is named and the lines agree on a
    delimiter, and free text otherwise.  Any other object is treated as
    a JSON-style tree.
    """
    if isinstance(payload, Document):
        return "document"
    if isinstance(payload, Mapping):
        return "relational" if table else "json"
    if isinstance(payload, str):
        stripped = payload.lstrip()
        if stripped.startswith("<"):
            try:
                ElementTree.fromstring(payload)
                return "xml"
            except ElementTree.ParseError:
                pass
        if _looks_like_email(payload):
            return "email"
        if table and _looks_like_csv(payload):
            return "csv"
        return "text"
    return "json"


def to_relational_row(document: Document) -> Dict[str, Any]:
    """Invert :func:`from_relational_row`: ladle the unchanged row back out.

    Raises ``ValueError`` if the document did not originate from a
    relational source.
    """
    if document.source_format != "relational":
        raise ValueError(
            f"document {document.doc_id} has source_format "
            f"{document.source_format!r}, not 'relational'"
        )
    table = document.metadata.get("table")
    if not table or table not in document.content:
        raise ValueError(f"document {document.doc_id} lost its table wrapper")
    row = document.content[table]
    if not isinstance(row, dict):
        raise ValueError(f"document {document.doc_id} table content is not a row")
    return dict(row)
