"""The Document: Impliance's single unit of information.

Everything infused into the appliance — a relational row, an e-mail, a
claim form, an XML fragment, a call transcript — becomes a
:class:`Document`.  Documents are *immutable*: a change is expressed as a
new version with the same ``doc_id`` (paper Section 4), which is what lets
replicas avoid synchronous update propagation (Section 3.2).
"""

from __future__ import annotations

import copy
import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterator, Optional, Sequence, Tuple

from repro.model.values import (
    Path,
    extract_text,
    get_path,
    iter_paths,
    iter_structure_paths,
)


class DocumentKind(enum.Enum):
    """Role of a document inside the repository.

    BASE documents hold ingested data.  ANNOTATION documents are produced
    by the discovery engine and reference base documents (Figure 2).
    DERIVED documents are transformed/combined versions of base data kept
    for faster processing (Section 3.2: "stored in one or more transformed
    states").  Derived and annotation data can be re-created, which the
    storage manager exploits when choosing replication levels (Section 3.4).
    """

    BASE = "base"
    ANNOTATION = "annotation"
    DERIVED = "derived"


def _freeze(node: Any) -> Any:
    """Deep-copy *node* so the document owns its content tree."""
    return copy.deepcopy(node)


@dataclass(frozen=True)
class Document:
    """An immutable, versioned, self-describing tree of values.

    Parameters
    ----------
    doc_id:
        Stable identity shared by all versions of the document.
    version:
        Monotonically increasing version number (1 = initial infusion).
    content:
        Tree of ``dict`` / ``list`` / scalar leaves.
    kind:
        Role of the document (base / annotation / derived).
    source_format:
        The format the data arrived in (``"relational"``, ``"email"``,
        ``"xml"``, ``"csv"``, ``"text"``, ``"json"``); retained so the
        original ingredients can be "ladled out unchanged" at any time.
    metadata:
        Small catalog facts about the document (source system, table name,
        ingest channel...).  Queryable like content, but not annotated.
    refs:
        Doc-ids of documents this one refers to.  Annotations reference
        their subjects through this field.
    ingest_ts:
        Logical timestamp assigned by the appliance clock at persist time.
    """

    doc_id: str
    content: Any
    version: int = 1
    kind: DocumentKind = DocumentKind.BASE
    source_format: str = "json"
    metadata: Dict[str, Any] = field(default_factory=dict)
    refs: Tuple[str, ...] = ()
    ingest_ts: int = 0

    def __post_init__(self) -> None:
        if not self.doc_id:
            raise ValueError("doc_id must be non-empty")
        if self.version < 1:
            raise ValueError("version numbers start at 1")
        object.__setattr__(self, "content", _freeze(self.content))
        object.__setattr__(self, "metadata", dict(self.metadata))
        object.__setattr__(self, "refs", tuple(self.refs))

    # ------------------------------------------------------------------
    # content access
    # ------------------------------------------------------------------
    def paths(self) -> Iterator[Tuple[Path, Any]]:
        """Iterate ``(path, leaf_value)`` over the content tree."""
        return iter_paths(self.content)

    def structure(self) -> FrozenSet[Path]:
        """The set of structural paths present in this document."""
        return frozenset(iter_structure_paths(self.content))

    def get(self, path: Sequence[str]) -> list:
        """All leaf values under *path* (may be several; ``[]`` if absent)."""
        return get_path(self.content, tuple(path))

    def first(self, path: Sequence[str], default: Any = None) -> Any:
        """First leaf value under *path*, or *default*."""
        values = self.get(path)
        return values[0] if values else default

    @property
    def text(self) -> str:
        """The document's searchable prose projection."""
        return extract_text(self.content)

    @property
    def is_annotation(self) -> bool:
        return self.kind is DocumentKind.ANNOTATION

    @property
    def is_tombstone(self) -> bool:
        """True when this version marks the document as deleted."""
        return bool(self.metadata.get("tombstone"))

    # ------------------------------------------------------------------
    # versioning
    # ------------------------------------------------------------------
    def new_version(self, content: Any, metadata: Optional[Dict[str, Any]] = None) -> "Document":
        """Return the successor version carrying *content*.

        The appliance never updates in place (Section 4); this is the only
        way to change a document, and the storage layer keeps the full
        chain.
        """
        merged = dict(self.metadata)
        # A new version is live unless explicitly tombstoned again — a
        # put after a delete resurrects the document.
        merged.pop("tombstone", None)
        if metadata:
            merged.update(metadata)
        return Document(
            doc_id=self.doc_id,
            content=content,
            version=self.version + 1,
            kind=self.kind,
            source_format=self.source_format,
            metadata=merged,
            refs=self.refs,
            ingest_ts=0,  # the store stamps the new version at persist time
        )

    def tombstone(self) -> "Document":
        """Return the successor version that marks this document deleted.

        Deletion is expressed the only way the appliance expresses change:
        a new version.  The tombstone keeps the chain's metadata (so the
        dependency ``table`` still drives precise cache invalidation) and
        carries empty content; earlier versions stay readable through
        ``as_of``/``history`` — the append-only store forgets nothing.
        """
        return self.new_version({}, {"tombstone": True})

    def with_refs(self, refs: Sequence[str]) -> "Document":
        """Return a copy of this version with *refs* replacing the ref list."""
        return Document(
            doc_id=self.doc_id,
            content=self.content,
            version=self.version,
            kind=self.kind,
            source_format=self.source_format,
            metadata=self.metadata,
            refs=tuple(refs),
            ingest_ts=self.ingest_ts,
        )

    # ------------------------------------------------------------------
    # identity / serialization
    # ------------------------------------------------------------------
    @property
    def vid(self) -> Tuple[str, int]:
        """(doc_id, version): the unique identity of this immutable object."""
        return (self.doc_id, self.version)

    def content_digest(self) -> str:
        """Stable SHA-1 digest of the content tree (used for dedup and
        replica verification)."""
        payload = json.dumps(self.content, sort_keys=True, default=str)
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()

    def size_bytes(self) -> int:
        """Approximate serialized size; the storage and network simulators
        charge costs proportional to this.  Memoized: documents are frozen,
        so the serialization never changes, yet page packing, cost
        accounting, and shipping all ask repeatedly."""
        cached = self.__dict__.get("_size_bytes")
        if cached is None:
            cached = len(self.to_json())
            object.__setattr__(self, "_size_bytes", cached)
        return cached

    def stamped(self, ingest_ts: int) -> "Document":
        """This document with ``ingest_ts`` assigned by the store clock.

        The write path stamps every document at persist time; going
        through ``Document(...)`` again would deep-copy the whole content
        tree a second time for no reason — both objects are frozen and the
        tree is never mutated, so the copy can share it.  A cached
        projection carries over (it depends only on content); the size
        memo does not (the timestamp is part of the serialization).
        """
        clone = object.__new__(Document)
        object.__setattr__(clone, "doc_id", self.doc_id)
        object.__setattr__(clone, "content", self.content)
        object.__setattr__(clone, "version", self.version)
        object.__setattr__(clone, "kind", self.kind)
        object.__setattr__(clone, "source_format", self.source_format)
        object.__setattr__(clone, "metadata", self.metadata)
        object.__setattr__(clone, "refs", self.refs)
        object.__setattr__(clone, "ingest_ts", ingest_ts)
        projection = self.__dict__.get("_projection")
        if projection is not None:
            object.__setattr__(clone, "_projection", projection)
        return clone

    def to_json(self) -> str:
        return json.dumps(
            {
                "doc_id": self.doc_id,
                "version": self.version,
                "kind": self.kind.value,
                "source_format": self.source_format,
                "metadata": self.metadata,
                "refs": list(self.refs),
                "ingest_ts": self.ingest_ts,
                "content": self.content,
            },
            sort_keys=True,
            default=str,
        )

    @classmethod
    def from_json(cls, payload: str) -> "Document":
        raw = json.loads(payload)
        return cls(
            doc_id=raw["doc_id"],
            content=raw["content"],
            version=raw["version"],
            kind=DocumentKind(raw["kind"]),
            source_format=raw["source_format"],
            metadata=raw["metadata"],
            refs=tuple(raw["refs"]),
            ingest_ts=raw["ingest_ts"],
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Document):
            return NotImplemented
        return self.vid == other.vid and self.content == other.content

    def __hash__(self) -> int:
        return hash(self.vid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Document({self.doc_id!r} v{self.version} {self.kind.value} {self.source_format})"
