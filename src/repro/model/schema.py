"""Per-document schema inference and the schema registry.

Impliance does not require a schema up front ("no preparation and in any
type, schema, or format", Section 2.2).  Instead each document's schema is
*inferred* from its content, and the registry clusters documents whose
schemas look alike so the discovery engine can consolidate structures from
different sources (Section 3.2, schema mapping).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.model.document import Document
from repro.model.values import Path, ValueType, classify_value, path_to_string


@dataclass(frozen=True)
class DocumentSchema:
    """The inferred shape of one document: each leaf path with its type.

    Two documents with the same schema signature are structurally
    interchangeable for query processing, even if they arrived through
    different channels (a purchase order via e-mail vs. via a relational
    row, once schema-mapped, share a signature).
    """

    fields: Mapping[Path, ValueType]

    def __post_init__(self) -> None:
        object.__setattr__(self, "fields", dict(self.fields))

    @property
    def paths(self) -> FrozenSet[Path]:
        return frozenset(self.fields)

    def type_of(self, path: Path) -> Optional[ValueType]:
        return self.fields.get(path)

    def signature(self) -> Tuple[Tuple[str, str], ...]:
        """Canonical, hashable rendering of the schema."""
        return tuple(
            sorted((path_to_string(p), t.value) for p, t in self.fields.items())
        )

    def compatible_with(self, other: "DocumentSchema") -> bool:
        """True when the shared paths agree on type.

        Compatibility is the precondition for merging documents into one
        searchable collection; it prevents the paper's "oranges and
        orangutans" aggregation mistakes.
        """
        for path, vtype in self.fields.items():
            other_type = other.fields.get(path)
            if other_type is None:
                continue
            if not _types_mergeable(vtype, other_type):
                return False
        return True

    def overlap(self, other: "DocumentSchema") -> float:
        """Jaccard similarity of the two path sets (schema-mapping signal)."""
        mine, theirs = self.paths, other.paths
        if not mine and not theirs:
            return 1.0
        union = mine | theirs
        return len(mine & theirs) / len(union)

    def merge(self, other: "DocumentSchema") -> "DocumentSchema":
        """Union schema; conflicting types widen to the more general type."""
        merged: Dict[Path, ValueType] = dict(self.fields)
        for path, vtype in other.fields.items():
            if path in merged:
                merged[path] = _widen(merged[path], vtype)
            else:
                merged[path] = vtype
        return DocumentSchema(merged)

    def __len__(self) -> int:
        return len(self.fields)


def _types_mergeable(a: ValueType, b: ValueType) -> bool:
    if a == b:
        return True
    numeric = {ValueType.INTEGER, ValueType.FLOAT, ValueType.MONEY}
    stringy = {ValueType.STRING, ValueType.TEXT}
    if a in numeric and b in numeric:
        return True
    if a in stringy and b in stringy:
        return True
    if ValueType.NULL in (a, b):
        return True
    return False


def _widen(a: ValueType, b: ValueType) -> ValueType:
    if a == b:
        return a
    if ValueType.NULL in (a, b):
        return b if a is ValueType.NULL else a
    numeric_order = [ValueType.INTEGER, ValueType.FLOAT, ValueType.MONEY]
    if a in numeric_order and b in numeric_order:
        return numeric_order[max(numeric_order.index(a), numeric_order.index(b))]
    if {a, b} <= {ValueType.STRING, ValueType.TEXT}:
        return ValueType.TEXT
    return ValueType.STRING


def infer_schema(document: Document) -> DocumentSchema:
    """Infer the schema of *document* from its leaf values.

    When the same path holds values of several types (across list
    elements), the types widen.
    """
    fields: Dict[Path, ValueType] = {}
    for path, value in document.paths():
        vtype = classify_value(value)
        if path in fields:
            fields[path] = _widen(fields[path], vtype)
        else:
            fields[path] = vtype
    return DocumentSchema(fields)


@dataclass
class SchemaCluster:
    """A group of documents sharing (approximately) one schema."""

    cluster_id: int
    schema: DocumentSchema
    doc_ids: Set[str] = field(default_factory=set)

    @property
    def size(self) -> int:
        return len(self.doc_ids)


class SchemaRegistry:
    """Clusters inferred document schemas.

    Documents whose schema overlaps an existing cluster by at least
    ``similarity_threshold`` (and is type-compatible) join that cluster,
    widening its schema; otherwise they seed a new cluster.  This is the
    substrate that lets "customer purchase orders all be searched
    together, whether they are ingested via e-mail, a spreadsheet ... or a
    relational row" (Section 3.2).
    """

    def __init__(self, similarity_threshold: float = 0.6) -> None:
        if not 0.0 < similarity_threshold <= 1.0:
            raise ValueError("similarity_threshold must be in (0, 1]")
        self.similarity_threshold = similarity_threshold
        self._clusters: Dict[int, SchemaCluster] = {}
        self._doc_cluster: Dict[str, int] = {}
        self._next_id = 0
        self._path_types: Dict[Path, Counter] = defaultdict(Counter)

    # ------------------------------------------------------------------
    def register(self, document: Document) -> int:
        """Record *document*'s schema; return the cluster id it joined."""
        schema = infer_schema(document)
        for path, vtype in schema.fields.items():
            self._path_types[path][vtype] += 1

        best_id, best_score = None, 0.0
        for cluster in self._clusters.values():
            if not schema.compatible_with(cluster.schema):
                continue
            score = schema.overlap(cluster.schema)
            if score > best_score:
                best_id, best_score = cluster.cluster_id, score

        if best_id is not None and best_score >= self.similarity_threshold:
            cluster = self._clusters[best_id]
            cluster.schema = cluster.schema.merge(schema)
            cluster.doc_ids.add(document.doc_id)
            self._doc_cluster[document.doc_id] = best_id
            return best_id

        cluster_id = self._next_id
        self._next_id += 1
        self._clusters[cluster_id] = SchemaCluster(
            cluster_id=cluster_id, schema=schema, doc_ids={document.doc_id}
        )
        self._doc_cluster[document.doc_id] = cluster_id
        return cluster_id

    def cluster_of(self, doc_id: str) -> Optional[SchemaCluster]:
        cluster_id = self._doc_cluster.get(doc_id)
        if cluster_id is None:
            return None
        return self._clusters[cluster_id]

    def clusters(self) -> List[SchemaCluster]:
        return sorted(self._clusters.values(), key=lambda c: -c.size)

    def dominant_type(self, path: Path) -> Optional[ValueType]:
        """Most common value type observed under *path* repository-wide."""
        counter = self._path_types.get(path)
        if not counter:
            return None
        return counter.most_common(1)[0][0]

    def paths_of_type(self, vtype: ValueType) -> List[Path]:
        """Every path whose dominant type is *vtype* (annotator targeting)."""
        result = []
        for path, counter in self._path_types.items():
            if counter and counter.most_common(1)[0][0] is vtype:
                result.append(path)
        return sorted(result)

    def __len__(self) -> int:
        return len(self._clusters)
