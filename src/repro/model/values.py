"""Value typing and path utilities for the uniform document model.

A document's content is a tree built from ``dict``, ``list``, and scalar
leaves (``str``, ``int``, ``float``, ``bool``, ``None``).  A *path* is the
tuple of dictionary keys leading from the root to a leaf; list elements
share their parent's path, so a path describes the document's *structure*
rather than a position inside it.  This matches the paper's notion of
indexing "every path in the document" (Section 3.2): structural search
asks "which documents have a value under /claim/vehicle/damage", not
"which documents have element 3 of some array".
"""

from __future__ import annotations

import enum
import re
from typing import Any, Iterator, Sequence, Tuple

Path = Tuple[str, ...]


class _Missing:
    """Sentinel for 'key absent from the source row' (vs. None = SQL NULL).

    Lives here — the dependency-free bottom of the import graph — because
    both the exec layer (ragged ``ColumnBatch`` rows) and the storage
    layer (encoded column vectors) must agree on the same singleton
    without importing each other.  ``repro.exec.batch`` re-exports it as
    its public home.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<MISSING>"


MISSING = _Missing()

_NUMBER_RE = re.compile(r"^[+-]?(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?$")
_DATE_RE = re.compile(r"^\d{4}-\d{2}-\d{2}([ T]\d{2}:\d{2}(:\d{2})?)?$")
_PHONE_RE = re.compile(r"^\+?[\d\-\s().]{7,20}$")
_CURRENCY_RE = re.compile(r"^[$€£¥]\s?\d[\d,]*(\.\d+)?$")


class ValueType(enum.Enum):
    """Coarse semantic type of a leaf value.

    The discovery engine and schema inference use these types to decide
    which annotators apply and whether two paths from different sources
    are compatible (you may merge two MONEY columns; merging MONEY with
    PHONE would be the "averaging phone numbers" mistake the paper warns
    about in Section 2.2).
    """

    NULL = "null"
    BOOL = "bool"
    INTEGER = "integer"
    FLOAT = "float"
    DATE = "date"
    MONEY = "money"
    PHONE = "phone"
    TEXT = "text"
    STRING = "string"

    @property
    def is_numeric(self) -> bool:
        return self in (ValueType.INTEGER, ValueType.FLOAT, ValueType.MONEY)


#: String length above which a value is treated as prose TEXT rather than
#: a short STRING code/identifier.  Short strings are indexed as exact
#: values; TEXT is tokenized into the full-text index.
TEXT_LENGTH_THRESHOLD = 48


def classify_value(value: Any) -> ValueType:
    """Return the :class:`ValueType` of a scalar leaf value."""
    if value is None:
        return ValueType.NULL
    if isinstance(value, bool):
        return ValueType.BOOL
    if isinstance(value, int):
        return ValueType.INTEGER
    if isinstance(value, float):
        return ValueType.FLOAT
    if isinstance(value, str):
        stripped = value.strip()
        if not stripped:
            return ValueType.STRING
        if _DATE_RE.match(stripped):
            return ValueType.DATE
        if _CURRENCY_RE.match(stripped):
            return ValueType.MONEY
        if _NUMBER_RE.match(stripped):
            return ValueType.FLOAT if any(c in stripped for c in ".eE") else ValueType.INTEGER
        if len(stripped) >= 7 and _PHONE_RE.match(stripped) and sum(c.isdigit() for c in stripped) >= 7:
            return ValueType.PHONE
        if len(stripped) > TEXT_LENGTH_THRESHOLD or " " in stripped and len(stripped.split()) > 6:
            return ValueType.TEXT
        return ValueType.STRING
    raise TypeError(f"unsupported leaf value type: {type(value)!r}")


def coerce_numeric(value: Any) -> float:
    """Best-effort numeric coercion used by aggregation over MONEY/number leaves."""
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        cleaned = value.strip().lstrip("$€£¥").replace(",", "").strip()
        return float(cleaned)
    raise TypeError(f"cannot coerce {value!r} to a number")


def iter_paths(content: Any, prefix: Path = ()) -> Iterator[Tuple[Path, Any]]:
    """Yield ``(path, leaf_value)`` pairs for every leaf in *content*.

    Dict keys extend the path; list elements are flattened under their
    parent's path.  Scalars at the root are yielded under the empty path.
    """
    if isinstance(content, dict):
        for key in content:
            yield from iter_paths(content[key], prefix + (str(key),))
    elif isinstance(content, (list, tuple)):
        for item in content:
            yield from iter_paths(item, prefix)
    else:
        yield prefix, content


def iter_structure_paths(content: Any, prefix: Path = ()) -> Iterator[Path]:
    """Yield every distinct structural path present in *content*, including
    interior (non-leaf) paths.  Used by the structural index."""
    seen = set()
    stack = [(content, prefix)]
    while stack:
        node, path = stack.pop()
        if path and path not in seen:
            seen.add(path)
            yield path
        if isinstance(node, dict):
            for key, child in node.items():
                stack.append((child, path + (str(key),)))
        elif isinstance(node, (list, tuple)):
            for item in node:
                stack.append((item, path))


def get_path(content: Any, path: Sequence[str]) -> list:
    """Return the list of leaf values reachable under *path*.

    Lists along the way fan out, so the result may hold several values
    (e.g. every line-item amount of an order).  Missing paths return ``[]``.
    """
    def expand(node: Any) -> Iterator[Any]:
        """Flatten arbitrarily nested lists down to their non-list items,
        mirroring how :func:`iter_paths` descends through lists."""
        if isinstance(node, (list, tuple)):
            for item in node:
                yield from expand(item)
        else:
            yield node

    nodes = [content]
    for key in path:
        next_nodes = []
        for node in nodes:
            for candidate in expand(node):
                if isinstance(candidate, dict) and key in candidate:
                    next_nodes.append(candidate[key])
        nodes = next_nodes
        if not nodes:
            return []
    leaves: list = []
    for node in nodes:
        leaves.extend(value for _, value in iter_paths(node))
    return leaves


def path_to_string(path: Sequence[str]) -> str:
    """Render a path tuple as the canonical ``/a/b/c`` form."""
    return "/" + "/".join(path)


def string_to_path(text: str) -> Path:
    """Parse the canonical ``/a/b/c`` form back into a path tuple."""
    stripped = text.strip().strip("/")
    if not stripped:
        return ()
    return tuple(stripped.split("/"))


def extract_text(content: Any) -> str:
    """Concatenate every TEXT-classified leaf of *content*, in path order.

    This is the document's searchable prose: full-text indexing and the
    annotators run over this projection.
    """
    pieces = []
    for _, value in iter_paths(content):
        if isinstance(value, str) and classify_value(value) in (ValueType.TEXT, ValueType.STRING):
            pieces.append(value)
    return "\n".join(pieces)
