"""Annotations as documents (paper Section 3.2, Figure 2).

"The annotators create new annotation documents that refer to the initial
row document, and contain information extracted from the row or additional
references forming an association between this document and others."

An annotation is therefore just a :class:`~repro.model.document.Document`
of kind ANNOTATION whose ``refs`` name its subject(s) and whose content
carries the extracted payload plus the character spans it was extracted
from.  Because annotations are ordinary documents, they are indexed,
queried, versioned, and even re-annotated by exactly the same machinery as
base data — the query engine does not "understand" them (Section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence

from repro.model.document import Document, DocumentKind


@dataclass(frozen=True)
class Span:
    """A character range inside a subject document's text projection."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid span [{self.start}, {self.end})")

    @property
    def length(self) -> int:
        return self.end - self.start

    def overlaps(self, other: "Span") -> bool:
        return self.start < other.end and other.start < self.end

    def to_content(self) -> Dict[str, int]:
        return {"start": self.start, "end": self.end}


@dataclass(frozen=True)
class Annotation:
    """An in-flight extraction result, before being persisted as a document.

    Annotators emit these; the discovery pipeline turns them into
    annotation documents via :func:`make_annotation_document`.
    """

    annotator: str
    label: str
    subject_id: str
    payload: Mapping[str, Any]
    spans: Sequence[Span] = ()
    confidence: float = 1.0
    extra_refs: Sequence[str] = ()

    def __post_init__(self) -> None:
        if not self.annotator:
            raise ValueError("annotator name must be non-empty")
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError("confidence must lie in [0, 1]")
        object.__setattr__(self, "payload", dict(self.payload))
        object.__setattr__(self, "spans", tuple(self.spans))
        object.__setattr__(self, "extra_refs", tuple(self.extra_refs))


def make_annotation_document(doc_id: str, annotation: Annotation, ingest_ts: int = 0) -> Document:
    """Persistable annotation document referencing its subject(s)."""
    content = {
        "annotation": {
            "annotator": annotation.annotator,
            "label": annotation.label,
            "subject": annotation.subject_id,
            "confidence": annotation.confidence,
            "payload": dict(annotation.payload),
            "spans": [span.to_content() for span in annotation.spans],
        }
    }
    refs = (annotation.subject_id,) + tuple(annotation.extra_refs)
    return Document(
        doc_id=doc_id,
        content=content,
        kind=DocumentKind.ANNOTATION,
        source_format="annotation",
        metadata={"annotator": annotation.annotator, "label": annotation.label},
        refs=refs,
        ingest_ts=ingest_ts,
    )


def is_annotation_document(document: Document) -> bool:
    return document.kind is DocumentKind.ANNOTATION and "annotation" in document.content


def payload_of(document: Document) -> Dict[str, Any]:
    """Extract the annotator payload from an annotation document."""
    if not is_annotation_document(document):
        raise ValueError(f"{document.doc_id} is not an annotation document")
    payload = document.content["annotation"].get("payload", {})
    return dict(payload)


def label_of(document: Document) -> str:
    if not is_annotation_document(document):
        raise ValueError(f"{document.doc_id} is not an annotation document")
    return document.content["annotation"]["label"]


def subject_of(document: Document) -> str:
    if not is_annotation_document(document):
        raise ValueError(f"{document.doc_id} is not an annotation document")
    return document.content["annotation"]["subject"]


def confidence_of(document: Document) -> float:
    if not is_annotation_document(document):
        raise ValueError(f"{document.doc_id} is not an annotation document")
    return float(document.content["annotation"].get("confidence", 1.0))


def spans_of(document: Document) -> List[Span]:
    """The character spans an annotation covers in its subject's text."""
    if not is_annotation_document(document):
        raise ValueError(f"{document.doc_id} is not an annotation document")
    return [
        Span(raw["start"], raw["end"])
        for raw in document.content["annotation"].get("spans", [])
    ]
