"""Tracing: nested spans carrying wall time *and* simulated time.

The appliance executes for real while charging simulated milliseconds to
node timelines (see :mod:`repro.cluster.node`), so a span records both
clocks: ``wall_ms`` is measured with ``perf_counter`` around the span
body, and ``sim_ms`` accumulates whatever simulated cost the code inside
the span charged via :meth:`Span.charge_sim` (node work forwards there
automatically when telemetry is attached).  Experiments read the
simulated axis; operators read the wall axis.

Spans nest through a tracer-owned stack: entering a span inside another
makes it a child, and finished root spans are retained in a bounded ring
so traces cannot grow without limit.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Deque, Dict, Iterator, List, Optional


class Span:
    """One traced operation; usable live (inside ``with``) and as a record."""

    __slots__ = ("name", "tags", "start_wall", "end_wall", "sim_ms", "children")

    def __init__(self, name: str, tags: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.tags: Dict[str, Any] = dict(tags or {})
        self.start_wall = time.perf_counter()
        self.end_wall: Optional[float] = None
        self.sim_ms = 0.0
        self.children: List["Span"] = []

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.end_wall is not None

    @property
    def wall_ms(self) -> float:
        end = self.end_wall if self.end_wall is not None else time.perf_counter()
        return (end - self.start_wall) * 1000.0

    @property
    def total_sim_ms(self) -> float:
        """Own simulated charge plus every descendant's."""
        return self.sim_ms + sum(c.total_sim_ms for c in self.children)

    # ------------------------------------------------------------------
    def charge_sim(self, ms: float) -> None:
        """Attribute *ms* of simulated time to this span."""
        self.sim_ms += ms

    def tag(self, key: str, value: Any) -> None:
        self.tags[key] = value

    def record(self) -> Optional["Span"]:
        """The exported form of this span (itself; the null span's is None)."""
        return self

    # ------------------------------------------------------------------
    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (or self) with *name*, depth-first."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "tags": dict(self.tags),
            "wall_ms": round(self.wall_ms, 6),
            "sim_ms": round(self.sim_ms, 6),
            "children": [c.to_dict() for c in self.children],
        }

    def render(self, indent: int = 0) -> str:
        """Human-readable nested trace."""
        pad = "  " * indent
        tags = f" {self.tags}" if self.tags else ""
        line = (
            f"{pad}{self.name}: wall={self.wall_ms:.3f}ms "
            f"sim={self.total_sim_ms:.3f}ms{tags}"
        )
        return "\n".join([line] + [c.render(indent + 1) for c in self.children])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name}, wall={self.wall_ms:.3f}ms, sim={self.sim_ms:.3f}ms)"


class _NullSpan:
    """Shared no-op stand-in when telemetry is disabled.

    Every mutator is a pass, so instrumented code needs no ``if`` around
    ``span.charge_sim(...)`` / ``span.tag(...)`` — disabled mode costs one
    attribute lookup and an empty call.
    """

    __slots__ = ()

    name = "(disabled)"
    tags: Dict[str, Any] = {}
    sim_ms = 0.0
    wall_ms = 0.0
    total_sim_ms = 0.0
    children: List[Span] = []
    finished = True

    def charge_sim(self, ms: float) -> None:
        pass

    def tag(self, key: str, value: Any) -> None:
        pass

    def record(self) -> Optional[Span]:
        return None

    def walk(self) -> Iterator[Span]:
        return iter(())

    def find(self, name: str) -> Optional[Span]:
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {}

    def render(self, indent: int = 0) -> str:
        return ""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


NULL_SPAN = _NullSpan()


class Tracer:
    """Builds nested spans; retains finished roots in a bounded ring."""

    def __init__(self, max_roots: int = 256) -> None:
        self._stack: List[Span] = []
        self._roots: Deque[Span] = deque(maxlen=max_roots)

    # ------------------------------------------------------------------
    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **tags: Any) -> Iterator[Span]:
        span = Span(name, tags)
        parent = self.current
        if parent is not None:
            parent.children.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.end_wall = time.perf_counter()
            self._stack.pop()
            if parent is None:
                self._roots.append(span)

    def charge_sim(self, ms: float) -> None:
        """Charge simulated time to the innermost open span, if any."""
        if self._stack:
            self._stack[-1].sim_ms += ms

    # ------------------------------------------------------------------
    def roots(self) -> List[Span]:
        return list(self._roots)

    @property
    def last_root(self) -> Optional[Span]:
        return self._roots[-1] if self._roots else None

    def find_roots(self, name: str) -> List[Span]:
        return [r for r in self._roots if r.name == name]

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-span-name aggregate over every retained span (all depths)."""
        out: Dict[str, Dict[str, float]] = {}
        for root in self._roots:
            for span in root.walk():
                agg = out.setdefault(
                    span.name, {"count": 0, "wall_ms": 0.0, "sim_ms": 0.0}
                )
                agg["count"] += 1
                agg["wall_ms"] += span.wall_ms
                agg["sim_ms"] += span.sim_ms
        for agg in out.values():
            agg["wall_ms"] = round(agg["wall_ms"], 6)
            agg["sim_ms"] = round(agg["sim_ms"], 6)
        return out

    def clear(self) -> None:
        self._roots.clear()
