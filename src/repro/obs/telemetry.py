"""The telemetry facade every subsystem talks to.

One :class:`Telemetry` instance per appliance bundles a metrics
registry, a tracer, and a list of export sinks behind a handful of
methods cheap enough for hot paths.  Disabled mode is a hard guarantee,
not a convention: every method returns immediately (spans hand back the
shared :data:`~repro.obs.tracing.NULL_SPAN`), no instrument is created,
and nothing allocates — the appliance's throughput with telemetry off is
the baseline throughput.

Subsystems receive the telemetry object at construction; code that can
run standalone (a bare :class:`~repro.query.engine.QueryEngine`, a
stray ``IndexManager``) defaults to the module-level :data:`DISABLED`
singleton so instrumented call sites never need a None check.
"""

from __future__ import annotations

from typing import Any, ContextManager, Dict, List, Mapping, Optional, Sequence

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.sink import TelemetrySink
from repro.obs.tracing import NULL_SPAN, Span, Tracer


class Telemetry:
    """Metrics + tracing + export, with a zero-cost disabled mode."""

    def __init__(self, enabled: bool = True, max_trace_roots: int = 256) -> None:
        self.enabled = enabled
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(max_roots=max_trace_roots)
        self.sinks: List[TelemetrySink] = []

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------
    def span(self, name: str, **tags: Any) -> ContextManager[Span]:
        """Open a (possibly nested) span; no-op when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return self.tracer.span(name, **tags)

    def charge_sim(self, ms: float) -> None:
        """Attribute simulated time to the innermost open span."""
        if self.enabled:
            self.tracer.charge_sim(ms)

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        if self.enabled:
            self.metrics.inc(name, amount)

    def observe(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.observe(name, value)

    def set_gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.set_gauge(name, value)

    def counter(self, name: str) -> Counter:
        return self.metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.metrics.gauge(name)

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None) -> Histogram:
        return self.metrics.histogram(name, buckets)

    def value(self, name: str) -> float:
        return self.metrics.value(name)

    # ------------------------------------------------------------------
    # node-work hook (the one call SimNode makes per unit of charged work)
    # ------------------------------------------------------------------
    def on_node_work(
        self, node_id: str, kind: str, operator: str, sim_ms: float
    ) -> None:
        """Record one unit of simulated node work.

        Counts per-kind and per-operator activity, tracks the work-size
        distribution, and charges the simulated time to whatever span is
        open — which is how facade-level spans end up carrying the
        simulated cost of the cluster work they triggered.
        """
        if not self.enabled:
            return
        metrics = self.metrics
        metrics.inc("node.ops")
        metrics.inc(f"node.kind.{kind}.sim_ms", sim_ms)
        metrics.inc(f"node.op.{operator}.sim_ms", sim_ms)
        metrics.observe("node.work_ms", sim_ms)
        self.tracer.charge_sim(sim_ms)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def add_sink(self, sink: TelemetrySink) -> None:
        self.sinks.append(sink)

    def snapshot(self) -> Dict[str, Any]:
        """Point-in-time view: all metrics plus per-span-name timings."""
        snap = self.metrics.snapshot()
        snap["enabled"] = self.enabled
        snap["spans"] = self.tracer.summary()
        return snap

    def export(self, include_traces: bool = False) -> Dict[str, Any]:
        """Build an export record and emit it to every sink."""
        record = self.snapshot()
        if include_traces:
            record["traces"] = [r.to_dict() for r in self.tracer.roots()]
        for sink in self.sinks:
            sink.emit(record)
        return record

    def reset(self) -> None:
        """Clear metrics and retained traces (between bench repetitions)."""
        self.metrics.reset()
        self.tracer.clear()


#: Shared always-off instance for components constructed without an
#: appliance (embedded engines, standalone index managers).
DISABLED = Telemetry(enabled=False)


def format_snapshot(snapshot: Mapping[str, Any], title: str = "telemetry") -> str:
    """Render a :meth:`Telemetry.snapshot` for humans (quickstart, CLIs)."""
    lines = [f"=== {title} ==="]
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            value = counters[name]
            rendered = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"  {name:<36} {rendered}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name:<36} {gauges[name]:g}")
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            h = histograms[name]
            lines.append(
                f"  {name:<36} n={h['count']} mean={h['mean']:.3f} "
                f"min={h['min']} max={h['max']}"
            )
    spans = snapshot.get("spans", {})
    if spans:
        lines.append("spans (name: count, wall ms, sim ms):")
        for name in sorted(spans):
            s = spans[name]
            lines.append(
                f"  {name:<36} n={s['count']:<6g} wall={s['wall_ms']:.3f} "
                f"sim={s['sim_ms']:.3f}"
            )
    if len(lines) == 1:
        lines.append("(no telemetry recorded)")
    return "\n".join(lines)
