"""repro.obs — the appliance-wide observability subsystem.

Counters, gauges, histograms (:mod:`repro.obs.metrics`), nested spans
with simulated + wall time (:mod:`repro.obs.tracing`), pluggable export
sinks (:mod:`repro.obs.sink`), and the :class:`Telemetry` facade that
every layer of the appliance threads through
(:mod:`repro.obs.telemetry`).

Usage::

    from repro import Impliance

    app = Impliance()                 # telemetry on by default
    app.ingest("hello world")
    app.discover()
    app.search("hello")
    print(app.telemetry.tracer.last_root.render())   # one nested trace
    print(app.stats()["counters"]["ingest.docs"])    # counters
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.sink import CallbackSink, DictSink, JsonLinesSink, TelemetrySink
from repro.obs.telemetry import DISABLED, Telemetry, format_snapshot
from repro.obs.tracing import NULL_SPAN, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TelemetrySink",
    "DictSink",
    "JsonLinesSink",
    "CallbackSink",
    "Telemetry",
    "DISABLED",
    "format_snapshot",
    "Span",
    "Tracer",
    "NULL_SPAN",
]
