"""Telemetry sinks: pluggable export targets.

A sink receives export records — plain dicts produced by
:meth:`repro.obs.telemetry.Telemetry.export` — and does whatever its
medium requires: keep them (``DictSink``), serialize them
(``JsonLinesSink``), or forward them to a callable bridge
(``CallbackSink``) wired to a real pipeline.  The appliance never
depends on a concrete sink; anything with an ``emit(record)`` method
qualifies.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, IO, List, Mapping, Optional


class TelemetrySink:
    """Base/no-op sink; subclass or duck-type ``emit``."""

    def emit(self, record: Mapping[str, Any]) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class DictSink(TelemetrySink):
    """Keeps every exported record in memory (tests, dashboards)."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def emit(self, record: Mapping[str, Any]) -> None:
        self.records.append(dict(record))

    @property
    def last(self) -> Optional[Dict[str, Any]]:
        return self.records[-1] if self.records else None

    def clear(self) -> None:
        self.records.clear()


class JsonLinesSink(TelemetrySink):
    """Serializes each export to one JSON line.

    With *stream* the line is written there as well; the rendered lines
    are always retained on ``lines`` so callers can inspect or flush.
    """

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self.stream = stream
        self.lines: List[str] = []

    def emit(self, record: Mapping[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, default=str)
        self.lines.append(line)
        if self.stream is not None:
            self.stream.write(line + "\n")


class CallbackSink(TelemetrySink):
    """Bridges exports to an arbitrary callable."""

    def __init__(self, fn: Callable[[Dict[str, Any]], None]) -> None:
        self._fn = fn

    def emit(self, record: Mapping[str, Any]) -> None:
        self._fn(dict(record))
