"""Metric primitives: counters, gauges, histograms, and their registry.

The appliance markets itself on self-managing operation (paper Sections
1 and 3.4); self-management starts with self-observation.  These are the
classic three instrument kinds, kept dependency-free and cheap enough to
live on hot paths: a counter is one float add, a histogram is a handful
of comparisons.  The :class:`MetricsRegistry` is the single namespace a
:class:`~repro.obs.telemetry.Telemetry` instance owns; every subsystem
gets (or creates) its instruments by name, so a snapshot of the registry
is a snapshot of the whole appliance.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds (milliseconds-flavored, but the
#: unit is whatever the caller observes).  Exponential, like most metric
#: systems use, so one layout serves microseconds through minutes.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


class Counter:
    """Monotonically increasing count (events, documents, bytes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> float:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A value that goes up and down (backlog depth, live nodes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> float:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Distribution summary: count/sum/min/max plus bucket counts.

    Buckets are cumulative-style upper bounds (a +Inf bucket is implicit
    as ``count``).  ``mean`` and ``percentile`` are derived; percentile
    interpolates within the winning bucket, which is as precise as any
    fixed-bucket histogram can honestly be.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, name: str, buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        bounds = tuple(sorted(buckets)) if buckets else DEFAULT_BUCKETS
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self.bucket_counts = [0] * len(bounds)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = bisect.bisect_left(self.bounds, value)
        if index < len(self.bucket_counts):
            self.bucket_counts[index] += 1
        # values above the top bound live only in count/sum/max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate q-th percentile (q in [0, 100]) from buckets."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return 0.0
        target = q / 100.0 * self.count
        seen = 0
        for bound, in_bucket in zip(self.bounds, self.bucket_counts):
            seen += in_bucket
            if seen >= target:
                return bound
        return self.max if self.max is not None else self.bounds[-1]

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "min": self.min,
            "max": self.max,
            "mean": round(self.mean, 6),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.3f})"


class MetricsRegistry:
    """Get-or-create namespace for every instrument in one appliance."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_free(name, self._gauges, self._histograms)
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_free(name, self._counters, self._histograms)
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_free(name, self._counters, self._gauges)
            instrument = self._histograms[name] = Histogram(name, buckets)
        return instrument

    @staticmethod
    def _check_free(name: str, *namespaces: Dict[str, Any]) -> None:
        for namespace in namespaces:
            if name in namespace:
                raise ValueError(f"metric {name!r} already registered with another type")

    # ------------------------------------------------------------------
    # convenience forms used on hot paths
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def value(self, name: str) -> float:
        """Current value of a counter or gauge (0.0 when absent)."""
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name].value
        return 0.0

    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        return sorted({*self._counters, *self._gauges, *self._histograms})

    def snapshot(self) -> Dict[str, Any]:
        """One dict of everything, stable-ordered for diffing/printing."""
        return {
            "counters": {n: self._counters[n].snapshot() for n in sorted(self._counters)},
            "gauges": {n: self._gauges[n].snapshot() for n in sorted(self._gauges)},
            "histograms": {n: self._histograms[n].snapshot() for n in sorted(self._histograms)},
        }

    def reset(self) -> None:
        """Drop all instruments (between benchmark repetitions)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
