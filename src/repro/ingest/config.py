"""Knobs of the staged ingest pipeline (see docs/INGEST.md)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import validate_choice, validate_positive, validate_that

#: Admission policies when the staging queue is full.
ADMISSION_BLOCK = "block"
ADMISSION_SHED = "shed"


@dataclass(frozen=True)
class IngestConfig:
    """Configuration of the batched write path.

    Parameters
    ----------
    batch_size:
        Documents per group commit — one storage write, one index
        maintenance round, one invalidation epoch per this many documents.
    queue_capacity:
        Staging slots between the validate and storage-write stages.  When
        full, *admission* decides what happens to the producer.
    admission:
        ``"block"`` (default): the producer stalls until a batch drains —
        backpressure propagates upstream, every document is eventually
        ingested, and each stall is counted.  ``"shed"``: the document is
        rejected immediately and counted as shed — load shedding for
        streams where staleness beats queueing collapse.
    """

    batch_size: int = 256
    queue_capacity: int = 2048
    admission: str = ADMISSION_BLOCK

    def __post_init__(self) -> None:
        validate_positive("IngestConfig", batch_size=self.batch_size)
        validate_that(
            "IngestConfig",
            self.queue_capacity >= self.batch_size,
            "queue_capacity must hold at least one batch",
        )
        validate_choice(
            "IngestConfig", "admission", self.admission,
            (ADMISSION_BLOCK, ADMISSION_SHED),
        )
