"""The staged ingest pipeline (see docs/INGEST.md).

Kept import-light: :mod:`repro.core.config` pulls :class:`IngestConfig`
from here, so this package must not import the appliance at module
scope.
"""

from repro.ingest.config import ADMISSION_BLOCK, ADMISSION_SHED, IngestConfig
from repro.ingest.pipeline import IngestPipeline, IngestReport
from repro.ingest.queue import ADMITTED, SHED, STALLED, BackpressureQueue, QueueStats

__all__ = [
    "ADMISSION_BLOCK",
    "ADMISSION_SHED",
    "ADMITTED",
    "STALLED",
    "SHED",
    "BackpressureQueue",
    "IngestConfig",
    "IngestPipeline",
    "IngestReport",
    "QueueStats",
]
