"""The bounded staging queue between ingest stages.

The simulation is single-threaded, so backpressure is modeled as control
flow rather than blocked threads: :meth:`BackpressureQueue.admit` either
accepts a document or reports why not.  Under ``"block"`` admission a
full queue *stalls* the producer — it must drain a batch downstream and
re-offer; each stall is counted and exported as the
``ingest.backpressure_stalls`` counter.  Under ``"shed"`` admission the
document is dropped and counted instead — load shedding for streams
where staleness beats queueing collapse.  Queue depth is exported as the
``ingest.queue_depth`` gauge after every transition.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Generic, List, TypeVar

from repro.ingest.config import ADMISSION_SHED, IngestConfig

T = TypeVar("T")

#: Admission outcomes.
ADMITTED = "admitted"
STALLED = "stalled"  # full under block admission: drain a batch, re-offer
SHED = "shed"        # full under shed admission: the document is gone


@dataclass
class QueueStats:
    enqueued: int = 0
    drained: int = 0
    stalls: int = 0
    shed: int = 0


class BackpressureQueue(Generic[T]):
    """Bounded FIFO with explicit admission control."""

    def __init__(self, config: IngestConfig, telemetry=None) -> None:
        self.capacity = config.queue_capacity
        self.shed_on_full = config.admission == ADMISSION_SHED
        self.telemetry = telemetry
        self.stats = QueueStats()
        self._items: Deque[T] = deque()

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def _gauge(self) -> None:
        if self.telemetry is not None:
            self.telemetry.set_gauge("ingest.queue_depth", len(self._items))

    # ------------------------------------------------------------------
    def admit(self, item: T, can_shed: bool = True) -> str:
        """Try to enqueue *item*; returns the admission outcome.

        ``ADMITTED``: enqueued.  ``STALLED``: full — the caller must
        drain a batch and offer again (backpressure).  ``SHED``: full
        under shed admission — the item was rejected outright.  Bulk
        callers that must not lose documents pass ``can_shed=False`` to
        force stall semantics regardless of policy.
        """
        if self.full:
            if self.shed_on_full and can_shed:
                self.stats.shed += 1
                if self.telemetry is not None:
                    self.telemetry.inc("ingest.shed")
                return SHED
            self.stats.stalls += 1
            if self.telemetry is not None:
                self.telemetry.inc("ingest.backpressure_stalls")
            return STALLED
        self._items.append(item)
        self.stats.enqueued += 1
        self._gauge()
        return ADMITTED

    def take_batch(self, limit: int) -> List[T]:
        """Dequeue up to *limit* items in FIFO order."""
        take = min(limit, len(self._items))
        batch = [self._items.popleft() for _ in range(take)]
        if batch:
            self.stats.drained += len(batch)
            self._gauge()
        return batch
