"""The bounded staging queue between pipeline stages.

The simulation is single-threaded, so backpressure is modeled as control
flow rather than blocked threads: :meth:`BackpressureQueue.admit` either
accepts an item or reports why not.  Under ``"block"`` admission a full
queue *stalls* the producer — it must drain a batch downstream and
re-offer; each stall is counted and exported as the
``<prefix>.backpressure_stalls`` counter.  Under ``"shed"`` admission the
item is dropped and counted instead — load shedding for streams where
staleness beats queueing collapse.  Queue depth is exported as the
``<prefix>.queue_depth`` gauge after every transition.

Two subsystems stage through this machinery: the ingest pipeline (one
queue, ``ingest.*`` metrics) and the serving layer's request scheduler
(one queue per tenant×QoS lane, ``serving.tenant.<t>.*`` metrics plus an
``on_outcome`` hook so no admission outcome is ever silently dropped).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Generic, List, Optional, TypeVar

from repro.ingest.config import ADMISSION_SHED, IngestConfig

T = TypeVar("T")

#: Admission outcomes.
ADMITTED = "admitted"
STALLED = "stalled"  # full under block admission: drain a batch, re-offer
SHED = "shed"        # full under shed admission: the item is gone


@dataclass
class QueueStats:
    enqueued: int = 0
    drained: int = 0
    stalls: int = 0
    shed: int = 0


class BackpressureQueue(Generic[T]):
    """Bounded FIFO with explicit admission control.

    Constructed either from an :class:`IngestConfig` (the ingest staging
    queue) or from explicit ``capacity=`` / ``shed_on_full=`` keywords
    (the serving scheduler's per-tenant lanes).  *metric_prefix* names
    the exported counters/gauges; *on_outcome* is called with every
    admission outcome (``admitted``/``stalled``/``shed``) so owners can
    attribute outcomes per tenant instead of losing them in a global sum.
    """

    def __init__(
        self,
        config: Optional[IngestConfig] = None,
        telemetry=None,
        *,
        capacity: Optional[int] = None,
        shed_on_full: Optional[bool] = None,
        metric_prefix: str = "ingest",
        on_outcome: Optional[Callable[[str], None]] = None,
    ) -> None:
        if config is not None:
            capacity = config.queue_capacity if capacity is None else capacity
            if shed_on_full is None:
                shed_on_full = config.admission == ADMISSION_SHED
        if capacity is None:
            raise ValueError("BackpressureQueue needs a config or capacity=")
        self.capacity = capacity
        self.shed_on_full = bool(shed_on_full)
        self.telemetry = telemetry
        self.metric_prefix = metric_prefix
        self.on_outcome = on_outcome
        self.stats = QueueStats()
        self._items: Deque[T] = deque()

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def _gauge(self) -> None:
        if self.telemetry is not None:
            self.telemetry.set_gauge(
                f"{self.metric_prefix}.queue_depth", len(self._items)
            )

    def _record(self, outcome: str) -> None:
        if self.on_outcome is not None:
            self.on_outcome(outcome)

    # ------------------------------------------------------------------
    def admit(self, item: T, can_shed: bool = True) -> str:
        """Try to enqueue *item*; returns the admission outcome.

        ``ADMITTED``: enqueued.  ``STALLED``: full — the caller must
        drain a batch and offer again (backpressure).  ``SHED``: full
        under shed admission — the item was rejected outright.  Bulk
        callers that must not lose documents pass ``can_shed=False`` to
        force stall semantics regardless of policy.
        """
        if self.full:
            if self.shed_on_full and can_shed:
                self.stats.shed += 1
                if self.telemetry is not None:
                    self.telemetry.inc(f"{self.metric_prefix}.shed")
                self._record(SHED)
                return SHED
            self.stats.stalls += 1
            if self.telemetry is not None:
                self.telemetry.inc(f"{self.metric_prefix}.backpressure_stalls")
            self._record(STALLED)
            return STALLED
        self._items.append(item)
        self.stats.enqueued += 1
        self._gauge()
        self._record(ADMITTED)
        return ADMITTED

    def take_batch(self, limit: int) -> List[T]:
        """Dequeue up to *limit* items in FIFO order."""
        take = min(limit, len(self._items))
        batch = [self._items.popleft() for _ in range(take)]
        if batch:
            self.stats.drained += len(batch)
            self._gauge()
        return batch

    def withdraw_newest(self) -> Optional[T]:
        """Remove and return the most recently staged item *without*
        counting it as shed — the serving layer's inline path admits a
        request and services it in the same synchronous step."""
        if not self._items:
            return None
        item = self._items.pop()
        self.stats.drained += 1
        self._gauge()
        return item

    def evict_newest(self) -> Optional[T]:
        """Drop and return the most recently staged item, counting it as
        shed — the serving scheduler's QoS-aware victim eviction: when
        the global cap is hit by higher-priority work, the youngest item
        of the lowest tier gives up its slot."""
        if not self._items:
            return None
        victim = self._items.pop()
        self.stats.shed += 1
        if self.telemetry is not None:
            self.telemetry.inc(f"{self.metric_prefix}.shed")
        self._gauge()
        self._record(SHED)
        return victim
