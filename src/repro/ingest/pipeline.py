"""The staged ingest pipeline: validate → stage → group commit.

Ingest is Impliance's front door (Figure 1): everything — prose, rows,
XML, email — enters here, is normalized into the uniform model, and only
then flows to storage, indexing, and the asynchronous discovery phases.
This module turns that flow into explicit stages with a bounded staging
queue between producer and group commit:

1. **validate** — :func:`repro.model.projection.projection_of` walks the
   content tree once, rejecting unclassifiable values and caching the
   projection every later stage reuses.
2. **stage** — the document enters the :class:`BackpressureQueue`; a
   full queue stalls (or sheds) the producer instead of growing without
   bound.
3. **group commit** — one batch takes one sharded storage write across
   the data nodes, one index-maintenance round, one coalesced cache
   invalidation epoch, and one discovery enqueue.

The pipeline drives the same appliance components the per-document
reactive path uses; it merely orchestrates them batch-at-a-time.  While
a batch commits, the appliance's store listeners stand down
(``_pipeline_active``) so stages run exactly once per document.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence

from repro.ingest.config import IngestConfig
from repro.ingest.queue import ADMITTED, SHED, STALLED, BackpressureQueue
from repro.model.document import Document
from repro.model.projection import projection_of


@contextmanager
def _gc_paused() -> Iterator[None]:
    """Pause cyclic GC for the duration of a bulk run.

    The collector's cost is proportional to the *live* set, and a bulk
    load grows that set as fast as anything in the system — letting the
    periodic collection re-traverse every stored document and posting
    list mid-load dominates the batched path's runtime.  Reference
    counting still reclaims everything the pipeline drops (its batch
    structures are acyclic); cycle collection resumes on exit and the
    deferred sweep happens at the next natural trigger instead of
    hundreds of times during the load.
    """
    if not gc.isenabled():
        yield
        return
    gc.disable()
    try:
        yield
    finally:
        gc.enable()


@dataclass
class IngestReport:
    """Outcome of one bulk/stream ingest run."""

    offered: int = 0        #: documents presented to the pipeline
    stored: int = 0         #: documents that reached storage
    shed: int = 0           #: documents dropped by shed admission
    stalls: int = 0         #: producer stalls while waiting for a drain
    batches: int = 0        #: group commits performed
    finish_ms: float = 0.0  #: latest simulated finish across commits

    @property
    def all_stored(self) -> bool:
        return self.stored == self.offered


class IngestPipeline:
    """Batched write path over an :class:`repro.core.Impliance`.

    The public appliance ``ingest*`` methods all funnel here — a single
    document is simply a batch of one, so both paths share validation,
    storage ordering, index maintenance, and invalidation semantics.
    """

    def __init__(self, appliance, config: IngestConfig) -> None:
        self.appliance = appliance
        self.config = config
        telemetry = appliance.telemetry if appliance.telemetry.enabled else None
        self.queue: BackpressureQueue[Document] = BackpressureQueue(config, telemetry)

    # ------------------------------------------------------------------
    # bulk entry points
    # ------------------------------------------------------------------
    def run_documents(self, documents: Sequence[Document]) -> List[Document]:
        """Ingest a list through the staged pipeline; returns the stored
        documents in arrival order.

        Bulk callers must not lose documents, so admission never sheds
        here: a full queue drains a batch downstream and re-offers
        (counted as a backpressure stall).  A validation error mid-list
        still commits the documents admitted before it — the same
        prefix-survives semantics as a sequential ingest loop.
        """
        if len(documents) >= self.config.batch_size:
            # A genuinely bulk run: keep the cycle collector out of the
            # hot loop (a batch of one must not pay a full collection).
            with _gc_paused():
                return self._run_documents(documents)
        return self._run_documents(documents)

    def _run_documents(self, documents: Sequence[Document]) -> List[Document]:
        stored: List[Document] = []
        try:
            for document in documents:
                projection_of(document)  # validate stage; caches the walk
                while self.queue.admit(document, can_shed=False) is not ADMITTED:
                    stored.extend(self._flush_batch())
                if self.queue.depth >= self.config.batch_size:
                    stored.extend(self._flush_batch())
        finally:
            while self.queue.depth:
                stored.extend(self._flush_batch())
        return stored

    def run_stream(self, documents: Iterable[Document]) -> IngestReport:
        """Ingest a stream under the configured admission policy.

        Unlike :meth:`run_documents`, a ``"shed"``-configured pipeline
        may drop documents when the queue is full — the report says how
        many.  Under ``"block"`` the stream stalls and drains like the
        bulk path.
        """
        report = IngestReport()
        stalls_before = self.queue.stats.stalls
        shed_before = self.queue.stats.shed
        with _gc_paused():
            for document in documents:
                report.offered += 1
                projection_of(document)
                outcome = self.queue.admit(document)
                if outcome is SHED:
                    continue
                while outcome is STALLED:
                    self._drain_into(report)
                    outcome = self.queue.admit(document)
                    if outcome is SHED:  # pragma: no cover - shed after stall
                        break
                if self.queue.depth >= self.config.batch_size:
                    self._drain_into(report)
            while self.queue.depth:
                self._drain_into(report)
        report.stalls = self.queue.stats.stalls - stalls_before
        report.shed = self.queue.stats.shed - shed_before
        return report

    # ------------------------------------------------------------------
    # group commit
    # ------------------------------------------------------------------
    def _drain_into(self, report: IngestReport) -> None:
        batch = self._flush_batch()
        if batch:
            report.stored += len(batch)
            report.batches += 1
            report.finish_ms = max(report.finish_ms, self._last_finish)

    def _flush_batch(self) -> List[Document]:
        batch = self.queue.take_batch(self.config.batch_size)
        if not batch:
            return []
        return self._commit_batch(batch)

    def _commit_batch(self, batch: List[Document]) -> List[Document]:
        """One group commit: storage shards, indexes, views, discovery.

        The appliance's reactive store listeners are suppressed for the
        duration — the pipeline calls each maintenance stage explicitly,
        once per batch — and every per-store put event lands in a single
        coalesced invalidation publication (one cache epoch, one change
        set per batch, however many nodes the batch sharded across).

        Index and auto-view maintenance run *inside* the coalescing
        window: the change set is published when the window closes, so
        delta consumers — incremental materializations, standing-query
        notifications that may re-evaluate through the engine — always
        observe the batch fully committed (stores, indexes, and catalog
        views consistent), exactly like the reactive path, where store
        listeners index before the bus publishes.  Tombstones in the
        batch (batched deletes) are unindexed instead of indexed and
        skip discovery/view growth.
        """
        app = self.appliance
        telemetry = app.telemetry
        with telemetry.span("ingest.batch", docs=len(batch)):
            app._pipeline_active = True
            try:
                with app.caches.bus.coalescing():
                    stored, finish = app.executor.ingest_batch(batch)
                    live = [d for d in stored if not d.is_tombstone]
                    app.indexes.index_batch(live)
                    for tombstone in stored:
                        if tombstone.is_tombstone:
                            app.indexes.unindex(tombstone.doc_id)
                    app._maintain_auto_views(live)
                    app.discovery.enqueue_many(live)
            finally:
                app._pipeline_active = False
        self._last_finish = finish
        telemetry.inc("ingest.docs", len(stored))
        telemetry.inc("ingest.batches")
        telemetry.observe("ingest.batch_size", len(stored))
        return stored

    _last_finish = 0.0
