"""Small shared utilities: logical time, stable hashing, id generation,
and config validation.

The appliance avoids wall-clock time internally; every ordering decision
uses a :class:`LogicalClock` so simulations are deterministic and
repeatable run-to-run.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Iterator, Sequence


class LogicalClock:
    """A monotonically increasing logical timestamp source (Lamport-style).

    ``tick()`` returns the next timestamp; ``observe(ts)`` advances the
    clock past an externally observed timestamp, preserving happens-before
    when two components exchange stamped messages.
    """

    def __init__(self, start: int = 0) -> None:
        self._now = start

    def tick(self) -> int:
        self._now += 1
        return self._now

    def observe(self, ts: int) -> int:
        self._now = max(self._now, ts)
        return self.tick()

    @property
    def now(self) -> int:
        return self._now


class IdGenerator:
    """Deterministic, prefixed, collision-free id sequences.

    ``IdGenerator("doc")`` yields ``doc-000001``, ``doc-000002``, ...
    Deterministic ids keep every experiment reproducible.
    """

    def __init__(self, prefix: str) -> None:
        if not prefix:
            raise ValueError("prefix must be non-empty")
        self.prefix = prefix
        self._counter = itertools.count(1)

    def next(self) -> str:
        return f"{self.prefix}-{next(self._counter):06d}"

    def __iter__(self) -> Iterator[str]:
        while True:
            yield self.next()


def stable_hash(text: str, buckets: int) -> int:
    """Platform-stable hash of *text* into ``[0, buckets)``.

    Python's builtin ``hash`` is salted per-process; data placement must
    not depend on that, or replicas would land differently on every run.
    """
    if buckets <= 0:
        raise ValueError("buckets must be positive")
    digest = hashlib.md5(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % buckets


# ----------------------------------------------------------------------
# config validation — the one helper every ApplianceConfig sub-config
# (CacheConfig, IngestConfig, ServingConfig) validates through, so bad
# values are rejected the same way with the same message shape.
# ----------------------------------------------------------------------
def validate_positive(config: str, **fields: float) -> None:
    """Reject any field below 1: ``validate_positive("IngestConfig",
    batch_size=batch_size)`` raises ``ValueError("IngestConfig.batch_size
    must be >= 1")``."""
    for name, value in fields.items():
        if value < 1:
            raise ValueError(f"{config}.{name} must be >= 1")


def validate_choice(config: str, field: str, value: object, choices: Sequence) -> None:
    """Reject a value outside the allowed set, naming the alternatives."""
    if value not in choices:
        allowed = ", ".join(repr(c) for c in choices)
        raise ValueError(f"{config}.{field} must be one of {allowed}; got {value!r}")


def validate_that(config: str, condition: bool, message: str) -> None:
    """Reject on a cross-field constraint (``queue_capacity must hold at
    least one batch``) with the owning config named in the error."""
    if not condition:
        raise ValueError(f"{config}: {message}")
