"""The concurrent multi-tenant serving layer (docs/SERVING.md).

Everything a shared appliance needs between "a request arrived" and "the
engine ran it": per-tenant admission control reusing the ingest
:class:`~repro.ingest.queue.BackpressureQueue` block/shed machinery, a
weighted fair-share scheduler over tenant×QoS lanes, sessions that bind
every request to a :class:`~repro.security.policy.Principal`, and a
workload driver that replays closed- and open-loop arrival processes
over the :mod:`repro.workloads` corpora in deterministic virtual time.
"""

from repro.serving.config import (
    QOS_BATCH,
    QOS_DISCOVERY,
    QOS_INTERACTIVE,
    QOS_TIERS,
    ServingConfig,
)
from repro.serving.scheduler import Request, RequestScheduler
from repro.serving.session import Session
from repro.serving.driver import (
    ArrivalSpec,
    ServingReport,
    TenantSpec,
    WorkloadDriver,
    percentile,
)

__all__ = [
    "QOS_BATCH",
    "QOS_DISCOVERY",
    "QOS_INTERACTIVE",
    "QOS_TIERS",
    "ServingConfig",
    "Request",
    "RequestScheduler",
    "Session",
    "ArrivalSpec",
    "ServingReport",
    "TenantSpec",
    "WorkloadDriver",
    "percentile",
]
