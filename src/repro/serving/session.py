"""Sessions: the tenant-bound client API of the appliance.

``Impliance.connect(principal=..., qos=...)`` returns a :class:`Session`
— the unit of multi-tenancy.  Every call on a session becomes a
:class:`~repro.serving.scheduler.Request` attributed to the session's
tenant and QoS tier, passes the scheduler's admission control (quotas,
global cap, fair share), and — when the session carries an
:class:`~repro.security.policy.AccessPolicy` — is enforced on the hot
path through the same repository-boundary scoping
:class:`~repro.security.enforcement.SecureSession` pioneered.

The *implicit default session* (principal ``default``, interactive tier,
no policy) is what the legacy bare entry points
(``Impliance.search``/``sql``/``faceted``/``graph``) now delegate to;
its results are byte-identical to the pre-serving implementations — the
query bodies below are those implementations, moved, with only tenant
accounting added around them.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.model.document import Document
from repro.query.faceted import FacetedSession
from repro.query.graph import GraphQuery
from repro.query.keyword import KeywordSearch
from repro.query.result import QueryResult
from repro.security.policy import AccessDenied, Action, Principal, SYSTEM_ROLE
from repro.serving.scheduler import Request

#: Virtual service demand per request kind (ms) — what the workload
#: driver charges when it replays a session's traffic in virtual time.
DEFAULT_COSTS: Mapping[str, float] = {
    "search": 1.0,
    "sql": 3.0,
    "faceted": 2.0,
    "graph": 1.5,
    "connections": 2.0,
    "find": 2.0,
    "ingest": 0.5,
    "ingest_many": 4.0,
    "ingest_stream": 4.0,
    "update": 1.0,
    "delete": 0.5,
    "subscribe": 2.0,
    "notify": 0.5,
}


class Session:
    """One tenant's handle on the appliance.

    Sessions are cheap (no per-session threads or caches — the scheduler
    multiplexes thousands of them) and are context managers::

        with app.connect(principal=alice, qos="interactive") as s:
            s.search("widget")
            s.sql("SELECT * FROM orders")
    """

    def __init__(
        self,
        app,
        principal: Principal,
        qos: str,
        *,
        policy=None,
        audit=None,
        tenant: Optional[str] = None,
        session_id: int = 0,
    ) -> None:
        self._app = app
        self.principal = principal
        self.qos = qos
        self.tenant = tenant if tenant is not None else principal.name
        self.policy = policy
        self.session_id = session_id
        self.closed = False
        if policy is not None:
            from repro.security.enforcement import SecureSession

            self._secure = SecureSession(app, principal, policy, audit)
        else:
            self._secure = None
        #: The repository queries run over: the appliance itself for an
        #: unrestricted session, the policy-scoped view otherwise.
        self._repo = self._secure if self._secure is not None else app
        #: Standing queries opened on this session (closed with it).
        self._subscriptions: List[Any] = []

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def audit(self):
        return self._secure.audit if self._secure is not None else None

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        for subscription in self._subscriptions:
            subscription.close()
        self._subscriptions = []
        self.closed = True

    def request(self, kind: str, fn=None, cost_ms: Optional[float] = None) -> Request:
        """Build (but do not submit) the Request a *kind* call issues —
        the workload driver uses this to stage session traffic for
        virtual-time dispatch instead of running it inline."""
        return Request(
            tenant=self.tenant,
            qos=self.qos,
            kind=kind,
            fn=fn,
            cost_ms=cost_ms if cost_ms is not None else DEFAULT_COSTS.get(kind, 1.0),
            session_id=self.session_id,
        )

    def _run(self, kind: str, fn) -> Any:
        if self.closed:
            raise RuntimeError(f"session {self.session_id} is closed")
        return self._app.serving.execute_inline(self.request(kind, fn))

    # ------------------------------------------------------------------
    # query interfaces — the moved Impliance bodies (byte-identical on
    # the default session), tenant-scheduled and policy-scoped.
    # ------------------------------------------------------------------
    def search(self, query: str, top_k: int = 10) -> QueryResult:
        """Keyword search (Section 3.2.1), admitted under this tenant."""
        return self._run("search", lambda: self._search_impl(query, top_k))

    def _search_impl(self, query: str, top_k: int) -> QueryResult:
        app = self._app
        with app.telemetry.span("query.search", query=query) as span:
            if self._secure is None:
                hits = KeywordSearch(app).search(query, top_k=top_k)
            else:
                # The policy path: SecureSession.search applies QUERY
                # filtering at the hit boundary and audits each grant.
                hits = self._secure.search(query, top_k=top_k)
            span.tag("hits", len(hits))
        app.telemetry.inc("query.search")
        return app._flag_degradation(QueryResult.from_hits(hits, trace=span.record()))

    def sql(
        self,
        query: str,
        planner: str = "simple",
        statistics=None,
        adaptive: bool = False,
    ) -> QueryResult:
        """SQL over views (Figure 2's legacy-application path)."""
        return self._run(
            "sql", lambda: self._sql_impl(query, planner, statistics, adaptive)
        )

    def _sql_impl(self, query: str, planner: str, statistics, adaptive: bool) -> QueryResult:
        app = self._app
        if self._secure is None:
            return app._flag_degradation(
                app.engine.sql(
                    query, planner=planner, statistics=statistics, adaptive=adaptive
                )
            )
        # Policy-scoped SQL: an engine over the secured repository only
        # ever sees permitted documents, so joins and aggregates cannot
        # leak through side channels (no result cache on this engine —
        # cached rows must never outlive a policy change).
        from repro.query.engine import QueryEngine

        result = QueryEngine(self._secure).sql(
            query, planner=planner, statistics=statistics, adaptive=adaptive
        )
        self._secure.audit.record(
            self.principal.name, Action.QUERY, "-", True, f"sql:{query}"
        )
        return app._flag_degradation(result)

    def faceted(self, query: Optional[str] = None) -> FacetedSession:
        """Start a guided-search session scoped to this tenant."""
        return self._run("faceted", lambda: self._faceted_impl(query))

    def _faceted_impl(self, query: Optional[str]) -> FacetedSession:
        app = self._app
        if self._secure is None:
            return FacetedSession(app, query, telemetry=app.telemetry)
        visible = {d.doc_id for d in self._secure.documents()}
        return FacetedSession(self._secure, query, within=visible)

    def graph(self) -> GraphQuery:
        """The graph/connection query interface."""
        return self._run("graph", lambda: self._graph_impl())

    def _graph_impl(self) -> GraphQuery:
        app = self._app
        if self._secure is None:
            return GraphQuery(app, telemetry=app.telemetry)
        return GraphQuery(self._secure)

    def connections(
        self,
        source: str,
        target: str,
        max_hops: int = 4,
        relations: Optional[Sequence[str]] = None,
    ) -> QueryResult:
        """How is *source* connected to *target*?"""
        return self._run(
            "connections",
            lambda: self._app._flag_degradation(
                self._graph_impl().connected(
                    source, target, max_hops=max_hops, relations=relations
                )
            ),
        )

    def find(self, query, top_k: int = 10) -> QueryResult:
        """Hybrid search over content, structure, values, facets, and
        annotations (Section 3.2's unified search)."""
        return self._run("find", lambda: self._find_impl(query, top_k))

    def _find_impl(self, query, top_k: int) -> QueryResult:
        from repro.query.hybrid import HybridSearch

        app = self._app
        with app.telemetry.span("query.hybrid") as span:
            hits = HybridSearch(self._repo).search(query, top_k=top_k)
            span.tag("hits", len(hits))
        app.telemetry.inc("query.hybrid")
        return app._flag_degradation(QueryResult.from_hits(hits, trace=span.record()))

    # ------------------------------------------------------------------
    # writes — tenant-attributed ingest through the staged pipeline
    # ------------------------------------------------------------------
    def _check_may_write(self) -> None:
        """Coarse write gate for policy sessions: the principal must hold
        a role some rule grants UPDATE (system bypasses, as everywhere).
        Per-document UPDATE checks still apply on :meth:`update_document`."""
        if self.policy is None or SYSTEM_ROLE in self.principal.roles:
            return
        from repro.security.policy import Effect

        for rule in self.policy.rules():
            if (
                rule.effect is Effect.ALLOW
                and Action.UPDATE in rule.actions
                and self.principal.has_any_role(rule.roles)
            ):
                return
        raise AccessDenied(f"{self.principal.name} may not ingest")

    def ingest(self, payload: Any, format: Optional[str] = None, **kwargs: Any):
        """Single-payload ingest, attributed to this tenant."""
        self._check_may_write()
        return self._run("ingest", lambda: self._app.ingest(payload, format, **kwargs))

    def ingest_many(
        self,
        payloads: Iterable[Any],
        format: Optional[str] = None,
        *,
        table: Optional[str] = None,
        delimiter: str = ",",
    ) -> List[Document]:
        """Bulk ingest through the staged pipeline (the fast path)."""
        self._check_may_write()
        return self._run(
            "ingest_many",
            lambda: self._app.ingest_many(
                payloads, format, table=table, delimiter=delimiter
            ),
        )

    def ingest_stream(
        self,
        payloads: Iterable[Any],
        format: Optional[str] = None,
        *,
        table: Optional[str] = None,
        delimiter: str = ",",
    ):
        """Streaming ingest under the configured admission policy."""
        self._check_may_write()
        return self._run(
            "ingest_stream",
            lambda: self._app.ingest_stream(
                payloads, format, table=table, delimiter=delimiter
            ),
        )

    def delete_document(self, doc_id: str) -> Document:
        """Tombstone a document (append-only delete), tenant-attributed.
        History and time travel survive; reads, scans, indexes, and
        incrementally maintained views see the document as gone."""
        self._check_may_write()
        return self._run("delete", lambda: self._app.delete_document(doc_id))

    # ------------------------------------------------------------------
    # standing queries — continuous results over the invalidation bus
    # ------------------------------------------------------------------
    def subscribe(self, query: str, on_delta=None):
        """Open a standing query (SQL or keyword search) on this tenant.

        Returns a :class:`~repro.query.continuous.Subscription` whose
        result deltas are pushed once per invalidation epoch as ingest
        batches commit; notifications run through the scheduler as this
        tenant's ``discovery``-tier work, so standing queries never
        starve interactive traffic.  Poll with ``subscription.poll()``
        or pass ``on_delta``.  Closed automatically with the session.
        """
        subscription = self._run(
            "subscribe",
            lambda: self._app.subscriptions.subscribe(
                query, tenant=self.tenant, on_delta=on_delta
            ),
        )
        self._subscriptions.append(subscription)
        return subscription

    def update_document(self, doc_id: str, content: Any) -> Document:
        """Versioned update; per-document UPDATE enforcement when the
        session carries a policy."""
        if self._secure is not None:
            return self._run(
                "update", lambda: self._secure.update_document(doc_id, content)
            )
        return self._run(
            "update", lambda: self._app.update_document(doc_id, content)
        )

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """This tenant's slice of the serving stats."""
        return self._app.serving.stats()["tenants"].get(
            self.tenant,
            {"admitted": 0, "stalled": 0, "shed": 0, "completed": 0, "failed": 0,
             "queued": 0, "by_qos": {}, "mean_latency_ms": 0.0},
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"Session(tenant={self.tenant!r}, principal={self.principal.name!r}, "
            f"qos={self.qos!r}, policy={'yes' if self.policy else 'no'})"
        )
