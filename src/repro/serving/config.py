"""Serving-layer configuration (the ``ApplianceConfig(serving=...)`` knob).

Like :class:`~repro.cache.config.CacheConfig` and
:class:`~repro.ingest.config.IngestConfig`, the defaults are the product:
admission control and fair-share scheduling are on out of the box, sized
for the simulated appliance, and validated through the same shared
helpers so all three sub-configs reject bad values the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Tuple

from repro.util import validate_choice, validate_positive, validate_that

#: QoS tiers, highest priority first.  Interactive traffic is the last
#: to be shed; discovery (background enrichment sweeps) the first.
QOS_INTERACTIVE = "interactive"
QOS_BATCH = "batch"
QOS_DISCOVERY = "discovery"
QOS_TIERS: Tuple[str, ...] = (QOS_INTERACTIVE, QOS_BATCH, QOS_DISCOVERY)

#: Default fair-share weights per tier (relative service rates under
#: contention — interactive gets 8 dispatch slots for every 1 discovery).
DEFAULT_QOS_WEIGHTS: Mapping[str, int] = {
    QOS_INTERACTIVE: 8,
    QOS_BATCH: 2,
    QOS_DISCOVERY: 1,
}


def tier_priority(qos: str) -> int:
    """Smaller is more important; used for shed ordering."""
    return QOS_TIERS.index(qos)


@dataclass(frozen=True)
class ServingConfig:
    """Tenant quotas, QoS weights, and scheduler knobs.

    Parameters
    ----------
    max_concurrency:
        Requests the appliance services simultaneously in the dispatch
        loop (the virtual-time "server slots" of the workload driver).
    global_queue_cap:
        Total staged requests across every tenant.  When hit, admission
        becomes QoS-aware: an arriving request of a higher tier evicts
        the youngest staged request of the lowest backlogged tier; an
        arriving request with nothing lower-priority to evict is itself
        stalled or shed by its tier's policy.
    tenant_queue_cap:
        Staged-request quota per tenant (across its QoS lanes) unless
        overridden in *tenant_quotas*.
    tenant_quotas:
        Per-tenant overrides of *tenant_queue_cap*, keyed by tenant name.
    qos_weights:
        Fair-share weight per QoS tier; every tier must have a positive
        weight.  Dispatch uses stride scheduling over tenant×tier lanes,
        so a tenant with pending work is never starved regardless of the
        weights.
    block_tiers:
        Tiers whose requests stall (retry after *retry_backoff_ms*)
        rather than shed when their queue or quota is full.  Interactive
        blocks by default — a user at a console prefers waiting to an
        error; batch and discovery shed.
    retry_backoff_ms:
        Virtual-time backoff before a stalled request is re-offered.
    default_qos:
        Tier assigned to sessions that do not pick one.
    """

    max_concurrency: int = 4
    global_queue_cap: int = 4096
    tenant_queue_cap: int = 1024
    tenant_quotas: Mapping[str, int] = field(default_factory=dict)
    qos_weights: Mapping[str, int] = field(
        default_factory=lambda: dict(DEFAULT_QOS_WEIGHTS)
    )
    block_tiers: Tuple[str, ...] = (QOS_INTERACTIVE,)
    retry_backoff_ms: float = 5.0
    default_qos: str = QOS_INTERACTIVE

    def __post_init__(self) -> None:
        validate_positive(
            "ServingConfig",
            max_concurrency=self.max_concurrency,
            global_queue_cap=self.global_queue_cap,
            tenant_queue_cap=self.tenant_queue_cap,
            retry_backoff_ms=self.retry_backoff_ms,
        )
        validate_choice("ServingConfig", "default_qos", self.default_qos, QOS_TIERS)
        for tier in self.block_tiers:
            validate_choice("ServingConfig", "block_tiers", tier, QOS_TIERS)
        for tier, weight in self.qos_weights.items():
            validate_choice("ServingConfig", "qos_weights", tier, QOS_TIERS)
            validate_positive("ServingConfig", **{f"qos_weights[{tier}]": weight})
        for tier in QOS_TIERS:
            validate_that(
                "ServingConfig",
                tier in self.qos_weights,
                f"qos_weights must cover tier {tier!r}",
            )
        for tenant, quota in self.tenant_quotas.items():
            validate_positive("ServingConfig", **{f"tenant_quotas[{tenant}]": quota})
            validate_that(
                "ServingConfig",
                quota <= self.global_queue_cap,
                f"tenant_quotas[{tenant}] cannot exceed global_queue_cap",
            )
        validate_that(
            "ServingConfig",
            self.tenant_queue_cap <= self.global_queue_cap,
            "tenant_queue_cap cannot exceed global_queue_cap",
        )

    def quota_for(self, tenant: str) -> int:
        return self.tenant_quotas.get(tenant, self.tenant_queue_cap)

    def weight_for(self, qos: str) -> int:
        return self.qos_weights[qos]

    def blocks(self, qos: str) -> bool:
        return qos in self.block_tiers
