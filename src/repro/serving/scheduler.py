"""The fair-share request scheduler: admission + dispatch for serving.

One scheduler per appliance multiplexes every session's requests over
the engine.  Staging reuses the ingest layer's
:class:`~repro.ingest.queue.BackpressureQueue` block/shed machinery —
one bounded queue per tenant×QoS *lane* — and dispatch runs stride
scheduling over the lanes, so service under contention is proportional
to QoS weight and a lane with pending work is never starved (its pass
value stays put while every dispatched lane's advances, so it becomes
the minimum after finitely many picks).

Admission is where multi-tenancy bites:

* **per-tenant quota** — a tenant's staged requests (across its lanes)
  are capped; at the cap a higher-tier arrival displaces the tenant's
  own strictly-lower-tier work, otherwise the arrival stalls (block
  tiers) or sheds.
* **global cap** — when the appliance-wide staging cap is hit, admission
  becomes QoS-aware: an arriving request of a *higher* tier evicts the
  youngest staged request of the lowest backlogged tier (batch loses its
  slot to interactive, never the reverse).

Every outcome is attributed: per-tenant counters
(``serving.tenant.<t>.admitted/stalled/shed``), per-tier latency
histograms, and the roll-up :meth:`RequestScheduler.stats` that
``Impliance.stats()["serving"]`` exposes — no shed or stall is silently
dropped.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.ingest.queue import ADMITTED, SHED, STALLED, BackpressureQueue
from repro.serving.config import QOS_TIERS, ServingConfig, tier_priority

#: Stride numerator: pass advances by STRIDE_SCALE / weight per dispatch.
STRIDE_SCALE = 10_000.0


@dataclass
class Request:
    """One unit of admitted work: a tenant-attributed, QoS-tagged thunk."""

    tenant: str
    qos: str
    kind: str                                    # search | sql | faceted | ...
    fn: Optional[Callable[[], Any]] = None       # the engine work to run
    cost_ms: float = 1.0                         # virtual service demand
    arrival_ms: float = 0.0                      # virtual arrival time
    session_id: Optional[int] = None             # driver bookkeeping
    seq: int = 0                                 # admission order tiebreak
    outcome: str = ""                            # admitted/stalled/shed
    start_ms: float = 0.0
    finish_ms: float = 0.0
    result: Any = None

    @property
    def latency_ms(self) -> float:
        return self.finish_ms - self.arrival_ms


@dataclass
class _Lane:
    """One tenant×QoS scheduling entity."""

    tenant: str
    qos: str
    weight: int
    queue: BackpressureQueue
    pass_value: float = 0.0
    dispatched: int = 0

    @property
    def stride(self) -> float:
        return STRIDE_SCALE / self.weight


@dataclass
class _TenantCounters:
    admitted: int = 0
    stalled: int = 0
    shed: int = 0
    completed: int = 0
    failed: int = 0
    latency_sum_ms: float = 0.0
    by_qos: Dict[str, int] = field(default_factory=dict)


class RequestScheduler:
    """Per-tenant fair-share admission control over the engine."""

    def __init__(self, config: ServingConfig, telemetry=None) -> None:
        self.config = config
        self.telemetry = telemetry
        self._lanes: Dict[Tuple[str, str], _Lane] = {}
        self._tenants: Dict[str, _TenantCounters] = {}
        self._seq = 0
        self._global_pass = 0.0  # new lanes start here: no catch-up monopoly
        self.submitted = 0
        self.evicted = 0
        #: Hook fired with each request shed by QoS-aware eviction — the
        #: workload driver uses it to resume the victim's closed loop.
        self.on_evict: Optional[Callable[[Request], None]] = None

    # ------------------------------------------------------------------
    # lanes and accounting
    # ------------------------------------------------------------------
    def _counters(self, tenant: str) -> _TenantCounters:
        counters = self._tenants.get(tenant)
        if counters is None:
            counters = _TenantCounters()
            self._tenants[tenant] = counters
        return counters

    def lane(self, tenant: str, qos: str) -> _Lane:
        key = (tenant, qos)
        existing = self._lanes.get(key)
        if existing is not None:
            return existing
        counters = self._counters(tenant)

        def on_outcome(outcome: str, _c=counters, _q=qos, _t=tenant) -> None:
            # The bugfix this layer exists for: every queue outcome lands
            # in per-tenant counters surfaced by Impliance.stats()
            # (stall/shed telemetry counters come from the queue itself
            # via its serving.tenant.<t> metric prefix).
            if outcome == ADMITTED:
                _c.admitted += 1
                _c.by_qos[_q] = _c.by_qos.get(_q, 0) + 1
                if self.telemetry is not None:
                    self.telemetry.inc(f"serving.tenant.{_t}.admitted")
            elif outcome == STALLED:
                _c.stalled += 1
            elif outcome == SHED:
                _c.shed += 1

        lane = _Lane(
            tenant=tenant,
            qos=qos,
            weight=self.config.weight_for(qos),
            queue=BackpressureQueue(
                telemetry=self.telemetry,
                capacity=self.config.quota_for(tenant),
                shed_on_full=not self.config.blocks(qos),
                metric_prefix=f"serving.tenant.{tenant}",
                on_outcome=on_outcome,
            ),
            pass_value=self._global_pass,
        )
        self._lanes[key] = lane
        return lane

    def tenant_depth(self, tenant: str) -> int:
        return sum(
            lane.queue.depth
            for (t, _), lane in self._lanes.items()
            if t == tenant
        )

    @property
    def total_queued(self) -> int:
        return sum(lane.queue.depth for lane in self._lanes.values())

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> str:
        """Admit *request* into its tenant lane; returns the outcome.

        Enforces, in order: the per-tenant quota (the lane queue's own
        capacity covers it, since lanes share the tenant's cap), then the
        global cap with QoS-aware eviction, then lane admission.
        """
        self.submitted += 1
        self._seq += 1
        request.seq = self._seq
        lane = self.lane(request.tenant, request.qos)
        can_shed = not self.config.blocks(request.qos)

        # Per-tenant quota spans the tenant's lanes, not just this one.
        # The quota is QoS-aware like the global cap: a higher-tier
        # arrival displaces the same tenant's strictly-lower-tier work
        # rather than queueing behind it.
        if self.tenant_depth(request.tenant) >= self.config.quota_for(request.tenant):
            victim = self._evict_lower_priority(
                than=request.qos, tenant=request.tenant
            )
            if victim is None:
                return self._reject(lane, request, can_shed)

        if self.total_queued >= self.config.global_queue_cap:
            victim = self._evict_lower_priority(than=request.qos)
            if victim is None:
                # Nothing lower-priority to displace: the arrival itself
                # stalls or sheds by its tier's policy.
                return self._reject(lane, request, can_shed)

        outcome = lane.queue.admit(request, can_shed=can_shed)
        request.outcome = outcome
        return outcome

    def _reject(self, lane: _Lane, request: Request, can_shed: bool) -> str:
        """Route a rejection through the lane queue's bookkeeping by
        offering against a full queue — counters, telemetry, and the
        on_outcome hook all fire exactly as for any other rejection."""
        full_queue = lane.queue
        saved, full_queue.capacity = full_queue.capacity, 0
        try:
            outcome = full_queue.admit(request, can_shed=can_shed)
        finally:
            full_queue.capacity = saved
        request.outcome = outcome
        return outcome

    def _evict_lower_priority(
        self, than: str, tenant: Optional[str] = None
    ) -> Optional[Request]:
        """Shed the youngest staged request of the lowest backlogged tier
        strictly below *than* — across every tenant by default, or within
        *tenant*'s lanes only (the quota-bound case); None when no such
        tier has backlog."""
        arriving = tier_priority(than)
        for qos in reversed(QOS_TIERS):  # lowest priority first
            if tier_priority(qos) <= arriving:
                break
            candidates = [
                lane
                for (t, lane_qos), lane in self._lanes.items()
                if lane_qos == qos
                and lane.queue.depth
                and (tenant is None or t == tenant)
            ]
            if not candidates:
                continue
            # Shed from the most backlogged tenant of that tier.
            lane = max(candidates, key=lambda l: (l.queue.depth, l.tenant))
            victim = lane.queue.evict_newest()
            if victim is not None:
                victim.outcome = SHED
                self.evicted += 1
                if self.on_evict is not None:
                    self.on_evict(victim)
                return victim
        return None

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def next_request(self) -> Optional[Request]:
        """Pop the next request by weighted fair share (stride pick)."""
        backlogged = [lane for lane in self._lanes.values() if lane.queue.depth]
        if not backlogged:
            return None
        lane = min(backlogged, key=lambda l: (l.pass_value, l.tenant, l.qos))
        lane.pass_value += lane.stride
        self._global_pass = max(self._global_pass, lane.pass_value - lane.stride)
        lane.dispatched += 1
        return lane.queue.take_batch(1)[0]

    # ------------------------------------------------------------------
    # completion + inline execution
    # ------------------------------------------------------------------
    def on_complete(self, request: Request, latency_ms: float, ok: bool = True) -> None:
        counters = self._counters(request.tenant)
        if ok:
            counters.completed += 1
            counters.latency_sum_ms += latency_ms
        else:
            counters.failed += 1
        if self.telemetry is not None:
            self.telemetry.inc(f"serving.tenant.{request.tenant}.completed")
            self.telemetry.observe(f"serving.{request.qos}.latency_ms", latency_ms)
            self.telemetry.observe("serving.latency_ms", latency_ms)

    def execute_inline(self, request: Request) -> Any:
        """The synchronous Session path: admit, run, account.

        With an idle scheduler the request is admitted and runs at once;
        when driver traffic has the queues saturated, a block-tier
        arrival waits its stall out (counted) and still runs, while a
        shed-tier arrival raises :class:`RequestShed`.
        """
        outcome = self.submit(request)
        if outcome == SHED:
            raise RequestShed(
                f"tenant {request.tenant!r} {request.qos} request shed "
                f"(quota or global cap exceeded)"
            )
        if outcome == ADMITTED:
            # Inline mode services the request immediately; withdraw it
            # from the lane (it is the newest staged item — admission and
            # execution are one synchronous step) so driver dispatch
            # never double-runs it.
            lane = self.lane(request.tenant, request.qos)
            withdrawn = lane.queue.withdraw_newest()
            assert withdrawn is request
        start = time.perf_counter()
        try:
            request.result = request.fn() if request.fn is not None else None
        except Exception:
            self.on_complete(request, (time.perf_counter() - start) * 1000.0, ok=False)
            raise
        self.on_complete(request, (time.perf_counter() - start) * 1000.0)
        return request.result

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """The ``Impliance.stats()["serving"]`` payload: global and
        per-tenant admission outcomes, completions, and queue depths."""
        tenants: Dict[str, Any] = {}
        totals = {"admitted": 0, "stalled": 0, "shed": 0, "completed": 0, "failed": 0}
        for tenant, c in sorted(self._tenants.items()):
            completed = c.completed
            tenants[tenant] = {
                "admitted": c.admitted,
                "stalled": c.stalled,
                "shed": c.shed,
                "completed": completed,
                "failed": c.failed,
                "queued": self.tenant_depth(tenant),
                "by_qos": dict(sorted(c.by_qos.items())),
                "mean_latency_ms": (
                    c.latency_sum_ms / completed if completed else 0.0
                ),
            }
            totals["admitted"] += c.admitted
            totals["stalled"] += c.stalled
            totals["shed"] += c.shed
            totals["completed"] += completed
            totals["failed"] += c.failed
        lanes = {
            f"{tenant}/{qos}": {
                "depth": lane.queue.depth,
                "dispatched": lane.dispatched,
                "weight": lane.weight,
            }
            for (tenant, qos), lane in sorted(self._lanes.items())
        }
        return {
            "submitted": self.submitted,
            "evicted": self.evicted,
            "queued": self.total_queued,
            **totals,
            "tenants": tenants,
            "lanes": lanes,
        }


class RequestShed(RuntimeError):
    """Raised when an inline (synchronous) request is refused admission
    under a shed-tier policy — the multi-tenant analogue of the ingest
    stream's shed accounting, surfaced instead of silently dropped."""
