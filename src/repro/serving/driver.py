"""The multi-tenant workload driver: thousands of sessions, virtual time.

This is how the "shared appliance serving many simultaneous users" claim
gets a number.  The driver opens one :class:`~repro.serving.session.Session`
per simulated client, replays **closed-loop** (think-time) and
**open-loop** (Poisson arrival) request streams over the
:mod:`repro.workloads` corpora, and runs the whole thing on a
deterministic virtual clock: arrivals and completions are heap events,
the scheduler's fair-share pick decides who runs when a server slot
frees, and a request's latency is ``completion − arrival`` in virtual
milliseconds.  Requests genuinely execute against the engine when
dispatched (shed requests never run — goodput is real goodput); service
*demand* comes from the deterministic per-kind cost model so p50/p99/p999
are reproducible run-to-run under a fixed seed.
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.ingest.queue import ADMITTED, SHED, STALLED
from repro.security.policy import Principal
from repro.serving.config import QOS_INTERACTIVE, QOS_TIERS
from repro.serving.scheduler import Request
from repro.serving.session import DEFAULT_COSTS, Session
from repro.workloads import corpus_queries, make_corpus


def percentile(values: Sequence[float], q: float) -> float:
    """The q-quantile (0 < q <= 1) by nearest-rank; 0.0 for no samples."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, min(len(ordered), math.ceil(q * len(ordered))))
    return ordered[rank - 1]


@dataclass(frozen=True)
class ArrivalSpec:
    """How a tenant's requests arrive.

    ``closed``: each session issues its next request *think_ms* after the
    previous one completes (or is shed) — load self-regulates with
    latency.  ``open``: the tenant submits at *rate_rps* regardless of
    completions (exponential interarrivals) — the overload-test shape,
    since arrivals do not slow down when the appliance does.
    """

    process: str = "closed"
    think_ms: float = 10.0
    rate_rps: float = 100.0

    def __post_init__(self) -> None:
        if self.process not in ("closed", "open"):
            raise ValueError("arrival process must be 'closed' or 'open'")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's shape in a driver run."""

    name: str
    corpus: str = "callcenter"
    qos: str = QOS_INTERACTIVE
    sessions: int = 1
    requests_per_session: int = 4        # closed-loop budget per session
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    #: Relative frequency of request kinds (search/sql/faceted/...).
    mix: Mapping[str, float] = field(
        default_factory=lambda: {"search": 0.6, "sql": 0.3, "faceted": 0.1}
    )
    roles: Tuple[str, ...] = ("user",)

    def __post_init__(self) -> None:
        if self.qos not in QOS_TIERS:
            raise ValueError(f"unknown qos {self.qos!r}")
        if self.sessions < 1:
            raise ValueError("sessions must be >= 1")


@dataclass
class _TenantOutcome:
    qos: str = QOS_INTERACTIVE
    offered: int = 0
    completed: int = 0
    shed: int = 0
    stall_events: int = 0
    errors: int = 0
    latencies_ms: List[float] = field(default_factory=list)


@dataclass
class ServingReport:
    """What one driver run measured (all times virtual ms)."""

    duration_ms: float = 0.0
    sessions: int = 0
    offered: int = 0
    completed: int = 0
    shed: int = 0
    stall_events: int = 0
    errors: int = 0
    tenants: Dict[str, _TenantOutcome] = field(default_factory=dict)

    @property
    def goodput_rps(self) -> float:
        return self.completed / (self.duration_ms / 1000.0) if self.duration_ms else 0.0

    def tenant_goodput_rps(self, tenant: str) -> float:
        if not self.duration_ms:
            return 0.0
        return self.tenants[tenant].completed / (self.duration_ms / 1000.0)

    def latency(self, tenant: str) -> Dict[str, float]:
        samples = self.tenants[tenant].latencies_ms
        return {
            "p50": percentile(samples, 0.50),
            "p99": percentile(samples, 0.99),
            "p999": percentile(samples, 0.999),
            "mean": sum(samples) / len(samples) if samples else 0.0,
            "max": max(samples) if samples else 0.0,
            "n": len(samples),
        }

    def tier_latency(self, qos: str) -> Dict[str, float]:
        samples: List[float] = []
        for outcome in self.tenants.values():
            if outcome.qos == qos:
                samples.extend(outcome.latencies_ms)
        return {
            "p50": percentile(samples, 0.50),
            "p99": percentile(samples, 0.99),
            "p999": percentile(samples, 0.999),
            "n": len(samples),
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "duration_ms": self.duration_ms,
            "sessions": self.sessions,
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "stall_events": self.stall_events,
            "errors": self.errors,
            "goodput_rps": self.goodput_rps,
            "tenants": {
                name: {
                    "qos": t.qos,
                    "offered": t.offered,
                    "completed": t.completed,
                    "shed": t.shed,
                    "stall_events": t.stall_events,
                    "goodput_rps": self.tenant_goodput_rps(name),
                    "latency_ms": self.latency(name),
                }
                for name, t in sorted(self.tenants.items())
            },
        }


@dataclass
class _SimSession:
    session: Session
    spec: TenantSpec
    issued: int = 0


class WorkloadDriver:
    """Replay multi-tenant arrival processes against one appliance."""

    def __init__(
        self,
        app,
        specs: Sequence[TenantSpec],
        *,
        seed: int = 0,
        execute: bool = True,
        preload: bool = True,
        corpus_scale: float = 1.0,
    ) -> None:
        if not specs:
            raise ValueError("need at least one TenantSpec")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError("tenant names must be unique")
        self.app = app
        self.specs = list(specs)
        self.seed = seed
        self.execute = execute
        self.corpus_scale = corpus_scale
        self._queries: Dict[str, Dict[str, List[Any]]] = {}
        if preload:
            self._preload()

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def _preload(self) -> None:
        """Ingest each distinct corpus once and keep its query templates."""
        for corpus in {spec.corpus for spec in self.specs}:
            workload = make_corpus(corpus, seed=self.seed, scale=self.corpus_scale)
            self.app.ingest_many(list(workload.documents()))
            self._queries[corpus] = corpus_queries(corpus)

    def _sessions_for(self, spec: TenantSpec) -> List[_SimSession]:
        principal = Principal(spec.name, spec.roles)
        return [
            _SimSession(
                session=self.app.connect(
                    principal=principal, qos=spec.qos, tenant=spec.name
                ),
                spec=spec,
            )
            for _ in range(spec.sessions)
        ]

    # ------------------------------------------------------------------
    # request construction
    # ------------------------------------------------------------------
    def _build_request(
        self, sim: _SimSession, rng: random.Random, now_ms: float
    ) -> Request:
        spec = sim.spec
        kinds = list(spec.mix.keys())
        weights = [spec.mix[k] for k in kinds]
        kind = rng.choices(kinds, weights=weights, k=1)[0]
        queries = self._queries.get(spec.corpus) or corpus_queries(spec.corpus)
        session = sim.session
        fn: Optional[Callable[[], Any]] = None
        if kind == "search":
            term = rng.choice(queries["searches"])
            fn = (lambda s=session, t=term: s._search_impl(t, 10)) if self.execute else None
        elif kind == "sql":
            stmt = rng.choice(queries["sqls"])
            fn = (
                lambda s=session, q=stmt: s._sql_impl(q, "simple", None)
            ) if self.execute else None
        elif kind == "faceted":
            term = rng.choice(queries["searches"])
            fn = (
                lambda s=session, t=term: s._faceted_impl(t).facet_counts("format")
            ) if self.execute else None
        elif kind == "graph":
            fn = (lambda s=session: s._graph_impl()) if self.execute else None
        else:
            raise ValueError(f"unknown request kind {kind!r} in mix")
        cost = DEFAULT_COSTS.get(kind, 1.0) * rng.uniform(0.8, 1.2)
        request = session.request(kind, fn, cost_ms=cost)
        request.arrival_ms = now_ms
        return request

    # ------------------------------------------------------------------
    # the virtual-time event loop
    # ------------------------------------------------------------------
    def run(self, duration_ms: float = 2_000.0) -> ServingReport:
        """Drive every tenant for *duration_ms* of virtual time (plus
        queue drain) and return the measured report."""
        app = self.app
        scheduler = app.serving
        rng = random.Random(self.seed)
        report = ServingReport(duration_ms=duration_ms)

        sims: List[_SimSession] = []
        by_tenant: Dict[str, List[_SimSession]] = {}
        sim_by_id: Dict[int, _SimSession] = {}
        for spec in self.specs:
            tenant_sims = self._sessions_for(spec)
            sims.extend(tenant_sims)
            by_tenant[spec.name] = tenant_sims
            for sim in tenant_sims:
                sim_by_id[sim.session.session_id] = sim
            report.tenants[spec.name] = _TenantOutcome(qos=spec.qos)
        report.sessions = len(sims)

        heap: List[Tuple[float, int, str, Any]] = []
        counter = 0
        clock = [0.0]

        def push(t: float, kind: str, payload: Any) -> None:
            nonlocal counter
            counter += 1
            heapq.heappush(heap, (t, counter, kind, payload))

        def handle_evict(victim: Request) -> None:
            # A queued request lost its slot to higher-priority traffic:
            # count the shed and let its closed-loop session move on.
            outcome = report.tenants.get(victim.tenant)
            if outcome is not None:
                outcome.shed += 1
            if victim.session_id is not None:
                self._next_closed(
                    sim_by_id.get(victim.session_id), clock[0], report, push, rng
                )

        scheduler.on_evict = handle_evict

        # Seed the arrival processes.
        for spec in self.specs:
            if spec.arrival.process == "closed":
                for sim in by_tenant[spec.name]:
                    # Stagger first arrivals across one think interval so
                    # a thousand sessions don't fire at t=0 in lockstep.
                    push(rng.uniform(0.0, spec.arrival.think_ms), "issue", sim)
            else:
                push(rng.expovariate(spec.arrival.rate_rps) * 1000.0, "open", spec)

        busy = 0

        def try_dispatch(now: float) -> None:
            nonlocal busy
            while busy < scheduler.config.max_concurrency:
                request = scheduler.next_request()
                if request is None:
                    return
                request.start_ms = now
                busy += 1
                push(now + request.cost_ms, "complete", request)

        def submit(request: Request, sim: _SimSession, now: float) -> None:
            outcome = scheduler.submit(request)
            tenant = report.tenants[request.tenant]
            if outcome == ADMITTED:
                try_dispatch(now)
            elif outcome == SHED:
                tenant.shed += 1
                self._next_closed(sim, now, report, push, rng)
            elif outcome == STALLED:
                tenant.stall_events += 1
                push(now + scheduler.config.retry_backoff_ms, "reoffer", (request, sim))

        last_time = 0.0
        while heap:
            now, _, kind, payload = heapq.heappop(heap)
            last_time = max(last_time, now)
            clock[0] = now
            if kind == "issue":
                sim = payload
                if now > duration_ms:
                    continue  # past the measurement window: stop issuing
                sim.issued += 1
                request = self._build_request(sim, rng, now)
                report.offered += 1
                report.tenants[request.tenant].offered += 1
                submit(request, sim, now)
            elif kind == "open":
                spec = payload
                if now > duration_ms:
                    continue
                sim = rng.choice(by_tenant[spec.name])
                sim.issued += 1
                request = self._build_request(sim, rng, now)
                report.offered += 1
                report.tenants[request.tenant].offered += 1
                submit(request, sim, now)
                push(
                    now + rng.expovariate(spec.arrival.rate_rps) * 1000.0,
                    "open",
                    spec,
                )
            elif kind == "reoffer":
                request, sim = payload
                submit(request, sim, now)
            elif kind == "complete":
                request = payload
                busy -= 1
                request.finish_ms = now
                tenant = report.tenants[request.tenant]
                ok = True
                if self.execute and request.fn is not None:
                    try:
                        request.result = request.fn()
                    except Exception:
                        ok = False
                        tenant.errors += 1
                        report.errors += 1
                scheduler.on_complete(request, request.latency_ms, ok=ok)
                if ok:
                    tenant.completed += 1
                    tenant.latencies_ms.append(request.latency_ms)
                    report.completed += 1
                sim = (
                    sim_by_id.get(request.session_id)
                    if request.session_id is not None
                    else None
                )
                self._next_closed(sim, now, report, push, rng)
                try_dispatch(now)

        scheduler.on_evict = None
        report.shed = sum(t.shed for t in report.tenants.values())
        report.stall_events = sum(t.stall_events for t in report.tenants.values())
        report.duration_ms = max(duration_ms, last_time)
        for sim in sims:
            sim.session.close()
        return report

    # ------------------------------------------------------------------
    def _next_closed(
        self,
        sim: Optional[_SimSession],
        now: float,
        report: ServingReport,
        push,
        rng: random.Random,
    ) -> None:
        """Closed-loop sessions issue their next request one think time
        after the previous one resolved (completed or shed)."""
        if sim is None or sim.spec.arrival.process != "closed":
            return
        if sim.issued >= sim.spec.requests_per_session:
            return
        push(now + rng.uniform(0.5, 1.5) * sim.spec.arrival.think_ms, "issue", sim)
