"""Cache-hierarchy configuration (the ``ApplianceConfig(cache=...)`` knob).

Like everything in :mod:`repro.core.config`, the defaults are the
product: caching is on out of the box, sized for the simulated appliance,
and requires no administration.  ``enabled=False`` is the one hard off
switch — every tier becomes a guaranteed no-op and the engine behaves
exactly as if no hierarchy were wired.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import validate_positive


@dataclass(frozen=True)
class CacheConfig:
    """Per-tier size caps and the master switch."""

    #: Master switch: when False the hierarchy never caches, never
    #: subscribes work to lookups, and serves every query uncached.
    enabled: bool = True
    #: Parsed/planned statements retained (LRU).
    plan_entries: int = 256
    #: Query results retained (LRU, also bounded by ``result_bytes``).
    result_entries: int = 128
    #: Total estimated bytes of cached result rows.
    result_bytes: int = 8_000_000
    #: Memoized index probes retained (LRU).
    probe_entries: int = 4096

    def __post_init__(self) -> None:
        validate_positive(
            "CacheConfig",
            plan_entries=self.plan_entries,
            result_entries=self.result_entries,
            result_bytes=self.result_bytes,
            probe_entries=self.probe_entries,
        )
