"""Appliance-wide cache hierarchy with dependency invalidation (§3.3/§3.4).

Section 3.4 names "materialized views, indexes, and replicas" as derived
state the appliance may create and drop cheaply because it is exactly
re-creatable; Section 3.3 argues the appliance can self-manage that state
because it owns the whole stack.  This package is that ownership made
concrete for query-side derived state:

* :class:`PlanCache` — parse/plan results keyed by normalized SQL;
* :class:`ResultCache` — query results keyed by plan fingerprint, each
  entry carrying the ``base_views()`` dependency set of its query;
* :class:`IndexProbeMemo` — memoized hot index probes for indexed-NL
  joins;
* :class:`InvalidationBus` — the one event spine all tiers (and the
  materialization manager) subscribe to: document-store puts invalidate
  by dependency, chaos/topology events flush wholesale so degraded
  state is never served as fresh.

:class:`CacheHierarchy` bundles the tiers behind one handle the facade
owns; :class:`CacheConfig` is the ``ApplianceConfig(cache=...)`` knob.
"""

from repro.cache.bus import ChangeSet, DocumentChange, InvalidationBus
from repro.cache.config import CacheConfig
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.plancache import PlanCache, normalize_sql
from repro.cache.probememo import IndexProbeMemo
from repro.cache.resultcache import CachedResult, ResultCache

__all__ = [
    "CacheConfig",
    "CacheHierarchy",
    "CachedResult",
    "ChangeSet",
    "DocumentChange",
    "IndexProbeMemo",
    "InvalidationBus",
    "PlanCache",
    "ResultCache",
    "normalize_sql",
]
