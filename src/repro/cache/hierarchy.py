"""The cache hierarchy: every tier behind one appliance-owned handle.

The facade constructs one :class:`CacheHierarchy` per appliance, attaches
every data node's store to its :class:`~repro.cache.bus.InvalidationBus`,
and hands the hierarchy to the query engine.  Wiring rules:

* puts invalidate by dependency — result entries whose ``base_views()``
  set contains the written table are dropped, the probe memo flushes,
  physical-plan entries age out via the bus epoch;
* node events (chaos crash/corrupt/partition, topology changes, catalog
  redefinitions) flush the result cache and probe memo wholesale;
* results computed while the appliance reports missing segments are
  never admitted (``admit_results`` callback) — a degraded answer must
  not outlive the degradation.

``CacheConfig(enabled=False)`` turns the hierarchy into a guaranteed
no-op: the engine checks :attr:`enabled` before every tier access.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.cache.bus import InvalidationBus
from repro.cache.config import CacheConfig
from repro.cache.plancache import PlanCache
from repro.cache.probememo import IndexProbeMemo
from repro.cache.resultcache import ResultCache


class CacheHierarchy:
    """Plan cache + result cache + probe memo on one invalidation bus."""

    def __init__(
        self,
        config: Optional[CacheConfig] = None,
        telemetry=None,
        bus: Optional[InvalidationBus] = None,
    ) -> None:
        self.config = config if config is not None else CacheConfig()
        # None-guarded (not the DISABLED singleton): cache lookups sit on
        # the hottest query path, mirroring the per-node IndexManager rule.
        self.telemetry = telemetry if (telemetry is not None and telemetry.enabled) else None
        self.bus = bus if bus is not None else InvalidationBus()
        self.plans = PlanCache(self.config.plan_entries, telemetry=self.telemetry)
        self.results = ResultCache(
            self.config.result_entries,
            self.config.result_bytes,
            telemetry=self.telemetry,
        )
        self.probes = IndexProbeMemo(self.config.probe_entries, telemetry=self.telemetry)
        #: Admission guard for results; the facade points this at
        #: ``missing_segments() == 0`` so degraded answers are never
        #: cached.  None admits everything (standalone engines).
        self.admit_results: Optional[Callable[[], bool]] = None
        self.bus.subscribe_deltas(self._on_changes)
        self.bus.subscribe_node_events(self._on_node_event)

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.config.enabled

    @property
    def epoch(self) -> int:
        return self.bus.epoch

    def attach_to_store(self, store) -> None:
        """Subscribe the bus to one document store's put stream."""
        self.bus.attach_store(store)

    def can_admit_results(self) -> bool:
        return self.admit_results is None or self.admit_results()

    # ------------------------------------------------------------------
    # bus reactions
    # ------------------------------------------------------------------
    def _on_changes(self, changeset) -> None:
        """One publication per group commit: invalidate by the *union* of
        the change set's table dependencies, flush the probe memo once.
        A change set of one is exactly the old per-put behavior; deletes
        (tombstones keep their chain's ``table`` metadata) invalidate the
        same way — a cached aggregate must not keep counting a deleted
        row."""
        if self.telemetry is not None:
            self.telemetry.inc("cache.invalidation.puts", len(changeset))
            self.telemetry.inc("cache.invalidation.put_batches")
            deletes = sum(1 for change in changeset if change.is_delete)
            if deletes:
                self.telemetry.inc("cache.invalidation.deletes", deletes)
        for table in changeset.tables:
            self.results.invalidate_table(table)
        self.probes.flush()

    def _on_node_event(self, node_id: str, kind: str) -> None:
        """Topology/chaos/catalog change: flush everything derived from
        data placement.  (Parsed statements survive — parsing is pure.)"""
        if self.telemetry is not None:
            self.telemetry.inc("cache.invalidation.node_events")
            self.telemetry.inc(f"cache.invalidation.node_event.{kind}")
        self.results.flush()
        self.probes.flush()

    def on_catalog_change(self) -> None:
        """A view was defined or replaced outside the put stream."""
        self.bus.publish_node_event("catalog", "catalog")

    # ------------------------------------------------------------------
    def flush_all(self) -> None:
        self.plans.flush()
        self.results.flush()
        self.probes.flush()

    def stats(self) -> Dict[str, Any]:
        """One snapshot of every tier's counters (facade ``stats()``)."""
        return {
            "enabled": self.enabled,
            "epoch": self.bus.epoch,
            "plan": {
                "parse_hits": self.plans.stats.parse_hits,
                "parse_misses": self.plans.stats.parse_misses,
                "plan_hits": self.plans.stats.plan_hits,
                "plan_misses": self.plans.stats.plan_misses,
                "compiled_hits": self.plans.stats.compiled_hits,
                "compiled_misses": self.plans.stats.compiled_misses,
                "entries": self.plans.entry_count,
            },
            "result": {
                "hits": self.results.stats.hits,
                "misses": self.results.stats.misses,
                "invalidations": self.results.stats.invalidations,
                "evictions": self.results.stats.evictions,
                "flushes": self.results.stats.flushes,
                "entries": self.results.entry_count,
                "bytes": self.results.stats.bytes,
            },
            "probe": {
                "hits": self.probes.stats.hits,
                "misses": self.probes.stats.misses,
                "flushes": self.probes.stats.flushes,
                "entries": self.probes.entry_count,
            },
            "bus": {
                "put_events": self.bus.stats.put_events,
                "put_documents": self.bus.stats.put_documents,
                "delete_documents": self.bus.stats.delete_documents,
                "node_events": self.bus.stats.node_events,
            },
        }
