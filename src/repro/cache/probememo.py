"""Memo in front of hot :class:`~repro.index.manager.IndexManager` probes.

Indexed-NL joins probe the value index once per outer row; with skewed
join keys the same ``(path, value)`` probe repeats thousands of times in
one query and across consecutive queries.  The memo caches the resolved
doc-id sets.

Invalidation is deliberately coarse: *any* put flushes the memo.  A new
document version can both add postings and remove the old version's
(its paths may differ), so per-path invalidation against the new version
alone would be unsound.  Probes are cheap to recompute and the memo
refills within one query, so wholesale flushing costs little — the win
is the read-mostly window between writes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, FrozenSet, Tuple

ProbeKey = Tuple[Tuple[str, ...], object]


class ProbeMemoStats:
    __slots__ = ("hits", "misses", "flushes")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.flushes = 0


class IndexProbeMemo:
    """LRU of (path, value) → frozenset of doc ids."""

    def __init__(self, capacity: int = 4096, telemetry=None) -> None:
        if capacity < 1:
            raise ValueError("probe memo needs at least one entry")
        self.capacity = capacity
        self.telemetry = telemetry
        self.stats = ProbeMemoStats()
        self._entries: "OrderedDict[ProbeKey, FrozenSet[str]]" = OrderedDict()

    # ------------------------------------------------------------------
    def lookup(
        self, path, value, probe: Callable[[], set]
    ) -> FrozenSet[str]:
        """Serve the memoized probe, filling from *probe* on miss.

        Unhashable values (a probe key that is itself a list) bypass the
        memo entirely.
        """
        try:
            key: ProbeKey = (tuple(path), value)
            cached = self._entries.get(key)
        except TypeError:
            self.stats.misses += 1
            return frozenset(probe())
        if cached is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            if self.telemetry is not None:
                self.telemetry.inc("cache.probe.hits")
            return cached
        resolved = frozenset(probe())
        self.stats.misses += 1
        if self.telemetry is not None:
            self.telemetry.inc("cache.probe.misses")
        self._entries[key] = resolved
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return resolved

    # ------------------------------------------------------------------
    def flush(self) -> int:
        dropped = len(self._entries)
        self._entries.clear()
        if dropped:
            self.stats.flushes += 1
            if self.telemetry is not None:
                self.telemetry.inc("cache.probe.flushes")
        return dropped

    @property
    def entry_count(self) -> int:
        return len(self._entries)
