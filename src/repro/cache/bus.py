"""The invalidation bus: one event spine for every cache tier.

Before this existed, each cache wired its own private hook into
``DocumentStore.put_listeners`` (the :class:`MaterializationManager`
fan-out being the only instance).  The bus centralizes that: stores are
attached once, chaos/topology events are published once, and every
subscriber — result cache, probe memo, plan epoch, materializations —
sees the same ordered stream.

Two event families flow through:

* **put events** — a document persisted anywhere in the appliance.
  Subscribers receive the document and invalidate by dependency (its
  ``table`` metadata, its paths).
* **node events** — chaos faults and topology changes (crash, recover,
  corrupt, partition, heal).  These change *which* data is visible, not
  just its content, so subscribers are expected to flush wholesale:
  a result derived from a now-unreachable node's segments must never be
  served as fresh.

Every event bumps ``epoch``; caches that cannot invalidate precisely
(the physical-plan tier, whose validity depends on index/view state)
stamp entries with the epoch at fill time and treat any mismatch as a
miss.
"""

from __future__ import annotations

from typing import Callable, List

from repro.model.document import Document

PutListener = Callable[[Document], None]
NodeListener = Callable[[str, str], None]  # (node_id, event kind)


class BusStats:
    __slots__ = ("put_events", "node_events")

    def __init__(self) -> None:
        self.put_events = 0
        self.node_events = 0


class InvalidationBus:
    """Fan-out of put and node events to every subscribed cache."""

    def __init__(self) -> None:
        #: Monotone event counter; bumped by every put and node event.
        self.epoch = 0
        self.stats = BusStats()
        self._put_subscribers: List[PutListener] = []
        self._node_subscribers: List[NodeListener] = []

    # ------------------------------------------------------------------
    # subscriptions
    # ------------------------------------------------------------------
    def subscribe_puts(self, listener: PutListener) -> None:
        self._put_subscribers.append(listener)

    def subscribe_node_events(self, listener: NodeListener) -> None:
        self._node_subscribers.append(listener)

    # ------------------------------------------------------------------
    # sources
    # ------------------------------------------------------------------
    def attach_store(self, store) -> None:
        """Subscribe this bus to a document store's put stream."""
        store.put_listeners.append(self._on_store_put)

    def _on_store_put(self, document: Document, address=None) -> None:
        self.publish_put(document)

    # ------------------------------------------------------------------
    # publication
    # ------------------------------------------------------------------
    def publish_put(self, document: Document) -> None:
        self.epoch += 1
        self.stats.put_events += 1
        for listener in self._put_subscribers:
            listener(document)

    def publish_node_event(self, node_id: str, kind: str) -> None:
        """A chaos/topology event: crash, recover, corrupt, partition,
        heal, or catalog (view-definition) change."""
        self.epoch += 1
        self.stats.node_events += 1
        for listener in self._node_subscribers:
            listener(node_id, kind)
