"""The invalidation bus: one event spine for every cache tier.

Before this existed, each cache wired its own private hook into
``DocumentStore.put_listeners`` (the :class:`MaterializationManager`
fan-out being the only instance).  The bus centralizes that: stores are
attached once, chaos/topology events are published once, and every
subscriber — result cache, probe memo, plan epoch, materializations —
sees the same ordered stream.

Two event families flow through:

* **put events** — documents persisted anywhere in the appliance.  The
  unit of publication is the *batch*: a group commit arrives as one
  event (a plain put is a batch of one), bumps the epoch once, and
  batch subscribers invalidate by the union of its dependencies.
  Per-document subscribers still receive every document individually.
* **node events** — chaos faults and topology changes (crash, recover,
  corrupt, partition, heal).  These change *which* data is visible, not
  just its content, so subscribers are expected to flush wholesale:
  a result derived from a now-unreachable node's segments must never be
  served as fresh.

Every event bumps ``epoch``; caches that cannot invalidate precisely
(the physical-plan tier, whose validity depends on index/view state)
stamp entries with the epoch at fill time and treat any mismatch as a
miss.

When the staged ingest pipeline commits one logical batch across several
data nodes, each node's store fires its own batch event; the pipeline
wraps the storage stage in :meth:`InvalidationBus.coalescing` so those
per-node events merge into a single publication — one epoch bump per
ingest batch, however many nodes it sharded across.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, List, Optional, Sequence

from repro.model.document import Document

PutListener = Callable[[Document], None]
BatchPutListener = Callable[[Sequence[Document]], None]
NodeListener = Callable[[str, str], None]  # (node_id, event kind)


class BusStats:
    __slots__ = ("put_events", "put_documents", "node_events")

    def __init__(self) -> None:
        #: Publications (epoch bumps caused by puts) — one per batch.
        self.put_events = 0
        #: Documents carried by those publications.
        self.put_documents = 0
        self.node_events = 0


class InvalidationBus:
    """Fan-out of put and node events to every subscribed cache."""

    def __init__(self) -> None:
        #: Monotone event counter; bumped by every put batch and node event.
        self.epoch = 0
        self.stats = BusStats()
        self._put_subscribers: List[PutListener] = []
        self._batch_subscribers: List[BatchPutListener] = []
        self._node_subscribers: List[NodeListener] = []
        self._held: Optional[List[Document]] = None

    # ------------------------------------------------------------------
    # subscriptions
    # ------------------------------------------------------------------
    def subscribe_puts(self, listener: PutListener) -> None:
        """Per-document subscription (one call per document in a batch)."""
        self._put_subscribers.append(listener)

    def subscribe_put_batches(self, listener: BatchPutListener) -> None:
        """Batch subscription: one call per publication with every
        document it carries — the shape coalescing caches want."""
        self._batch_subscribers.append(listener)

    def subscribe_node_events(self, listener: NodeListener) -> None:
        self._node_subscribers.append(listener)

    # ------------------------------------------------------------------
    # sources
    # ------------------------------------------------------------------
    def attach_store(self, store) -> None:
        """Subscribe this bus to a document store's put stream.  Group
        commits arrive batch-at-a-time, so one ``put_many`` is one event."""
        store.batch_put_listeners.append(self._on_store_put_batch)

    def _on_store_put_batch(self, pairs) -> None:
        self.publish_put_batch([document for document, _ in pairs])

    # ------------------------------------------------------------------
    # publication
    # ------------------------------------------------------------------
    def publish_put(self, document: Document) -> None:
        self.publish_put_batch((document,))

    def publish_put_batch(self, documents: Sequence[Document]) -> None:
        """Publish one batch of persisted documents as a single event."""
        if not documents:
            return
        if self._held is not None:
            # Inside a coalescing window: merge into the one pending event.
            self._held.extend(documents)
            return
        self.epoch += 1
        self.stats.put_events += 1
        self.stats.put_documents += len(documents)
        for batch_listener in self._batch_subscribers:
            batch_listener(documents)
        for listener in self._put_subscribers:
            for document in documents:
                listener(document)

    @contextmanager
    def coalescing(self):
        """Merge every put published inside the window into one event.

        The ingest pipeline uses this around a multi-node storage stage:
        N per-node group commits become one publication — one epoch bump,
        one union invalidation — emitted when the window closes.
        Windows nest; only the outermost emits.
        """
        if self._held is not None:
            yield  # already inside a window — the outer one will emit
            return
        self._held = []
        try:
            yield
        finally:
            held, self._held = self._held, None
            if held:
                self.publish_put_batch(held)

    def publish_node_event(self, node_id: str, kind: str) -> None:
        """A chaos/topology event: crash, recover, corrupt, partition,
        heal, or catalog (view-definition) change."""
        self.epoch += 1
        self.stats.node_events += 1
        for listener in self._node_subscribers:
            listener(node_id, kind)
