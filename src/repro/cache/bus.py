"""The invalidation bus: one event spine for every cache tier.

Before this existed, each cache wired its own private hook into
``DocumentStore.put_listeners`` (the :class:`MaterializationManager`
fan-out being the only instance).  The bus centralizes that: stores are
attached once, chaos/topology events are published once, and every
subscriber — result cache, probe memo, plan epoch, materializations,
continuous-query subscriptions — sees the same ordered stream.

Two event families flow through:

* **change sets** — documents persisted anywhere in the appliance.  The
  unit of publication is the *batch*: a group commit arrives as one
  :class:`ChangeSet` (a plain put is a change set of one), bumps the
  epoch once, and carries a :class:`DocumentChange` per document — the
  doc id, the stored document (whose fused
  :class:`~repro.model.projection.DocumentProjection` the ingest
  pipeline already computed once), the dependency table, and whether the
  change is an upsert or a tombstone delete.  Delta subscribers apply
  these incrementally; the legacy batch/per-document subscriptions
  still see the same documents for epoch-style invalidation.
* **node events** — chaos faults and topology changes (crash, recover,
  corrupt, partition, heal).  These change *which* data is visible, not
  just its content, so subscribers are expected to flush wholesale:
  a result derived from a now-unreachable node's segments must never be
  served as fresh, and an incrementally maintained view must fall back
  to a full refresh.

Every event bumps ``epoch``; caches that cannot invalidate precisely
(the physical-plan tier, whose validity depends on index/view state)
stamp entries with the epoch at fill time and treat any mismatch as a
miss.

When the staged ingest pipeline commits one logical batch across several
data nodes, each node's store fires its own batch event; the pipeline
wraps the storage stage in :meth:`InvalidationBus.coalescing` so those
per-node events merge into a single publication — one epoch bump, one
change set per ingest batch, however many nodes it sharded across.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.model.document import Document

PutListener = Callable[[Document], None]
BatchPutListener = Callable[[Sequence[Document]], None]
NodeListener = Callable[[str, str], None]  # (node_id, event kind)


@dataclass(frozen=True)
class DocumentChange:
    """One document's contribution to a change set.

    ``op`` is ``"upsert"`` (a new document or a new version of one) or
    ``"delete"`` (a tombstone version was appended — the carried
    ``document`` *is* the tombstone, so its metadata, and therefore the
    dependency ``table``, survive for precise invalidation).
    """

    op: str
    doc_id: str
    document: Document
    table: Optional[str]

    @property
    def is_delete(self) -> bool:
        return self.op == "delete"


@dataclass(frozen=True)
class ChangeSet:
    """One publication: every document change of one invalidation epoch."""

    epoch: int
    changes: Tuple[DocumentChange, ...]

    def __len__(self) -> int:
        return len(self.changes)

    def __iter__(self) -> Iterator[DocumentChange]:
        return iter(self.changes)

    @property
    def documents(self) -> List[Document]:
        return [change.document for change in self.changes]

    @property
    def tables(self) -> Set[Optional[str]]:
        """The dependency tables this change set touches (None for
        documents without table metadata)."""
        return {change.table for change in self.changes}


DeltaListener = Callable[[ChangeSet], None]


def change_of(document: Document) -> DocumentChange:
    """Classify one stored document as an upsert or a tombstone delete."""
    op = "delete" if document.is_tombstone else "upsert"
    return DocumentChange(
        op=op,
        doc_id=document.doc_id,
        document=document,
        table=document.metadata.get("table"),
    )


class BusStats:
    __slots__ = ("put_events", "put_documents", "delete_documents", "node_events")

    def __init__(self) -> None:
        #: Publications (epoch bumps caused by puts) — one per batch.
        self.put_events = 0
        #: Documents carried by those publications.
        self.put_documents = 0
        #: Tombstone deletes among those documents.
        self.delete_documents = 0
        self.node_events = 0


class InvalidationBus:
    """Fan-out of change sets and node events to every subscribed cache."""

    def __init__(self) -> None:
        #: Monotone event counter; bumped by every put batch and node event.
        self.epoch = 0
        self.stats = BusStats()
        self._put_subscribers: List[PutListener] = []
        self._batch_subscribers: List[BatchPutListener] = []
        self._delta_subscribers: List[DeltaListener] = []
        self._node_subscribers: List[NodeListener] = []
        self._held: Optional[List[Document]] = None

    # ------------------------------------------------------------------
    # subscriptions
    # ------------------------------------------------------------------
    def subscribe_puts(self, listener: PutListener) -> None:
        """Per-document subscription (one call per document in a batch)."""
        self._put_subscribers.append(listener)

    def subscribe_put_batches(self, listener: BatchPutListener) -> None:
        """Batch subscription: one call per publication with every
        document it carries — the shape coalescing caches want."""
        self._batch_subscribers.append(listener)

    def subscribe_deltas(self, listener: DeltaListener) -> None:
        """Change-set subscription: one epoch-stamped :class:`ChangeSet`
        per publication — the shape incremental maintainers want."""
        self._delta_subscribers.append(listener)

    def subscribe_node_events(self, listener: NodeListener) -> None:
        self._node_subscribers.append(listener)

    # ------------------------------------------------------------------
    # sources
    # ------------------------------------------------------------------
    def attach_store(self, store) -> None:
        """Subscribe this bus to a document store's put stream.  Group
        commits arrive batch-at-a-time, so one ``put_many`` is one event."""
        store.batch_put_listeners.append(self._on_store_put_batch)

    def _on_store_put_batch(self, pairs) -> None:
        self.publish_put_batch([document for document, _ in pairs])

    # ------------------------------------------------------------------
    # publication
    # ------------------------------------------------------------------
    def publish_put(self, document: Document) -> None:
        self.publish_put_batch((document,))

    def publish_put_batch(self, documents: Sequence[Document]) -> None:
        """Publish one batch of persisted documents as a single event."""
        if not documents:
            return
        if self._held is not None:
            # Inside a coalescing window: merge into the one pending event.
            self._held.extend(documents)
            return
        self.epoch += 1
        changeset = ChangeSet(
            epoch=self.epoch,
            changes=tuple(change_of(document) for document in documents),
        )
        self.stats.put_events += 1
        self.stats.put_documents += len(documents)
        self.stats.delete_documents += sum(
            1 for change in changeset.changes if change.is_delete
        )
        # Coarse invalidators (result cache, probe memo) run before the
        # incremental consumers: a maintainer or standing query that
        # recomputes through the engine during this publication must not
        # be served a result cached against the previous epoch.
        for batch_listener in self._batch_subscribers:
            batch_listener(documents)
        for delta_listener in self._delta_subscribers:
            delta_listener(changeset)
        for listener in self._put_subscribers:
            for document in documents:
                listener(document)

    @contextmanager
    def coalescing(self):
        """Merge every put published inside the window into one event.

        The ingest pipeline uses this around a multi-node storage stage:
        N per-node group commits become one publication — one epoch bump,
        one union invalidation, one change set — emitted when the window
        closes.  Windows nest; only the outermost emits.  The emission
        sits in a ``finally``: an exception inside the window still
        publishes what was committed before the failure (those documents
        are durable — their invalidation must not be lost), as exactly
        one epoch.  A subscriber registered mid-window is visible by
        emission time, so it sees the coalesced change set too.
        """
        if self._held is not None:
            yield  # already inside a window — the outer one will emit
            return
        self._held = []
        try:
            yield
        finally:
            held, self._held = self._held, None
            if held:
                self.publish_put_batch(held)

    def publish_node_event(self, node_id: str, kind: str) -> None:
        """A chaos/topology event: crash, recover, corrupt, partition,
        heal, or catalog (view-definition) change."""
        self.epoch += 1
        self.stats.node_events += 1
        for listener in self._node_subscribers:
            listener(node_id, kind)
