"""Parse/plan cache keyed by normalized SQL.

Repeated queries used to re-tokenize, re-parse, and re-plan on every
call even though nothing relevant had changed — the repeated-query
pattern BIMS observes over a document repository.  This tier splits the
work by validity:

* the **logical plan** (parse result) is a pure function of the SQL
  text: cached forever under the normalized statement, no invalidation;
* the **physical plan** depends on catalog and index state (the simple
  planner's probe-ability check looks at the live value index), so each
  physical entry is stamped with the invalidation-bus epoch at plan time
  and treated as a miss once any event has fired since.

Normalization collapses whitespace and lowercases everything *outside*
single-quoted string literals (the SQL subset is case-insensitive except
inside strings), so ``SELECT X  FROM t`` and ``select x from t`` share
one entry while ``WHERE name = 'Ab'`` keeps its literal intact.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Tuple

from repro.query.sql import parse_sql


def normalize_sql(sql: str) -> str:
    """Canonical cache key for one SQL statement."""
    out: list = []
    in_string = False
    pending_space = False
    for ch in sql.strip():
        if in_string:
            out.append(ch)
            if ch == "'":
                in_string = False
            continue
        if ch == "'":
            if pending_space and out:
                out.append(" ")
            pending_space = False
            out.append(ch)
            in_string = True
            continue
        if ch.isspace():
            pending_space = True
            continue
        if pending_space and out:
            out.append(" ")
        pending_space = False
        out.append(ch.lower())
    return "".join(out)


class PlanCacheStats:
    __slots__ = (
        "parse_hits",
        "parse_misses",
        "plan_hits",
        "plan_misses",
        "compiled_hits",
        "compiled_misses",
    )

    def __init__(self) -> None:
        self.parse_hits = 0
        self.parse_misses = 0
        self.plan_hits = 0
        self.plan_misses = 0
        self.compiled_hits = 0
        self.compiled_misses = 0


class PlanCache:
    """LRU over parsed statements and epoch-stamped physical plans."""

    def __init__(self, capacity: int = 256, telemetry=None) -> None:
        if capacity < 1:
            raise ValueError("plan cache needs at least one entry")
        self.capacity = capacity
        self.telemetry = telemetry
        self.stats = PlanCacheStats()
        self._logical: "OrderedDict[str, Any]" = OrderedDict()
        # key -> (epoch at plan time, physical plan)
        self._physical: "OrderedDict[str, Tuple[int, Any]]" = OrderedDict()
        # plan fingerprint -> compiled pipeline (no epoch: a compiled
        # pipeline is a pure function of the physical plan, and data
        # changes flow through the scans it calls back into)
        self._compiled: "OrderedDict[str, Any]" = OrderedDict()

    # ------------------------------------------------------------------
    def parse(self, sql: str) -> Tuple[str, Any]:
        """Parse through the cache; returns (normalized key, logical plan).

        The logical plan is shared between executions — plan nodes are
        treated as immutable by every interpreter and planner.
        """
        key = normalize_sql(sql)
        cached = self._logical.get(key)
        if cached is not None:
            self._logical.move_to_end(key)
            self.stats.parse_hits += 1
            if self.telemetry is not None:
                self.telemetry.inc("cache.plan.parse_hits")
            return key, cached
        logical = parse_sql(sql)
        self.stats.parse_misses += 1
        if self.telemetry is not None:
            self.telemetry.inc("cache.plan.parse_misses")
        self._logical[key] = logical
        while len(self._logical) > self.capacity:
            self._logical.popitem(last=False)
        return key, logical

    # ------------------------------------------------------------------
    def physical(
        self, key: str, epoch: int, plan: Callable[[], Any]
    ) -> Any:
        """Physical plan for *key*, valid only at the current *epoch*.

        Any invalidation-bus event since plan time (a put may have
        defined a view or made the value index probe-able; a node event
        may have changed topology) forces a replan — planning is cheap
        relative to execution, so the epoch check trades hit rate for
        unconditional correctness.
        """
        entry = self._physical.get(key)
        if entry is not None and entry[0] == epoch:
            self._physical.move_to_end(key)
            self.stats.plan_hits += 1
            if self.telemetry is not None:
                self.telemetry.inc("cache.plan.hits")
            return entry[1]
        physical = plan()
        self.stats.plan_misses += 1
        if self.telemetry is not None:
            self.telemetry.inc("cache.plan.misses")
        self._physical[key] = (epoch, physical)
        while len(self._physical) > self.capacity:
            self._physical.popitem(last=False)
        return physical

    # ------------------------------------------------------------------
    def compiled(self, fingerprint: str, build: Callable[[], Any]) -> Any:
        """Compiled pipeline for a plan *fingerprint* (docs/ADAPTIVE.md).

        The third tier: lowering a physical plan into fused closures is
        pure per-plan work, so it amortizes across the cached-plan hot
        path the same way parsing does.  Epoch-free by design — the
        closures read live data through the engine at execution time.
        """
        entry = self._compiled.get(fingerprint)
        if entry is not None:
            self._compiled.move_to_end(fingerprint)
            self.stats.compiled_hits += 1
            if self.telemetry is not None:
                self.telemetry.inc("cache.plan.compiled_hits")
            return entry
        pipeline = build()
        self.stats.compiled_misses += 1
        if self.telemetry is not None:
            self.telemetry.inc("cache.plan.compiled_misses")
        self._compiled[fingerprint] = pipeline
        while len(self._compiled) > self.capacity:
            self._compiled.popitem(last=False)
        return pipeline

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Drop everything (parse entries too — used by the off ramp)."""
        self._logical.clear()
        self._physical.clear()
        self._compiled.clear()

    @property
    def entry_count(self) -> int:
        return len(self._logical) + len(self._physical) + len(self._compiled)
