"""Query-result cache with ``base_views()`` dependency invalidation.

Each entry is one executed query's rows, keyed by the fingerprint of the
physical plan that produced them and tagged with the same dependency set
:class:`~repro.query.materialized.MaterializedQuery` uses — the base
views the plan reads.  A put against any dependency table drops exactly
the entries that could have changed; unrelated writes leave the cache
warm, which is what makes result caching pay under mixed load.

Node events (crash, corrupt, partition, …) flush the whole tier: they
change which segments are reachable, and a cached answer derived from a
now-missing segment must never be served as fresh (the engine
additionally refuses to *admit* results computed while the appliance
reports missing segments — see :class:`repro.cache.CacheHierarchy`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional

from repro.exec.costs import estimate_rows_bytes

Row = Dict[str, Any]


@dataclass
class CachedResult:
    """One cached query answer (rows plus what produced them)."""

    rows: List[Row]
    dependencies: FrozenSet[str]
    sim_ms: float
    plan_text: str
    bytes: int


class ResultCacheStats:
    __slots__ = ("hits", "misses", "invalidations", "flushes", "evictions", "bytes")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.flushes = 0
        self.evictions = 0
        self.bytes = 0


class ResultCache:
    """LRU + byte-capped map of plan fingerprint → :class:`CachedResult`."""

    def __init__(
        self,
        capacity: int = 128,
        byte_capacity: int = 8_000_000,
        telemetry=None,
    ) -> None:
        if capacity < 1:
            raise ValueError("result cache needs at least one entry")
        if byte_capacity < 1:
            raise ValueError("result cache byte capacity must be >= 1")
        self.capacity = capacity
        self.byte_capacity = byte_capacity
        self.telemetry = telemetry
        self.stats = ResultCacheStats()
        self._entries: "OrderedDict[str, CachedResult]" = OrderedDict()

    # ------------------------------------------------------------------
    def lookup(self, fingerprint: str) -> Optional[CachedResult]:
        entry = self._entries.get(fingerprint)
        if entry is None:
            self.stats.misses += 1
            if self.telemetry is not None:
                self.telemetry.inc("cache.result.misses")
            return None
        self._entries.move_to_end(fingerprint)
        self.stats.hits += 1
        if self.telemetry is not None:
            self.telemetry.inc("cache.result.hits")
        return entry

    def store(
        self,
        fingerprint: str,
        rows: List[Row],
        dependencies: FrozenSet[str],
        sim_ms: float,
        plan_text: str = "",
    ) -> Optional[CachedResult]:
        """Admit one result; returns the entry (None when it cannot fit)."""
        nbytes = estimate_rows_bytes(rows)
        if nbytes > self.byte_capacity:
            return None  # a single oversized result would evict everything
        old = self._entries.pop(fingerprint, None)
        if old is not None:
            self.stats.bytes -= old.bytes
        entry = CachedResult(
            rows=[dict(r) for r in rows],
            dependencies=frozenset(dependencies),
            sim_ms=sim_ms,
            plan_text=plan_text,
            bytes=nbytes,
        )
        self._entries[fingerprint] = entry
        self.stats.bytes += nbytes
        self._evict_if_needed()
        if self.telemetry is not None:
            self.telemetry.inc("cache.result.stores")
            self.telemetry.set_gauge("cache.result.bytes", self.stats.bytes)
        return entry

    def _evict_if_needed(self) -> None:
        while len(self._entries) > self.capacity or self.stats.bytes > self.byte_capacity:
            _, victim = self._entries.popitem(last=False)
            self.stats.bytes -= victim.bytes
            self.stats.evictions += 1
            if self.telemetry is not None:
                self.telemetry.inc("cache.result.evictions")

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def invalidate_table(self, table: Optional[str]) -> int:
        """Drop every entry whose dependency set contains *table*.

        A put with no table metadata (free text, e-mail) still changes
        scan results for views that match such documents, so ``None``
        conservatively flushes everything.
        """
        if table is None:
            return self.flush()
        stale = [
            key
            for key, entry in self._entries.items()
            if table in entry.dependencies
        ]
        for key in stale:
            victim = self._entries.pop(key)
            self.stats.bytes -= victim.bytes
        self.stats.invalidations += len(stale)
        if stale and self.telemetry is not None:
            self.telemetry.inc("cache.result.invalidations", len(stale))
            self.telemetry.set_gauge("cache.result.bytes", self.stats.bytes)
        return len(stale)

    def flush(self) -> int:
        """Drop everything (node/chaos/catalog events)."""
        dropped = len(self._entries)
        self._entries.clear()
        self.stats.bytes = 0
        self.stats.invalidations += dropped
        self.stats.flushes += 1
        if self.telemetry is not None:
            if dropped:
                self.telemetry.inc("cache.result.invalidations", dropped)
            self.telemetry.inc("cache.result.flushes")
            self.telemetry.set_gauge("cache.result.bytes", 0)
        return dropped

    # ------------------------------------------------------------------
    @property
    def entry_count(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries
