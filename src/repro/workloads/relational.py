"""Generic relational workload: customers and orders.

The parameter-sweep workhorse for the planner, pushdown, and scale-out
experiments.  All generation is seeded and deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator

from repro.model.converters import from_relational_row
from repro.model.document import Document

REGIONS = ("east", "west", "north", "south")
SEGMENTS = ("enterprise", "smb", "public")


@dataclass(frozen=True)
class RelationalWorkload:
    """Seeded generator of customers and orders rows."""

    n_customers: int = 100
    n_orders: int = 1000
    seed: int = 7
    amount_low: float = 5.0
    amount_high: float = 500.0

    def customers(self) -> Iterator[Document]:
        rng = random.Random(self.seed)
        for i in range(self.n_customers):
            yield from_relational_row(
                f"cust-{i}",
                "customers",
                {
                    "cid": i,
                    "name": f"Customer {i}",
                    "segment": rng.choice(SEGMENTS),
                    "region": rng.choice(REGIONS),
                },
                primary_key=["cid"],
            )

    def orders(self) -> Iterator[Document]:
        rng = random.Random(self.seed + 1)
        for i in range(self.n_orders):
            yield from_relational_row(
                f"ord-{i}",
                "orders",
                {
                    "oid": i,
                    "cid": rng.randrange(self.n_customers),
                    "amount": round(rng.uniform(self.amount_low, self.amount_high), 2),
                    "region": rng.choice(REGIONS),
                    "status": rng.choice(["open", "shipped", "returned"]),
                },
                primary_key=["oid"],
            )

    def documents(self) -> Iterator[Document]:
        yield from self.customers()
        yield from self.orders()

    @property
    def doc_count(self) -> int:
        return self.n_customers + self.n_orders

    def expected_totals_by_region(self) -> Dict[str, float]:
        """Ground truth for aggregate correctness checks."""
        totals: Dict[str, float] = {}
        for document in self.orders():
            row = document.content["orders"]
            totals[row["region"]] = totals.get(row["region"], 0.0) + row["amount"]
        return totals
