"""Legal-compliance / e-discovery workload — Section 2.1.3.

Companies linked by partnership contracts, employees exchanging e-mail
that references contract ids, and unrelated chatter.  The discovery
question the paper poses — find everything pertinent to a litigation,
including through *indirect contractual relationships* — has planted
ground truth: the transitive partner set of the target company.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.model.converters import from_email, from_relational_row
from repro.model.document import Document

COMPANY_STEMS = (
    "Acme", "Beta", "Cyber", "Delta", "Echo", "Fox", "Globex", "Helix",
    "Initech", "Jupiter", "Kappa", "Lumen",
)


@dataclass
class LegalWorkload:
    """Seeded e-discovery corpus with a known partnership graph."""

    n_companies: int = 10
    n_contracts: int = 12
    n_emails: int = 60
    seed: int = 31
    #: partnership edges (company_id, company_id) actually generated
    partnerships: List[Tuple[int, int]] = field(default_factory=list)
    #: contract id -> the two company ids it binds
    contract_parties: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    #: email doc_id -> contract id it references (None = chatter)
    email_contract: Dict[str, Optional[int]] = field(default_factory=dict)

    def company_name(self, cid: int) -> str:
        return f"{COMPANY_STEMS[cid % len(COMPANY_STEMS)]} Corp {cid}"

    # ------------------------------------------------------------------
    def companies(self) -> Iterator[Document]:
        for cid in range(self.n_companies):
            yield from_relational_row(
                f"lgl-co-{cid}",
                "companies",
                {"company_id": cid, "name": self.company_name(cid)},
                primary_key=["company_id"],
            )

    def contracts(self) -> Iterator[Document]:
        """Contract rows binding pairs of companies into a chain-ish
        graph (so transitive closure is non-trivial)."""
        rng = random.Random(self.seed)
        self.partnerships = []
        self.contract_parties = {}
        for k in range(self.n_contracts):
            if k < self.n_companies - 1:
                a, b = k, k + 1  # guarantee a connected backbone chain
            else:
                a, b = rng.sample(range(self.n_companies), 2)
            self.partnerships.append((a, b))
            self.contract_parties[k] = (a, b)
            yield from_relational_row(
                f"lgl-contract-{k}",
                "contracts",
                {
                    "contract_id": k,
                    "party_a": a,
                    "party_b": b,
                    "kind": rng.choice(["supply", "licensing", "partnership"]),
                    "value": round(rng.uniform(10_000, 900_000), 2),
                },
                primary_key=["contract_id"],
            )

    def emails(self) -> Iterator[Document]:
        rng = random.Random(self.seed + 1)
        self.email_contract = {}
        for m in range(self.n_emails):
            doc_id = f"lgl-mail-{m}"
            if rng.random() < 0.6 and self.contract_parties:
                contract_id = rng.randrange(len(self.contract_parties))
                a, b = self.contract_parties[contract_id]
                body = (
                    f"Regarding contract CTR-{contract_id:04d} between "
                    f"{self.company_name(a)} and {self.company_name(b)}: the "
                    "deliverables schedule needs an amendment before Q3."
                )
                subject = f"contract CTR-{contract_id:04d} amendment"
                self.email_contract[doc_id] = contract_id
            else:
                body = rng.choice(
                    [
                        "Lunch on Thursday? The new cafeteria is great.",
                        "Reminder: the all-hands meeting moved to 3pm.",
                        "Attached are the travel guidelines for next year.",
                    ]
                )
                subject = "misc"
                self.email_contract[doc_id] = None
            raw = (
                f"From: user{m}@example.com\n"
                f"To: team{m % 7}@example.com\n"
                f"Subject: {subject}\n\n{body}"
            )
            yield from_email(doc_id, raw)

    def documents(self) -> Iterator[Document]:
        yield from self.companies()
        yield from self.contracts()
        yield from self.emails()

    # ------------------------------------------------------------------
    def transitive_partners(self, company_id: int) -> Set[int]:
        """Ground truth: companies reachable through partnership edges."""
        adjacency: Dict[int, Set[int]] = {}
        for a, b in self.partnerships:
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)
        seen: Set[int] = set()
        frontier = [company_id]
        while frontier:
            current = frontier.pop()
            for neighbor in adjacency.get(current, ()):
                if neighbor not in seen and neighbor != company_id:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return seen

    def responsive_emails(self, company_id: int) -> Set[str]:
        """Emails referencing any contract touching *company_id*."""
        relevant_contracts = {
            k for k, (a, b) in self.contract_parties.items()
            if a == company_id or b == company_id
        }
        return {
            doc_id
            for doc_id, contract in self.email_contract.items()
            if contract in relevant_contracts
        }
