"""Call-center (CRM) workload — the paper's Section 2.1.1 use case.

Customer master rows, a product catalog, and synthetic call transcripts
in which known customers discuss known products with varying sentiment.
Ground truth (who mentioned what, with which polarity) is retained so
tests and experiments can score the discovery pipeline's recall.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.model.converters import from_relational_row, from_text
from repro.model.document import Document

PRODUCTS = (
    "WidgetPro", "GadgetMax", "FlowMaster", "DataVault", "NetRunner",
    "CloudNine", "TurboSync", "OmniHub",
)

FIRST_NAMES = (
    "Alice", "Bob", "Carol", "David", "Erin", "Frank", "Grace", "Henry",
    "Irene", "Jack", "Karen", "Laura", "Mike", "Nancy", "Oscar", "Peggy",
)
LAST_NAMES = (
    "Johnson", "Smith", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Martinez", "Lopez", "Wilson", "Anderson",
)

_POSITIVE_PHRASES = (
    "is excellent and works great",
    "is wonderful, very pleased with it",
    "is fantastic, thanks for the quick help",
    "is reliable and easy to use, love it",
)
_NEGATIVE_PHRASES = (
    "is terrible and arrived broken",
    "keeps crashing, very frustrated",
    "is awful, wants a refund immediately",
    "failed again, worst purchase ever",
)
_NEUTRAL_PHRASES = (
    "needs the latest manual",
    "was mentioned during the call",
    "requires a firmware update",
)


@dataclass
class TranscriptTruth:
    """Ground truth for one generated transcript."""

    doc_id: str
    customer_name: str
    customer_id: int
    products: List[str]
    polarity: str  # positive | negative | neutral
    amount: Optional[float]


@dataclass
class CallCenterWorkload:
    """Seeded CRM corpus generator."""

    n_customers: int = 40
    n_transcripts: int = 120
    seed: int = 11
    truths: List[TranscriptTruth] = field(default_factory=list)

    def product_lexicon(self) -> Tuple[str, ...]:
        return PRODUCTS

    def _name_of(self, rng: random.Random, cid: int) -> str:
        local = random.Random(self.seed * 1000 + cid)
        return f"{local.choice(FIRST_NAMES)} {local.choice(LAST_NAMES)}"

    # ------------------------------------------------------------------
    def customers(self) -> Iterator[Document]:
        rng = random.Random(self.seed)
        for cid in range(self.n_customers):
            yield from_relational_row(
                f"crm-cust-{cid}",
                "customers",
                {
                    "cid": cid,
                    "name": self._name_of(rng, cid),
                    "segment": rng.choice(["consumer", "business"]),
                    "lifetime_value": round(rng.uniform(100, 20000), 2),
                },
                primary_key=["cid"],
            )

    def products(self) -> Iterator[Document]:
        for pid, name in enumerate(PRODUCTS):
            yield from_relational_row(
                f"crm-prod-{pid}",
                "products",
                {"pid": pid, "name": name, "list_price": 49.0 + 50.0 * pid},
                primary_key=["pid"],
            )

    def transcripts(self) -> Iterator[Document]:
        rng = random.Random(self.seed + 2)
        self.truths = []
        for t in range(self.n_transcripts):
            cid = rng.randrange(self.n_customers)
            name = self._name_of(rng, cid)
            mentioned = rng.sample(PRODUCTS, k=rng.choice([1, 1, 2]))
            polarity = rng.choices(
                ["positive", "negative", "neutral"], weights=[4, 3, 2]
            )[0]
            phrases = {
                "positive": _POSITIVE_PHRASES,
                "negative": _NEGATIVE_PHRASES,
                "neutral": _NEUTRAL_PHRASES,
            }[polarity]
            sentences = [f"Call transcript. Ms. {name} called customer support."]
            for product in mentioned:
                sentences.append(f"The {product} {rng.choice(phrases)}.")
            amount: Optional[float] = None
            if polarity == "negative" and rng.random() < 0.5:
                amount = round(rng.uniform(20, 900), 2)
                sentences.append(f"A refund of ${amount:,.2f} was requested.")
            sentences.append(f"Callback number 555-{rng.randrange(100,999)}-{rng.randrange(1000,9999)}.")
            doc_id = f"crm-call-{t}"
            self.truths.append(
                TranscriptTruth(doc_id, name, cid, mentioned, polarity, amount)
            )
            yield from_text(doc_id, " ".join(sentences), title=f"call {t}")

    def documents(self) -> Iterator[Document]:
        yield from self.customers()
        yield from self.products()
        yield from self.transcripts()

    # ------------------------------------------------------------------
    def truth_mentions(self) -> Set[Tuple[str, str]]:
        """(transcript doc_id, product) ground-truth pairs."""
        return {(t.doc_id, p) for t in self.truths for p in t.products}

    def truth_polarity(self) -> Dict[str, str]:
        return {t.doc_id: t.polarity for t in self.truths}
