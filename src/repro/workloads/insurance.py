"""Insurance-claims workload — the paper's Section 2.1.2 use case.

Structured patient/provider/claim rows plus free-text adjuster notes and
claim forms naming medical procedures and repair amounts.  A controlled
fraction of claims carry inflated amounts so the exception-mining and
"excessive estimate" analyses have planted ground truth to find.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Set, Tuple

from repro.model.converters import from_relational_row, from_text, from_xml
from repro.model.document import Document

PROCEDURES = (
    "appendectomy", "angioplasty", "arthroscopy", "biopsy", "colonoscopy",
    "dialysis", "endoscopy", "physiotherapy",
)

REPAIR_PARTS = ("bumper", "windshield", "door panel", "headlight", "radiator")


@dataclass
class ClaimTruth:
    claim_id: str
    patient_id: int
    provider_id: int
    procedure: str
    amount: float
    inflated: bool


@dataclass
class InsuranceWorkload:
    """Seeded claims corpus with planted fraud signals."""

    n_patients: int = 30
    n_providers: int = 8
    n_claims: int = 100
    inflation_rate: float = 0.08
    seed: int = 23
    truths: List[ClaimTruth] = field(default_factory=list)

    def procedure_lexicon(self) -> Tuple[str, ...]:
        return PROCEDURES

    # ------------------------------------------------------------------
    def patients(self) -> Iterator[Document]:
        rng = random.Random(self.seed)
        for pid in range(self.n_patients):
            yield from_relational_row(
                f"ins-pat-{pid}",
                "patients",
                {
                    "patient_id": pid,
                    "name": f"Patient {pid}",
                    "plan": rng.choice(["bronze", "silver", "gold"]),
                },
                primary_key=["patient_id"],
            )

    def providers(self) -> Iterator[Document]:
        rng = random.Random(self.seed + 1)
        for vid in range(self.n_providers):
            yield from_relational_row(
                f"ins-prov-{vid}",
                "providers",
                {
                    "provider_id": vid,
                    "name": f"Clinic {vid}",
                    "state": rng.choice(["CA", "NY", "TX", "WA"]),
                },
                primary_key=["provider_id"],
            )

    def claims(self) -> Iterator[Document]:
        """Structured claim rows + a free-text form for each claim."""
        rng = random.Random(self.seed + 2)
        self.truths = []
        base_cost = {p: 400.0 + 150.0 * i for i, p in enumerate(PROCEDURES)}
        for c in range(self.n_claims):
            patient = rng.randrange(self.n_patients)
            provider = rng.randrange(self.n_providers)
            procedure = rng.choice(PROCEDURES)
            inflated = rng.random() < self.inflation_rate
            amount = base_cost[procedure] * rng.uniform(0.85, 1.15)
            if inflated:
                amount *= rng.uniform(3.5, 6.0)
            amount = round(amount, 2)
            claim_id = f"ins-claim-{c}"
            self.truths.append(
                ClaimTruth(claim_id, patient, provider, procedure, amount, inflated)
            )
            yield from_relational_row(
                claim_id,
                "claims",
                {
                    "claim_id": c,
                    "patient_id": patient,
                    "provider_id": provider,
                    "procedure": procedure,
                    "amount": amount,
                },
                primary_key=["claim_id"],
            )
            note = (
                f"Claim form for Patient {patient} treated at Clinic {provider}. "
                f"The {procedure} was billed at ${amount:,.2f}. "
                f"Adjuster notes: {'estimate seems high, needs review' if inflated else 'routine claim'}."
            )
            yield from_text(f"ins-form-{c}", note, title=f"claim form {c}")

    def accident_reports(self, count: int = 20) -> Iterator[Document]:
        """Semi-structured XML police/repair reports (the vehicle-damage
        side of the use case)."""
        rng = random.Random(self.seed + 3)
        for r in range(count):
            parts = rng.sample(REPAIR_PARTS, k=rng.choice([1, 2, 3]))
            estimate = round(sum(rng.uniform(150, 900) for _ in parts), 2)
            items = "".join(f"<part>{p}</part>" for p in parts)
            payload = (
                f"<report id='{r}'><vehicle>sedan</vehicle>"
                f"<damage>{items}</damage>"
                f"<estimate>{estimate}</estimate></report>"
            )
            yield from_xml(f"ins-report-{r}", payload)

    def documents(self) -> Iterator[Document]:
        yield from self.patients()
        yield from self.providers()
        yield from self.claims()
        yield from self.accident_reports()

    # ------------------------------------------------------------------
    def inflated_claims(self) -> Set[str]:
        return {t.claim_id for t in self.truths if t.inflated}
