"""Synthetic workloads standing in for the paper's enterprise corpora.

Seeded, deterministic generators for the three Section 2.1 use cases
(call center CRM, insurance claims, legal discovery) plus a generic
relational workload for parameter sweeps.  Each generator retains its
ground truth so experiments can score recall, not just throughput.

:func:`make_corpus` / :func:`corpus_queries` form the registry the
serving-layer workload driver replays: one seeded generator per corpus
name plus the search/SQL templates a tenant of that corpus issues.
"""

from typing import Any, Dict, List

from repro.workloads.relational import RelationalWorkload, REGIONS, SEGMENTS
from repro.workloads.callcenter import (
    CallCenterWorkload,
    PRODUCTS,
    TranscriptTruth,
)
from repro.workloads.insurance import (
    ClaimTruth,
    InsuranceWorkload,
    PROCEDURES,
)
from repro.workloads.legal import LegalWorkload
from repro.workloads.sensors import LOCATIONS, SensorWorkload

def make_corpus(name: str, seed: int = 0, scale: float = 1.0):
    """One seeded workload generator per corpus name, sized by *scale*
    (1.0 is the serving driver's default footprint — small enough that a
    thousand sessions' queries stay fast, large enough to rank)."""
    def sized(base: int, floor: int = 5) -> int:
        return max(floor, int(base * scale))

    if name == "callcenter":
        return CallCenterWorkload(
            n_customers=sized(20), n_transcripts=sized(40), seed=seed + 11
        )
    if name == "legal":
        return LegalWorkload(
            n_companies=sized(8), n_contracts=sized(10), n_emails=sized(30),
            seed=seed + 31,
        )
    if name == "insurance":
        return InsuranceWorkload(
            n_patients=sized(15), n_providers=sized(6), n_claims=sized(40),
            seed=seed + 23,
        )
    if name == "sensors":
        return SensorWorkload(
            n_tags=sized(20), n_readers=sized(6), n_events=sized(150),
            seed=seed + 41,
        )
    if name == "relational":
        return RelationalWorkload(
            n_customers=sized(20), n_orders=sized(100), seed=seed + 7
        )
    raise ValueError(f"unknown corpus {name!r}")


def corpus_queries(name: str) -> Dict[str, List[Any]]:
    """The request templates a tenant of *name* draws from: keyword
    search terms that hit the corpus and SQL over its auto-views."""
    if name == "callcenter":
        return {
            "searches": [p.lower() for p in PRODUCTS[:4]]
            + ["refund", "excellent", "crashing"],
            "sqls": [
                "SELECT count(*) AS n FROM customers",
                "SELECT * FROM products",
            ],
        }
    if name == "legal":
        return {
            "searches": ["contract", "partnership", "agreement", "acme"],
            "sqls": [
                "SELECT count(*) AS n FROM contracts",
                "SELECT * FROM companies",
            ],
        }
    if name == "insurance":
        return {
            "searches": [p for p in PROCEDURES[:4]] + ["claim"],
            "sqls": [
                "SELECT count(*) AS n FROM claims",
                "SELECT * FROM providers",
            ],
        }
    if name == "sensors":
        return {
            "searches": [loc for loc in LOCATIONS],
            "sqls": [
                "SELECT count(*) AS n FROM rfid_events",
                "SELECT location, count(*) AS n FROM rfid_events GROUP BY location",
            ],
        }
    if name == "relational":
        return {
            "searches": [r.lower() for r in REGIONS],
            "sqls": [
                "SELECT count(*) AS n FROM orders",
                "SELECT region, count(*) AS n FROM orders GROUP BY region",
            ],
        }
    raise ValueError(f"unknown corpus {name!r}")


__all__ = [
    "make_corpus",
    "corpus_queries",
    "RelationalWorkload",
    "REGIONS",
    "SEGMENTS",
    "CallCenterWorkload",
    "PRODUCTS",
    "TranscriptTruth",
    "ClaimTruth",
    "InsuranceWorkload",
    "PROCEDURES",
    "LegalWorkload",
    "LOCATIONS",
    "SensorWorkload",
]
