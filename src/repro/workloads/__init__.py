"""Synthetic workloads standing in for the paper's enterprise corpora.

Seeded, deterministic generators for the three Section 2.1 use cases
(call center CRM, insurance claims, legal discovery) plus a generic
relational workload for parameter sweeps.  Each generator retains its
ground truth so experiments can score recall, not just throughput.
"""

from repro.workloads.relational import RelationalWorkload, REGIONS, SEGMENTS
from repro.workloads.callcenter import (
    CallCenterWorkload,
    PRODUCTS,
    TranscriptTruth,
)
from repro.workloads.insurance import (
    ClaimTruth,
    InsuranceWorkload,
    PROCEDURES,
)
from repro.workloads.legal import LegalWorkload
from repro.workloads.sensors import LOCATIONS, SensorWorkload

__all__ = [
    "RelationalWorkload",
    "REGIONS",
    "SEGMENTS",
    "CallCenterWorkload",
    "PRODUCTS",
    "TranscriptTruth",
    "ClaimTruth",
    "InsuranceWorkload",
    "PROCEDURES",
    "LegalWorkload",
    "LOCATIONS",
    "SensorWorkload",
]
