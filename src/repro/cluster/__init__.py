"""Simulated appliance cluster (paper Section 3.3, Figure 3).

The hardware substitution layer: data/grid/cluster node flavors with a
cost-accounting timeline each, a latency/bandwidth network model,
consistency groups with explicit heartbeat and view-change overhead,
hash-partitioned document placement, and failure injection.  See
DESIGN.md's substitution table for why this stands in for the paper's
racks of commodity blades.
"""

from repro.cluster.network import (
    DEFAULT_BANDWIDTH_BYTES_PER_MS,
    DEFAULT_LATENCY_MS,
    Network,
    NetworkStats,
)
from repro.cluster.node import (
    NodeKind,
    OPERATOR_AFFINITY,
    SimNode,
    WorkRecord,
)
from repro.cluster.groups import (
    ConsistencyGroup,
    GroupStats,
    LockConflictError,
)
from repro.cluster.topology import (
    ImplianceCluster,
    TopologyInventory,
)
from repro.cluster.scheduler import OperatorScheduler, PlacementDecision

__all__ = [
    "DEFAULT_BANDWIDTH_BYTES_PER_MS",
    "DEFAULT_LATENCY_MS",
    "Network",
    "NetworkStats",
    "NodeKind",
    "OPERATOR_AFFINITY",
    "SimNode",
    "WorkRecord",
    "ConsistencyGroup",
    "GroupStats",
    "LockConflictError",
    "ImplianceCluster",
    "TopologyInventory",
    "OperatorScheduler",
    "PlacementDecision",
]
