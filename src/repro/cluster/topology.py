"""The Impliance cluster: nodes, routing, detection, failure injection.

One :class:`ImplianceCluster` is a single-system-image appliance instance
(Figure 3): data nodes own hash-partitioned document storage, grid nodes
form work crews for analytics, cluster nodes form the consistency group
that serializes updates.  The software "automatically detect[s] which
hardware components are available and reconfigur[es] itself if there are
changes" (Section 3.1) — :meth:`detect_topology` is that inventory pass
and runs again whenever nodes are added or fail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.cluster.groups import ConsistencyGroup
from repro.cluster.network import Network
from repro.cluster.node import NodeKind, SimNode
from repro.model.document import Document
from repro.util import LogicalClock, stable_hash

#: Simulated CPU cost to persist one KB at a data node.
INGEST_CPU_MS_PER_KB = 0.02


@dataclass
class TopologyInventory:
    """What auto-detection found: counts and ids per flavor."""

    data_nodes: List[str]
    grid_nodes: List[str]
    cluster_nodes: List[str]
    generation: int

    @property
    def total(self) -> int:
        return len(self.data_nodes) + len(self.grid_nodes) + len(self.cluster_nodes)


class ImplianceCluster:
    """A simulated single-instance appliance.

    Parameters
    ----------
    n_data / n_grid / n_cluster:
        Node counts per flavor.  The paper's scaling story is that these
        evolve independently: "Add more data nodes to provide additional
        data capacity or throughput; add more computing nodes to support
        additional users or applications."
    network:
        Shared interconnect model (a default is built when omitted).
    buffer_capacity:
        Buffer-pool frames per data node.
    """

    def __init__(
        self,
        n_data: int = 2,
        n_grid: int = 2,
        n_cluster: int = 1,
        network: Optional[Network] = None,
        buffer_capacity: int = 256,
    ) -> None:
        if n_data < 1:
            raise ValueError("a cluster needs at least one data node")
        if n_cluster < 1:
            raise ValueError("a cluster needs at least one cluster node")
        self.network = network if network is not None else Network()
        self.clock = LogicalClock()
        self._nodes: Dict[str, SimNode] = {}
        self._generation = 0
        self._buffer_capacity = buffer_capacity
        self._telemetry = None
        for i in range(n_data):
            self._add(SimNode(f"data-{i}", NodeKind.DATA, store_clock=self.clock,
                              buffer_capacity=buffer_capacity))
        for i in range(n_grid):
            self._add(SimNode(f"grid-{i}", NodeKind.GRID))
        for i in range(n_cluster):
            self._add(SimNode(f"cluster-{i}", NodeKind.CLUSTER))
        self.consistency_group = ConsistencyGroup(
            "cg-0", self.nodes_of(NodeKind.CLUSTER), self.network
        )
        self._inventory = self.detect_topology()

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def _add(self, node: SimNode) -> SimNode:
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id {node.node_id}")
        self._nodes[node.node_id] = node
        return node

    def add_node(self, kind: NodeKind) -> SimNode:
        """Hot-add a node of *kind* and re-detect the topology.

        New data nodes receive only subsequently ingested data (routing
        is over the live data-node list at ingest time); the paper's
        brokers decide who gets new hardware, which the virt layer
        models.
        """
        index = sum(1 for n in self._nodes.values() if n.kind is kind)
        node = SimNode(
            f"{kind.value}-{index}",
            kind,
            store_clock=self.clock if kind is NodeKind.DATA else None,
            buffer_capacity=self._buffer_capacity,
        )
        self._add(node)
        if self._telemetry is not None:
            node.telemetry = self._telemetry
        if kind is NodeKind.CLUSTER:
            self.consistency_group.join(node)
        self._inventory = self.detect_topology()
        return node

    def fail_node(self, node_id: str) -> SimNode:
        """Inject a failure; topology re-detects (Section 3.1 reconfig)."""
        node = self.node(node_id)
        node.fail()
        self._inventory = self.detect_topology()
        return node

    def recover_node(self, node_id: str) -> SimNode:
        node = self.node(node_id)
        node.recover()
        self._inventory = self.detect_topology()
        return node

    def detect_topology(self) -> TopologyInventory:
        """The appliance's automatic hardware-inventory pass."""
        self._generation += 1
        return TopologyInventory(
            data_nodes=[n.node_id for n in self.nodes_of(NodeKind.DATA)],
            grid_nodes=[n.node_id for n in self.nodes_of(NodeKind.GRID)],
            cluster_nodes=[n.node_id for n in self.nodes_of(NodeKind.CLUSTER)],
            generation=self._generation,
        )

    @property
    def inventory(self) -> TopologyInventory:
        return self._inventory

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def attach_telemetry(self, telemetry) -> None:
        """Wire a :class:`repro.obs.Telemetry` into every node timeline.

        Only an *enabled* telemetry is attached — nodes keep a None hook
        otherwise, so the per-``run()`` hot path pays nothing when
        observability is off.  Nodes added later inherit the hook.
        """
        self._telemetry = telemetry if telemetry.enabled else None
        for node in self._nodes.values():
            node.telemetry = self._telemetry

    # ------------------------------------------------------------------
    # node access
    # ------------------------------------------------------------------
    def node(self, node_id: str) -> SimNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise LookupError(f"no node named {node_id!r}") from None

    def nodes(self) -> List[SimNode]:
        return [self._nodes[k] for k in sorted(self._nodes)]

    def nodes_of(self, kind: NodeKind, alive_only: bool = True) -> List[SimNode]:
        return [
            n for n in self.nodes()
            if n.kind is kind and (n.alive or not alive_only)
        ]

    @property
    def data_nodes(self) -> List[SimNode]:
        return self.nodes_of(NodeKind.DATA)

    @property
    def grid_nodes(self) -> List[SimNode]:
        return self.nodes_of(NodeKind.GRID)

    @property
    def cluster_nodes(self) -> List[SimNode]:
        return self.nodes_of(NodeKind.CLUSTER)

    def work_crew(self, size: int) -> List[SimNode]:
        """Pull the least-loaded grid nodes into a crew (Section 3.3:
        grid nodes "may be pulled into a 'work crew'").  Falls back to
        fewer nodes when the grid is small."""
        if size < 1:
            raise ValueError("crew size must be >= 1")
        crew = sorted(self.grid_nodes, key=lambda n: (n.available_at, n.node_id))
        return crew[:size]

    # ------------------------------------------------------------------
    # data placement & ingest
    # ------------------------------------------------------------------
    def home_of(self, doc_id: str) -> SimNode:
        """The data node owning *doc_id* (hash routing over live nodes)."""
        live = self.data_nodes
        if not live:
            raise RuntimeError("no live data nodes")
        return live[stable_hash(doc_id, len(live))]

    def ingest(self, document: Document, after: float = 0.0) -> Tuple[SimNode, float]:
        """Route and persist one document; returns (home node, finish time).

        Persisting charges CPU at the home data node proportional to the
        document's size; indexing happens through the node's own index
        manager (incremental, Section 3.3).
        """
        home = self.home_of(document.doc_id)
        assert home.store is not None
        home.store.put(document)
        cost = INGEST_CPU_MS_PER_KB * document.size_bytes() / 1024.0
        finish = home.run(cost, after, label="ingest")
        return home, finish

    def ingest_many(self, documents: Sequence[Document]) -> float:
        """Bulk ingest, document at a time; returns the makespan.

        This is the *sequential* routing loop — each document is a full
        scheduling round.  The staged pipeline uses :meth:`ingest_batch`
        instead; this form remains as the per-document baseline.
        """
        finish = 0.0
        for document in documents:
            _, end = self.ingest(document)
            finish = max(finish, end)
        return finish

    def ingest_batch(
        self, documents: Sequence[Document], after: float = 0.0
    ) -> Tuple[List[Document], Dict[str, List[Document]], float]:
        """Shard one batch across the data nodes in a single scheduling
        round.

        Documents are stamped from the shared cluster clock in arrival
        order *before* grouping, so timestamps — and therefore version
        chains, as-of reads, and store contents — are identical to
        sequential :meth:`ingest` calls over the same sequence.  Each home
        node then takes one :meth:`DocumentStore.put_many` group commit
        and one CPU charge for its whole share, all starting at *after*
        (the nodes work in parallel; the makespan is the slowest share).

        Returns ``(stored documents in arrival order, node_id → share,
        finish time)``.
        """
        if not documents:
            return [], {}, after
        stamped = [
            document if document.ingest_ts else document.stamped(self.clock.tick())
            for document in documents
        ]
        # One routing table for the whole batch: the live data-node list
        # is computed once, not re-derived per document as `home_of` does
        # (same hash ring, so placement is identical).
        live = self.data_nodes
        if not live:
            raise RuntimeError("no live data nodes")
        shares: Dict[str, List[Document]] = {}
        for document in stamped:
            home = live[stable_hash(document.doc_id, len(live))]
            shares.setdefault(home.node_id, []).append(document)
        finish = after
        for node_id, share in shares.items():
            node = self._nodes[node_id]
            assert node.store is not None
            node.store.put_many(share)
            cost = (
                INGEST_CPU_MS_PER_KB
                * sum(document.size_bytes() for document in share)
                / 1024.0
            )
            finish = max(finish, node.run(cost, after, label="ingest-batch"))
        return stamped, shares, finish

    def lookup(self, doc_id: str) -> Optional[Document]:
        """Cluster-wide point lookup of the latest *live* version (a
        tombstoned document answers None, like one never stored)."""
        for node in self.data_nodes:
            assert node.store is not None
            if node.store.contains(doc_id):
                return node.store.lookup(doc_id)
        return None

    def scan_all(self) -> Iterator[Document]:
        """Iterate every live document across all data nodes."""
        for node in self.data_nodes:
            assert node.store is not None
            yield from node.store.scan()

    def scan_all_batches(self, batch_size: int = 256) -> Iterator[List[Document]]:
        """Like :meth:`scan_all`, but in fixed-size document batches
        (same node order, so row order matches the flat scan)."""
        for node in self.data_nodes:
            assert node.store is not None
            yield from node.store.scan_batches(batch_size)

    def scan_all_view_batches(self, view, batch_size: int = 256):
        """Cluster-wide native columnar scan of *view*: still-encoded
        :class:`~repro.exec.batch.ColumnBatch`\\ es off every data node's
        column pages, in :attr:`data_nodes` order (so row order matches
        :meth:`scan_all` filtered through the view).  Returns ``None``
        when the view cannot be answered columnar."""
        produced = []
        for node in self.data_nodes:
            assert node.store is not None
            batches = node.store.scan_view_batches(view, batch_size)
            if batches is None:
                return None
            produced.append(batches)

        def chained() -> Iterator:
            for batches in produced:
                yield from batches

        return chained()

    @property
    def doc_count(self) -> int:
        return sum(n.store.doc_count for n in self.data_nodes if n.store)

    @property
    def live_doc_count(self) -> int:
        """Documents whose head version is live, across live data nodes —
        exactly the population :meth:`scan_all` yields."""
        return sum(n.store.live_doc_count for n in self.data_nodes if n.store)

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------
    def makespan(self) -> float:
        """Latest finish time across all node timelines."""
        return max((n.available_at for n in self._nodes.values()), default=0.0)

    def reset_timelines(self) -> None:
        for node in self._nodes.values():
            node.reset_timeline()
        self.network.reset_stats()
