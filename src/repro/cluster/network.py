"""Simulated interconnect: latency/bandwidth cost model + accounting.

The reproduction substitutes IBM's racks with a cost-accounting
simulator (see DESIGN.md).  Every transfer between two nodes charges
``latency_ms + bytes / bandwidth`` of simulated time and is tallied, so
experiments can report both makespan and bytes-on-the-wire — the two
quantities the paper's pushdown and scale-out arguments are about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

#: Commodity low-latency network defaults (paper Section 1: "commodity
#: low-latency networks").  Bandwidth is bytes per simulated millisecond.
DEFAULT_LATENCY_MS = 0.1
DEFAULT_BANDWIDTH_BYTES_PER_MS = 125_000.0  # ~1 Gbit/s


@dataclass
class NetworkStats:
    messages: int = 0
    bytes_sent: int = 0
    total_transfer_ms: float = 0.0


class Network:
    """Point-to-point transfer cost model.

    Local "transfers" (same node) are free: pushdown wins precisely
    because work co-located with data never touches the wire.
    """

    def __init__(
        self,
        latency_ms: float = DEFAULT_LATENCY_MS,
        bandwidth: float = DEFAULT_BANDWIDTH_BYTES_PER_MS,
    ) -> None:
        if latency_ms < 0:
            raise ValueError("latency cannot be negative")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.latency_ms = latency_ms
        self.bandwidth = bandwidth
        self.stats = NetworkStats()
        self._pair_bytes: Dict[Tuple[str, str], int] = {}

    def transfer_cost_ms(self, nbytes: int, src: str, dst: str) -> float:
        """Simulated milliseconds to move *nbytes* from *src* to *dst*."""
        if nbytes < 0:
            raise ValueError("cannot transfer negative bytes")
        if src == dst:
            return 0.0
        return self.latency_ms + nbytes / self.bandwidth

    def transfer(self, nbytes: int, src: str, dst: str) -> float:
        """Account a transfer and return its cost in simulated ms."""
        cost = self.transfer_cost_ms(nbytes, src, dst)
        if src != dst:
            self.stats.messages += 1
            self.stats.bytes_sent += nbytes
            self.stats.total_transfer_ms += cost
            key = (src, dst)
            self._pair_bytes[key] = self._pair_bytes.get(key, 0) + nbytes
        return cost

    def bytes_between(self, src: str, dst: str) -> int:
        return self._pair_bytes.get((src, dst), 0)

    def reset_stats(self) -> None:
        self.stats = NetworkStats()
        self._pair_bytes.clear()
