"""Simulated interconnect: latency/bandwidth cost model + accounting.

The reproduction substitutes IBM's racks with a cost-accounting
simulator (see DESIGN.md).  Every transfer between two nodes charges
``latency_ms + bytes / bandwidth`` of simulated time and is tallied, so
experiments can report both makespan and bytes-on-the-wire — the two
quantities the paper's pushdown and scale-out arguments are about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Set, Tuple

#: Commodity low-latency network defaults (paper Section 1: "commodity
#: low-latency networks").  Bandwidth is bytes per simulated millisecond.
DEFAULT_LATENCY_MS = 0.1
DEFAULT_BANDWIDTH_BYTES_PER_MS = 125_000.0  # ~1 Gbit/s


class PartitionError(RuntimeError):
    """A transfer was attempted across a partitioned link.

    Callers on retry-capable paths (the executor's gather/update stages,
    the scheduler's candidate scoring) catch this and back off or route
    around; everything else propagates it as the hard fault it is.
    """

    def __init__(self, src: str, dst: str) -> None:
        super().__init__(f"link {src} <-> {dst} is partitioned")
        self.src = src
        self.dst = dst


@dataclass
class NetworkStats:
    messages: int = 0
    bytes_sent: int = 0
    total_transfer_ms: float = 0.0
    drops: int = 0  # messages refused by a partitioned link


class Network:
    """Point-to-point transfer cost model.

    Local "transfers" (same node) are free: pushdown wins precisely
    because work co-located with data never touches the wire.
    """

    def __init__(
        self,
        latency_ms: float = DEFAULT_LATENCY_MS,
        bandwidth: float = DEFAULT_BANDWIDTH_BYTES_PER_MS,
    ) -> None:
        if latency_ms < 0:
            raise ValueError("latency cannot be negative")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.latency_ms = latency_ms
        self.bandwidth = bandwidth
        self.stats = NetworkStats()
        self._pair_bytes: Dict[Tuple[str, str], int] = {}
        # Chaos state: severed links and per-node bandwidth degradation.
        self._partitions: Set[FrozenSet[str]] = set()
        self._node_bw_factor: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # chaos hooks: partitions and degraded endpoints
    # ------------------------------------------------------------------
    def partition(self, a: str, b: str) -> None:
        """Sever the (bidirectional) link between *a* and *b*."""
        if a == b:
            raise ValueError("cannot partition a node from itself")
        self._partitions.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        self._partitions.discard(frozenset((a, b)))

    def heal_all(self) -> None:
        self._partitions.clear()

    def is_partitioned(self, src: str, dst: str) -> bool:
        return src != dst and frozenset((src, dst)) in self._partitions

    def degrade_node(self, node_id: str, factor: float) -> None:
        """All links touching *node_id* run at *factor* of base bandwidth."""
        if not 0.0 < factor <= 1.0:
            raise ValueError("bandwidth factor must be in (0, 1]")
        self._node_bw_factor[node_id] = factor

    def restore_node(self, node_id: str) -> None:
        self._node_bw_factor.pop(node_id, None)

    def _effective_bandwidth(self, src: str, dst: str) -> float:
        factor = min(
            self._node_bw_factor.get(src, 1.0), self._node_bw_factor.get(dst, 1.0)
        )
        return self.bandwidth * factor

    # ------------------------------------------------------------------
    def transfer_cost_ms(self, nbytes: int, src: str, dst: str) -> float:
        """Simulated milliseconds to move *nbytes* from *src* to *dst*."""
        if nbytes < 0:
            raise ValueError("cannot transfer negative bytes")
        if src == dst:
            return 0.0
        if self.is_partitioned(src, dst):
            raise PartitionError(src, dst)
        return self.latency_ms + nbytes / self._effective_bandwidth(src, dst)

    def transfer(self, nbytes: int, src: str, dst: str) -> float:
        """Account a transfer and return its cost in simulated ms.

        A transfer across a partitioned link counts a drop and raises
        :class:`PartitionError` — the message never arrives.
        """
        if src != dst and self.is_partitioned(src, dst):
            self.stats.drops += 1
            raise PartitionError(src, dst)
        cost = self.transfer_cost_ms(nbytes, src, dst)
        if src != dst:
            self.stats.messages += 1
            self.stats.bytes_sent += nbytes
            self.stats.total_transfer_ms += cost
            key = (src, dst)
            self._pair_bytes[key] = self._pair_bytes.get(key, 0) + nbytes
        return cost

    def bytes_between(self, src: str, dst: str) -> int:
        return self._pair_bytes.get((src, dst), 0)

    def reset_stats(self) -> None:
        self.stats = NetworkStats()
        self._pair_bytes.clear()

    @property
    def partitioned_links(self) -> int:
        return len(self._partitions)
