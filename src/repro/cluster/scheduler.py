"""Operator scheduling (paper Section 3.3).

"For better resource utilization, each operation could be executed on any
of the node types.  However, the scheduler assigns operators to compute
nodes based on which operators execute more efficiently — or with greater
scalability — on a particular node type, communication pattern of the
operator and the availability of resources within the system.  Because
Impliance is an appliance, it knows about and can model all of its
constituent operators and compute nodes, so it can make informed
scheduling decisions."

:class:`OperatorScheduler` implements exactly that decision: for one
operator with an estimated cost and a set of input locations, it scores
every live node by *expected completion time* — queueing delay (the
node's timeline), execution speed (node speed × operator affinity), and
the cost of moving the inputs to it — and picks the earliest finisher.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Set, Tuple

from repro.cluster.network import PartitionError
from repro.cluster.node import NodeKind, SimNode
from repro.cluster.topology import ImplianceCluster


@dataclass(frozen=True)
class PlacementDecision:
    """Where an operator should run, and why."""

    node_id: str
    expected_finish_ms: float
    queue_delay_ms: float
    transfer_ms: float
    execute_ms: float


class OperatorScheduler:
    """Completion-time-based operator placement over a cluster."""

    def __init__(self, cluster: ImplianceCluster) -> None:
        self.cluster = cluster
        self.decisions: List[Tuple[str, PlacementDecision]] = []
        #: Chaos accounting: re-placements after a target died mid-flight,
        #: and candidates skipped because a partition cut them off.
        self.retries = 0
        self.unreachable_skips = 0

    # ------------------------------------------------------------------
    def candidates(
        self,
        operator: str,
        kinds: Optional[Sequence[NodeKind]] = None,
        exclude: Optional[Set[str]] = None,
    ) -> List[SimNode]:
        """Live nodes eligible to host *operator* (all flavors by
        default — "each operation could be executed on any node type").
        *exclude* drops named nodes (retry-after-failure re-placement)."""
        nodes = [n for n in self.cluster.nodes() if n.alive]
        if kinds is not None:
            allowed = set(kinds)
            nodes = [n for n in nodes if n.kind in allowed]
        if exclude:
            nodes = [n for n in nodes if n.node_id not in exclude]
        return nodes

    def score(
        self,
        node: SimNode,
        operator: str,
        cost_ms: float,
        input_bytes: Mapping[str, int],
        ready_at: float,
    ) -> PlacementDecision:
        """Expected completion time of running the operator on *node*.

        A node cut off from any input by a partition scores infinite —
        work cannot reach it, so placement routes around the fault.
        """
        transfer = 0.0
        try:
            for source, nbytes in input_bytes.items():
                transfer = max(
                    transfer,
                    self.cluster.network.transfer_cost_ms(nbytes, source, node.node_id),
                )
        except PartitionError:
            return PlacementDecision(
                node_id=node.node_id,
                expected_finish_ms=math.inf,
                queue_delay_ms=0.0,
                transfer_ms=math.inf,
                execute_ms=0.0,
            )
        queue_delay = max(0.0, node.available_at - ready_at)
        execute = node.estimate(cost_ms, operator)
        return PlacementDecision(
            node_id=node.node_id,
            expected_finish_ms=ready_at + queue_delay + transfer + execute,
            queue_delay_ms=queue_delay,
            transfer_ms=transfer,
            execute_ms=execute,
        )

    def place(
        self,
        operator: str,
        cost_ms: float,
        input_bytes: Optional[Mapping[str, int]] = None,
        ready_at: float = 0.0,
        kinds: Optional[Sequence[NodeKind]] = None,
        exclude: Optional[Set[str]] = None,
    ) -> PlacementDecision:
        """Choose the node with the earliest expected completion.

        Ties break deterministically by node id.  Unreachable candidates
        (partitioned off from an input) are skipped and counted.  The
        decision is logged for inspection (schedulers must be
        explainable).
        """
        nodes = self.candidates(operator, kinds, exclude)
        if not nodes:
            raise RuntimeError("no live nodes available for scheduling")
        inputs = dict(input_bytes or {})
        best: Optional[PlacementDecision] = None
        for node in sorted(nodes, key=lambda n: n.node_id):
            decision = self.score(node, operator, cost_ms, inputs, ready_at)
            if math.isinf(decision.expected_finish_ms):
                self.unreachable_skips += 1
                continue
            if best is None or decision.expected_finish_ms < best.expected_finish_ms:
                best = decision
        if best is None:
            raise RuntimeError(
                "no reachable nodes available for scheduling (partitioned?)"
            )
        self.decisions.append((operator, best))
        return best

    def replace(
        self,
        operator: str,
        cost_ms: float,
        failed: Set[str],
        input_bytes: Optional[Mapping[str, int]] = None,
        ready_at: float = 0.0,
        kinds: Optional[Sequence[NodeKind]] = None,
    ) -> PlacementDecision:
        """Re-place an operator after its chosen node failed mid-flight.

        The executor's retry path: same scoring, minus the dead nodes,
        counted as a retry so chaos benches can report re-placements.
        """
        self.retries += 1
        return self.place(
            operator,
            cost_ms,
            input_bytes=input_bytes,
            ready_at=ready_at,
            kinds=kinds,
            exclude=failed,
        )

    def node_for(self, decision: PlacementDecision) -> SimNode:
        return self.cluster.node(decision.node_id)

    # ------------------------------------------------------------------
    def explain(self, last: int = 10) -> List[str]:
        """Human-readable recent decisions (the informed-scheduling
        audit trail the appliance can expose)."""
        lines = []
        for operator, decision in self.decisions[-last:]:
            lines.append(
                f"{operator} -> {decision.node_id} "
                f"(finish={decision.expected_finish_ms:.3f}ms: "
                f"queue={decision.queue_delay_ms:.3f} "
                f"xfer={decision.transfer_ms:.3f} "
                f"exec={decision.execute_ms:.3f})"
            )
        return lines
