"""Simulated nodes: the three topological flavors of Figure 3.

"Each Impliance instance consists of a number of nodes, topologically
differentiated into three flavors, each optimized for a particular style
of computation ... but each supporting the same execution environment."

A node is a cost-accounting execution resource: work is charged in
simulated milliseconds against a per-node timeline (``available_at``), so
a set of nodes executing in parallel yields a makespan.  Data nodes also
own a document store and its indexes; cluster nodes carry consistency-
group state; grid nodes are stateless compute.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.index.manager import IndexManager
from repro.storage.store import DocumentStore
from repro.util import LogicalClock


class NodeKind(enum.Enum):
    """The three node flavors and the computation style each optimizes."""

    DATA = "data"        # owns storage; best at local scans/search
    GRID = "grid"        # stateless analytics; lowest cost per cycle
    CLUSTER = "cluster"  # consistent locking/caching for small updates

    @property
    def default_speed(self) -> float:
        """Relative CPU speed factor (>1 is faster).

        Grid nodes "have the lowest cost per cycle" (Section 3.3): for a
        fixed budget the appliance packs more compute into them, modeled
        as a higher speed factor for pure computation.  Data nodes are
        "sized to balance computing capability and I/O bandwidth".
        """
        return {"data": 1.0, "grid": 1.5, "cluster": 1.0}[self.value]


#: Relative efficiency of running an operator class on each node kind.
#: 1.0 = native; lower = the flavor is a poor host for that work.
#: Encodes Section 3.3's "the scheduler assigns operators to compute
#: nodes based on which operators execute more efficiently ... on a
#: particular node type".
OPERATOR_AFFINITY: Dict[str, Dict[NodeKind, float]] = {
    "scan": {NodeKind.DATA: 1.0, NodeKind.GRID: 0.4, NodeKind.CLUSTER: 0.5},
    "search": {NodeKind.DATA: 1.0, NodeKind.GRID: 0.4, NodeKind.CLUSTER: 0.5},
    "filter": {NodeKind.DATA: 1.0, NodeKind.GRID: 1.0, NodeKind.CLUSTER: 0.8},
    "join": {NodeKind.DATA: 0.6, NodeKind.GRID: 1.0, NodeKind.CLUSTER: 0.6},
    "sort": {NodeKind.DATA: 0.6, NodeKind.GRID: 1.0, NodeKind.CLUSTER: 0.6},
    "aggregate": {NodeKind.DATA: 0.7, NodeKind.GRID: 1.0, NodeKind.CLUSTER: 0.6},
    "annotate": {NodeKind.DATA: 0.9, NodeKind.GRID: 1.0, NodeKind.CLUSTER: 0.5},
    "update": {NodeKind.DATA: 0.5, NodeKind.GRID: 0.3, NodeKind.CLUSTER: 1.0},
    "lock": {NodeKind.DATA: 0.4, NodeKind.GRID: 0.2, NodeKind.CLUSTER: 1.0},
}


@dataclass
class WorkRecord:
    """One unit of charged work, for the node's execution log."""

    label: str
    start_ms: float
    end_ms: float

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


class SimNode:
    """One simulated node with a work timeline.

    ``run(cost_ms, after)`` charges *cost_ms* of nominal work scaled by
    the node's speed, starting no earlier than *after* and no earlier
    than the node's previous work finished.  The return value is the
    finish time — callers chain these to build dataflow schedules.
    """

    def __init__(
        self,
        node_id: str,
        kind: NodeKind,
        speed: Optional[float] = None,
        store_clock: Optional[LogicalClock] = None,
        buffer_capacity: int = 256,
    ) -> None:
        if speed is not None and speed <= 0:
            raise ValueError("speed must be positive")
        self.node_id = node_id
        self.kind = kind
        self.speed = speed if speed is not None else kind.default_speed
        self._base_speed = self.speed
        self.available_at = 0.0
        self.busy_ms = 0.0
        self.log: List[WorkRecord] = []
        self.alive = True
        # Telemetry hook: None (the default) keeps run() at zero
        # observability overhead; the cluster attaches an enabled
        # Telemetry here (see ImplianceCluster.attach_telemetry).
        self.telemetry = None
        # Data nodes own a store + local indexes; others have none.
        self.store: Optional[DocumentStore] = None
        self.indexes: Optional[IndexManager] = None
        if kind is NodeKind.DATA:
            self.store = DocumentStore(clock=store_clock, buffer_capacity=buffer_capacity)
            self.indexes = IndexManager(self.store)

    # ------------------------------------------------------------------
    def efficiency(self, operator: str) -> float:
        """Effective speed of this node for *operator*."""
        affinity = OPERATOR_AFFINITY.get(operator, {}).get(self.kind, 1.0)
        return self.speed * affinity

    def run(self, cost_ms: float, after: float = 0.0, label: str = "work",
            operator: Optional[str] = None) -> float:
        """Charge work to this node's timeline; return the finish time."""
        if not self.alive:
            raise RuntimeError(f"node {self.node_id} is dead")
        if cost_ms < 0:
            raise ValueError("work cost cannot be negative")
        rate = self.efficiency(operator) if operator else self.speed
        start = max(self.available_at, after)
        duration = cost_ms / rate
        end = start + duration
        self.available_at = end
        self.busy_ms += duration
        self.log.append(WorkRecord(label, start, end))
        if self.telemetry is not None:
            self.telemetry.on_node_work(
                self.node_id, self.kind.value, operator or label, duration
            )
        return end

    def estimate(self, cost_ms: float, operator: Optional[str] = None) -> float:
        """Duration this node would take for *cost_ms*, without charging."""
        rate = self.efficiency(operator) if operator else self.speed
        return cost_ms / rate

    def reset_timeline(self) -> None:
        """Clear charged work (between benchmark repetitions)."""
        self.available_at = 0.0
        self.busy_ms = 0.0
        self.log.clear()

    def fail(self) -> None:
        self.alive = False

    def recover(self) -> None:
        self.alive = True

    # ------------------------------------------------------------------
    # chaos hooks: degraded ("slow") nodes
    # ------------------------------------------------------------------
    def degrade(self, factor: float) -> None:
        """Run at *factor* of base speed (a slow/overheating node)."""
        if not 0.0 < factor <= 1.0:
            raise ValueError("degrade factor must be in (0, 1]")
        self.speed = self._base_speed * factor

    def restore_speed(self) -> None:
        self.speed = self._base_speed

    @property
    def degraded(self) -> bool:
        return self.speed < self._base_speed

    @property
    def slowdown(self) -> float:
        """How much slower than base this node runs (1.0 = healthy)."""
        if self.speed <= 0.0:
            return float("inf")
        return self._base_speed / self.speed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimNode({self.node_id}, {self.kind.value}, speed={self.speed})"
