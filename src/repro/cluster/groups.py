"""Consistency groups: the cluster-node coordination substrate.

"Cluster nodes are responsible for making consistent locking and caching
decisions on data within data consistency groups.  Such nodes are good at
scalably performing many small consistent updates over a large set of
data, but being a part of a consistency group requires overhead for
heartbeats and for reacting to nodes joining or leaving the group."
(Section 3.3)

The group charges that overhead explicitly: heartbeats cost network
messages per interval, membership changes cost a view-change round, and
every lock acquisition is serialized through the key's owner node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cluster.network import Network, PartitionError
from repro.cluster.node import SimNode
from repro.util import stable_hash

#: Simulated cost of processing one heartbeat message.
HEARTBEAT_CPU_MS = 0.01
#: Size of a heartbeat message on the wire.
HEARTBEAT_BYTES = 64
#: CPU cost of a view change (joining/leaving member) per member.
VIEW_CHANGE_CPU_MS = 1.0
#: CPU cost of one lock acquire/release on the owning node.
LOCK_CPU_MS = 0.02
#: Bytes exchanged for one lock request + grant.
LOCK_BYTES = 128


class LockConflictError(Exception):
    """Raised when a lock is requested while held by another owner."""


@dataclass
class GroupStats:
    heartbeats_sent: int = 0
    heartbeats_missed: int = 0  # dropped by a partitioned link
    heartbeat_ms: float = 0.0
    view_changes: int = 0
    locks_granted: int = 0
    lock_conflicts: int = 0


class ConsistencyGroup:
    """A set of cluster nodes jointly owning a consistent key space.

    Keys are hash-partitioned across members; the owner serializes lock
    traffic for its keys.  Heartbeat rounds model the fixed cost of
    membership: each member messages every other member once per round.
    """

    def __init__(self, group_id: str, members: List[SimNode], network: Network) -> None:
        if not members:
            raise ValueError("a consistency group needs at least one member")
        self.group_id = group_id
        self._members: List[SimNode] = list(members)
        self._network = network
        self._locks: Dict[str, str] = {}  # key -> holder token
        self.stats = GroupStats()

    # ------------------------------------------------------------------
    @property
    def members(self) -> List[SimNode]:
        return list(self._members)

    @property
    def size(self) -> int:
        return len(self._members)

    def owner_of(self, key: str) -> SimNode:
        """The member responsible for serializing *key*."""
        live = [m for m in self._members if m.alive]
        if not live:
            raise RuntimeError(f"group {self.group_id} has no live members")
        return live[stable_hash(key, len(live))]

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def join(self, node: SimNode, after: float = 0.0) -> float:
        """Add a member; charges a view change to every member."""
        if node in self._members:
            raise ValueError(f"{node.node_id} already in group {self.group_id}")
        self._members.append(node)
        return self._view_change(after)

    def leave(self, node: SimNode, after: float = 0.0) -> float:
        if node not in self._members:
            raise ValueError(f"{node.node_id} not in group {self.group_id}")
        if len(self._members) == 1:
            raise ValueError("cannot empty a consistency group")
        self._members.remove(node)
        # Locks whose holder routing changed are conservatively released.
        self._locks = {
            key: holder
            for key, holder in self._locks.items()
            if self.owner_of(key).alive
        }
        return self._view_change(after)

    def _view_change(self, after: float) -> float:
        self.stats.view_changes += 1
        finish = after
        for member in self._members:
            if member.alive:
                finish = max(
                    finish,
                    member.run(VIEW_CHANGE_CPU_MS, after, label="view-change"),
                )
        return finish

    # ------------------------------------------------------------------
    # heartbeats
    # ------------------------------------------------------------------
    def heartbeat_round(self, after: float = 0.0) -> float:
        """One all-pairs heartbeat round; returns its finish time.

        Cost grows quadratically with group size — the overhead the paper
        warns about, measured by the FIG3 benchmark's group-size sweep.
        """
        finish = after
        live = [m for m in self._members if m.alive]
        for sender in live:
            for receiver in live:
                if sender is receiver:
                    continue
                try:
                    wire = self._network.transfer(
                        HEARTBEAT_BYTES, sender.node_id, receiver.node_id
                    )
                except PartitionError:
                    # The round continues; missed beats are how a real
                    # group detects the partition in the first place.
                    self.stats.heartbeats_missed += 1
                    continue
                end = receiver.run(
                    HEARTBEAT_CPU_MS, after + wire, label="heartbeat"
                )
                finish = max(finish, end)
                self.stats.heartbeats_sent += 1
        self.stats.heartbeat_ms += max(0.0, finish - after)
        return finish

    # ------------------------------------------------------------------
    # locking
    # ------------------------------------------------------------------
    def acquire(self, key: str, holder: str, requester_id: str, after: float = 0.0) -> float:
        """Acquire *key* for *holder*; returns grant time.

        Re-entrant for the same holder.  Conflicting acquisition raises
        :class:`LockConflictError` — the caller (the update operator)
        retries or aborts.
        """
        current = self._locks.get(key)
        if current is not None and current != holder:
            self.stats.lock_conflicts += 1
            raise LockConflictError(f"{key!r} held by {current!r}")
        owner = self.owner_of(key)
        wire = self._network.transfer(LOCK_BYTES, requester_id, owner.node_id)
        granted = owner.run(LOCK_CPU_MS, after + wire, label="lock", operator="lock")
        self._locks[key] = holder
        self.stats.locks_granted += 1
        return granted

    def release(self, key: str, holder: str) -> None:
        current = self._locks.get(key)
        if current is None:
            return
        if current != holder:
            raise LockConflictError(f"{key!r} held by {current!r}, not {holder!r}")
        del self._locks[key]

    def held(self, key: str) -> Optional[str]:
        return self._locks.get(key)

    @property
    def lock_count(self) -> int:
        return len(self._locks)
