"""Physical operators: the row vocabulary and its vectorized twins.

The paper argues for "a simple planner that allows only a few limited
choices of the underlying physical operators" (Section 3.3); this module
is that limited operator vocabulary.  Two executions of each operator
exist:

* the original iterator-style functions over plain dict rows (kept as
  the compatibility edge and the legacy engine), and
* ``*_batches`` variants that operate on :class:`~repro.exec.batch.
  ColumnBatch` streams batch-at-a-time — the vectorized hot path the
  query engine and the distributed executor now run on.

Both keep row/batch statistics so the executor can charge simulated cost
for the work they actually did, and both produce *identical* rows — the
cross-engine property tests depend on it.

Aggregation functions intentionally include the type guards motivated in
Section 2.2 — summing a column that is not numeric raises instead of
producing "averaged phone numbers".
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exec.batch import ColumnBatch
from repro.model.values import classify_value, coerce_numeric

Row = Dict[str, Any]
Predicate = Callable[[Row], bool]

#: Vectorized predicate: batch → indices of the selected rows, in order.
BatchSelector = Callable[[ColumnBatch], Sequence[int]]


@dataclass
class OperatorStats:
    rows_in: int = 0
    rows_out: int = 0
    batches_in: int = 0
    batches_out: int = 0


class AggregationTypeError(TypeError):
    """Raised when a numeric aggregate is applied to non-numeric values."""


def merge_joined_row(joined: Row, match: Row) -> Row:
    """Merge *match* (the other join side) into *joined*, in place.

    Colliding columns keep the left value and surface the right value
    under an ``r_``-prefixed name.  The rename itself is collision-safe:
    if the left row already carries ``r_<col>`` (e.g. from an earlier
    join) with a different value, the prefix stacks (``r_r_<col>``)
    instead of silently clobbering.
    """
    for key, value in match.items():
        if key in joined and joined[key] != value:
            renamed = f"r_{key}"
            while renamed in joined and joined[renamed] != value:
                renamed = f"r_{renamed}"
            joined[renamed] = value
        else:
            joined[key] = value
    return joined


def filter_rows(rows: Iterable[Row], predicate: Predicate, stats: Optional[OperatorStats] = None) -> Iterator[Row]:
    for row in rows:
        if stats is not None:
            stats.rows_in += 1
        if predicate(row):
            if stats is not None:
                stats.rows_out += 1
            yield row


def project_rows(rows: Iterable[Row], columns: Sequence[str]) -> Iterator[Row]:
    columns = list(columns)
    for row in rows:
        yield {c: row.get(c) for c in columns}


def hash_join(
    left: Iterable[Row],
    right: Iterable[Row],
    left_key: str,
    right_key: str,
    stats: Optional[OperatorStats] = None,
) -> Iterator[Row]:
    """Build on *right*, probe with *left*; joined rows merge both sides
    (right-side columns prefixed on collision)."""
    table: Dict[Any, List[Row]] = {}
    build_rows = 0
    for row in right:
        build_rows += 1
        table.setdefault(row.get(right_key), []).append(row)
    table.pop(None, None)  # null keys never join
    if stats is not None:
        stats.rows_in += build_rows
    for row in left:
        if stats is not None:
            stats.rows_in += 1
        for match in table.get(row.get(left_key), ()):
            joined = merge_joined_row(dict(row), match)
            if stats is not None:
                stats.rows_out += 1
            yield joined


def indexed_nl_join(
    left: Iterable[Row],
    left_key: str,
    probe: Callable[[Any], List[Row]],
    stats: Optional[OperatorStats] = None,
) -> Iterator[Row]:
    """Indexed nested-loop join: probe an index for each left row.

    "Given a keyword-search interface that requires only the top-k
    results, indexed nested-loop joins may always be the preferred join
    method" (Section 3.3) — because the left input is tiny, probes beat
    building a hash table over the whole right side.
    """
    for row in left:
        if stats is not None:
            stats.rows_in += 1
        key = row.get(left_key)
        if key is None:
            continue
        for match in probe(key):
            joined = merge_joined_row(dict(row), match)
            if stats is not None:
                stats.rows_out += 1
            yield joined


def sort_rows(
    rows: Iterable[Row],
    keys: Sequence[str],
    descending: bool = False,
    stats: Optional[OperatorStats] = None,
) -> List[Row]:
    materialized = list(rows)
    if stats is not None:
        stats.rows_in += len(materialized)
        stats.rows_out += len(materialized)

    def sort_key(row: Row):
        return tuple(_orderable(row.get(k)) for k in keys)

    materialized.sort(key=sort_key, reverse=descending)
    return materialized


def _orderable(value: Any) -> Tuple[int, Any]:
    """Total order over mixed None/number/string values."""
    if value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    return (2, str(value))


def top_k(
    rows: Iterable[Row],
    k: int,
    key: str,
    descending: bool = True,
    stats: Optional[OperatorStats] = None,
) -> List[Row]:
    """Heap-based top-k by one column (the retrieval-interface shape)."""
    if k < 1:
        raise ValueError("k must be >= 1")
    if stats is not None:
        rows = list(rows)
        stats.rows_in += len(rows)
    decorated = (( _orderable(row.get(key)), i, row) for i, row in enumerate(rows))
    if descending:
        selected = heapq.nlargest(k, decorated, key=lambda t: (t[0], -t[1]))
    else:
        selected = heapq.nsmallest(k, decorated, key=lambda t: (t[0], t[1]))
    if stats is not None:
        stats.rows_out += len(selected)
    return [row for _, _, row in selected]


# ----------------------------------------------------------------------
# aggregation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AggSpec:
    """One aggregate: output name, function, input column.

    ``func`` ∈ {count, sum, avg, min, max}.  ``column`` may be ``None``
    only for count.
    """

    name: str
    func: str
    column: Optional[str] = None

    def __post_init__(self) -> None:
        if self.func not in ("count", "sum", "avg", "min", "max"):
            raise ValueError(f"unknown aggregate function {self.func!r}")
        if self.func != "count" and self.column is None:
            raise ValueError(f"aggregate {self.func} needs a column")


class _AggState:
    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def update(self, value: Any) -> None:
        # SQL semantics: NULLs are invisible to count(col)/sum/avg/min/max
        # (a bare count(*) is handled by the caller, never through here).
        if value is None:
            return
        # Fast path for plain numbers — the vectorized engine funnels
        # millions of values through here, and classify_value's regex
        # machinery is only needed for strings (money/number literals).
        vtype = type(value)
        if vtype is int or vtype is float:
            number = float(value)
        else:
            if not classify_value(value).is_numeric:
                raise AggregationTypeError(
                    f"cannot aggregate non-numeric value {value!r}; "
                    "the semantic layer should have excluded this column"
                )
            number = coerce_numeric(value)
        self.count += 1
        self.total += number
        self.minimum = number if self.minimum is None else min(self.minimum, number)
        self.maximum = number if self.maximum is None else max(self.maximum, number)

    def result(self, func: str) -> Any:
        if func == "count":
            return self.count
        if func == "sum":
            return self.total
        if func == "avg":
            return self.total / self.count if self.count else None
        if func == "min":
            return self.minimum
        return self.maximum


def group_aggregate(
    rows: Iterable[Row],
    group_by: Sequence[str],
    aggs: Sequence[AggSpec],
    stats: Optional[OperatorStats] = None,
) -> List[Row]:
    """Hash group-by with the guarded aggregate functions."""
    group_by = list(group_by)
    states: Dict[Tuple, Dict[str, _AggState]] = {}
    key_rows: Dict[Tuple, Row] = {}
    for row in rows:
        if stats is not None:
            stats.rows_in += 1
        key = tuple(row.get(c) for c in group_by)
        if key not in states:
            states[key] = {a.name: _AggState() for a in aggs}
            key_rows[key] = {c: row.get(c) for c in group_by}
        bucket = states[key]
        for agg in aggs:
            if agg.func == "count" and agg.column is None:
                bucket[agg.name].count += 1
            else:
                bucket[agg.name].update(row.get(agg.column))
    output = []
    for key in sorted(states, key=lambda k: tuple(_orderable(v) for v in k)):
        out_row = dict(key_rows[key])
        for agg in aggs:
            out_row[agg.name] = states[key][agg.name].result(agg.func)
        output.append(out_row)
        if stats is not None:
            stats.rows_out += 1
    return output


def partial_aggregate(
    rows: Iterable[Row], group_by: Sequence[str], aggs: Sequence[AggSpec]
) -> List[Row]:
    """Local (per-data-node) pre-aggregation for pushdown.

    avg is decomposed into sum+count partials so the final merge is
    correct; the merge step is :func:`merge_partial_aggregates`.
    """
    decomposed: List[AggSpec] = []
    for agg in aggs:
        if agg.func == "avg":
            decomposed.append(AggSpec(f"__{agg.name}_sum", "sum", agg.column))
            decomposed.append(AggSpec(f"__{agg.name}_cnt", "count", agg.column))
        else:
            decomposed.append(agg)
    return group_aggregate(rows, group_by, decomposed)


def merge_partial_aggregates(
    partials: Iterable[Row], group_by: Sequence[str], aggs: Sequence[AggSpec]
) -> List[Row]:
    """Combine per-node partial aggregates into final results."""
    merge_specs: List[AggSpec] = []
    for agg in aggs:
        if agg.func == "avg":
            merge_specs.append(AggSpec(f"__{agg.name}_sum", "sum", f"__{agg.name}_sum"))
            merge_specs.append(AggSpec(f"__{agg.name}_cnt", "sum", f"__{agg.name}_cnt"))
        elif agg.func == "count":
            merge_specs.append(AggSpec(agg.name, "sum", agg.name))
        else:
            merge_specs.append(AggSpec(agg.name, agg.func, agg.name))
    merged = group_aggregate(partials, group_by, merge_specs)
    for row in merged:
        for agg in aggs:
            if agg.func == "avg":
                total = row.pop(f"__{agg.name}_sum")
                count = row.pop(f"__{agg.name}_cnt")
                row[agg.name] = total / count if count else None
            elif agg.func == "count":
                row[agg.name] = int(row[agg.name])
    return merged


# ----------------------------------------------------------------------
# vectorized (batch-at-a-time) operators
# ----------------------------------------------------------------------
def _note_batch_in(stats: Optional[OperatorStats], batch: ColumnBatch) -> None:
    if stats is not None:
        stats.batches_in += 1
        stats.rows_in += batch.length


def _note_batch_out(stats: Optional[OperatorStats], batch: ColumnBatch) -> None:
    if stats is not None:
        stats.batches_out += 1
        stats.rows_out += batch.length


def selector_from_predicate(predicate: Predicate) -> BatchSelector:
    """Adapt a dict-row predicate into a :data:`BatchSelector`.

    The generic fallback for callers without a column-wise predicate —
    it materializes rows, so prefer a native selector (e.g.
    ``Conjunction.selector``) on hot paths.
    """

    def select(batch: ColumnBatch) -> List[int]:
        return [i for i, row in enumerate(batch.to_rows()) if predicate(row)]

    return select


def filter_batches(
    batches: Iterable[ColumnBatch],
    selector: BatchSelector,
    stats: Optional[OperatorStats] = None,
) -> Iterator[ColumnBatch]:
    """Vectorized filter: *selector* picks surviving row indices per batch."""
    for batch in batches:
        _note_batch_in(stats, batch)
        indices = selector(batch)
        if not indices:
            continue
        out = batch if len(indices) == batch.length else batch.take(indices)
        _note_batch_out(stats, out)
        yield out


def project_batches(
    batches: Iterable[ColumnBatch],
    columns: Sequence[str],
    stats: Optional[OperatorStats] = None,
) -> Iterator[ColumnBatch]:
    """Vectorized projection — O(columns) per batch, not O(rows)."""
    columns = list(columns)
    for batch in batches:
        _note_batch_in(stats, batch)
        out = batch.select_columns(columns)
        _note_batch_out(stats, out)
        yield out


def hash_join_batches(
    probe_batches: Iterable[ColumnBatch],
    build_batches: Iterable[ColumnBatch],
    probe_key: str,
    build_key: str,
    stats: Optional[OperatorStats] = None,
) -> Iterator[ColumnBatch]:
    """Vectorized hash join: build on *build_batches*, probe batch-at-a-time.

    Key-column probing is columnar (non-matching probe rows are skipped
    without ever materializing a dict); only matching rows pay the
    row-merge that implements the collision-rename semantics.  Output
    rows are identical to :func:`hash_join` on the same inputs.
    """
    table: Dict[Any, List[Row]] = {}
    for batch in build_batches:
        _note_batch_in(stats, batch)
        keys = batch.column(build_key)
        rows = batch.to_rows()
        for key, row in zip(keys, rows):
            table.setdefault(key, []).append(row)
    table.pop(None, None)  # null keys never join
    for batch in probe_batches:
        _note_batch_in(stats, batch)
        keys = batch.column(probe_key)
        hits = [i for i, key in enumerate(keys) if key in table]
        if not hits:
            continue
        probe_rows = batch.take(hits).to_rows()
        joined_rows: List[Row] = []
        for i, row in zip(hits, probe_rows):
            for match in table[keys[i]]:
                joined_rows.append(merge_joined_row(dict(row), match))
        out = ColumnBatch.from_rows(joined_rows)
        _note_batch_out(stats, out)
        yield out


def hash_join_swapped_batches(
    probe_batches: Iterable[ColumnBatch],
    build_batches: Iterable[ColumnBatch],
    probe_key: str,
    build_key: str,
    stats: Optional[OperatorStats] = None,
) -> Iterator[ColumnBatch]:
    """Hash join with the build flipped onto the *probe* input.

    The re-optimizer splices this in when the probe side materialized far
    smaller than estimated: the hash table is built over the (already
    materialized) probe rows and the other side streams through it, so
    the expensive side pays the cheap per-row probe cost.  Output batches
    are byte-identical to :func:`hash_join_batches` on the same inputs —
    probe-batch-major, probe rows as the merge base, matches in build
    stream order — which is what lets a mid-query strategy switch keep
    already-planned result semantics.
    """
    probe_batches = list(probe_batches)
    table: Dict[Any, List[Tuple[int, int]]] = {}
    matches: List[Dict[int, List[Row]]] = []
    for bi, batch in enumerate(probe_batches):
        _note_batch_in(stats, batch)
        matches.append({})
        for ri, key in enumerate(batch.column(probe_key)):
            if key is None:
                continue
            table.setdefault(key, []).append((bi, ri))
    for batch in build_batches:
        _note_batch_in(stats, batch)
        keys = batch.column(build_key)
        rows = batch.to_rows()
        for key, row in zip(keys, rows):
            if key is None:
                continue
            for bi, ri in table.get(key, ()):
                matches[bi].setdefault(ri, []).append(row)
    for bi, batch in enumerate(probe_batches):
        hit_map = matches[bi]
        if not hit_map:
            continue
        hits = sorted(hit_map)
        probe_rows = batch.take(hits).to_rows()
        joined_rows: List[Row] = []
        for ri, row in zip(hits, probe_rows):
            for match in hit_map[ri]:
                joined_rows.append(merge_joined_row(dict(row), match))
        out = ColumnBatch.from_rows(joined_rows)
        _note_batch_out(stats, out)
        yield out


def sort_batches(
    batches: Iterable[ColumnBatch],
    keys: Sequence[str],
    descending: bool = False,
    stats: Optional[OperatorStats] = None,
) -> ColumnBatch:
    """Vectorized sort: one output batch, same ordering as :func:`sort_rows`."""
    merged = ColumnBatch.concat(list(batches))
    if stats is not None:
        stats.batches_in += 1
        stats.rows_in += merged.length
    key_columns = [merged.column(k) for k in keys]
    order = sorted(
        range(merged.length),
        key=lambda i: tuple(_orderable(col[i]) for col in key_columns),
        reverse=descending,
    )
    out = merged.take(order)
    _note_batch_out(stats, out)
    return out


def top_k_batches(
    batches: Iterable[ColumnBatch],
    k: int,
    key: str,
    descending: bool = True,
    stats: Optional[OperatorStats] = None,
) -> ColumnBatch:
    """Vectorized top-k: heap over (orderable, row-index) pairs only."""
    if k < 1:
        raise ValueError("k must be >= 1")
    merged = ColumnBatch.concat(list(batches))
    if stats is not None:
        stats.batches_in += 1
        stats.rows_in += merged.length
    values = merged.column(key)
    decorated = ((_orderable(v), i) for i, v in enumerate(values))
    if descending:
        selected = heapq.nlargest(k, decorated, key=lambda t: (t[0], -t[1]))
    else:
        selected = heapq.nsmallest(k, decorated, key=lambda t: (t[0], t[1]))
    out = merged.take([i for _, i in selected])
    _note_batch_out(stats, out)
    return out


class GroupAggregator:
    """Incremental vectorized hash group-by.

    The streaming core of :func:`group_aggregate_batches`, split out so
    compiled pipelines (:mod:`repro.query.compile`) can feed it batches
    — or just the surviving row *indices* of a fused filter, skipping the
    intermediate ``take()`` copy entirely.  Group values, aggregate
    results, and the sorted output order are identical to
    :func:`group_aggregate` regardless of how rows arrive.
    """

    __slots__ = ("group_by", "aggs", "_counting_star", "_states")

    def __init__(self, group_by: Sequence[str], aggs: Sequence[AggSpec]) -> None:
        self.group_by = list(group_by)
        self.aggs = list(aggs)
        self._counting_star = [a.column is None for a in self.aggs]
        self._states: Dict[Tuple, List[_AggState]] = {}

    def add_batch(self, batch: ColumnBatch, indices: Optional[Sequence[int]] = None) -> None:
        """Fold *batch* (or only the rows at *indices*) into the groups."""
        group_columns = [batch.column(c) for c in self.group_by]
        agg_columns = [
            None if star else batch.column(agg.column)
            for star, agg in zip(self._counting_star, self.aggs)
        ]
        rows: Iterable[int] = range(batch.length) if indices is None else indices
        states = self._states
        for i in rows:
            key = tuple(col[i] for col in group_columns)
            bucket = states.get(key)
            if bucket is None:
                bucket = states[key] = [_AggState() for _ in self.aggs]
            for state, column in zip(bucket, agg_columns):
                if column is None:
                    state.count += 1  # bare count(*) counts every row
                else:
                    state.update(column[i])

    def finish(self) -> ColumnBatch:
        ordered = sorted(self._states, key=lambda k: tuple(_orderable(v) for v in k))
        columns: Dict[str, List[Any]] = {
            name: [key[j] for key in ordered] for j, name in enumerate(self.group_by)
        }
        for j, agg in enumerate(self.aggs):
            columns[agg.name] = [self._states[key][j].result(agg.func) for key in ordered]
        return ColumnBatch(columns, len(ordered))


def group_aggregate_batches(
    batches: Iterable[ColumnBatch],
    group_by: Sequence[str],
    aggs: Sequence[AggSpec],
    stats: Optional[OperatorStats] = None,
) -> ColumnBatch:
    """Vectorized hash group-by: column access replaces per-row dicts.

    Produces the same groups, values, and (sorted) group order as
    :func:`group_aggregate`.
    """
    aggregator = GroupAggregator(group_by, aggs)
    for batch in batches:
        _note_batch_in(stats, batch)
        aggregator.add_batch(batch)
    out = aggregator.finish()
    _note_batch_out(stats, out)
    return out
