"""Physical row operators.

The paper argues for "a simple planner that allows only a few limited
choices of the underlying physical operators" (Section 3.3); this module
is that limited operator vocabulary.  Operators are iterator-style over
plain dict rows and keep row-count statistics so the executor can charge
simulated cost for the work they actually did.

Aggregation functions intentionally include the type guards motivated in
Section 2.2 — summing a column that is not numeric raises instead of
producing "averaged phone numbers".
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.model.values import classify_value, coerce_numeric

Row = Dict[str, Any]
Predicate = Callable[[Row], bool]


@dataclass
class OperatorStats:
    rows_in: int = 0
    rows_out: int = 0


class AggregationTypeError(TypeError):
    """Raised when a numeric aggregate is applied to non-numeric values."""


def filter_rows(rows: Iterable[Row], predicate: Predicate, stats: Optional[OperatorStats] = None) -> Iterator[Row]:
    for row in rows:
        if stats is not None:
            stats.rows_in += 1
        if predicate(row):
            if stats is not None:
                stats.rows_out += 1
            yield row


def project_rows(rows: Iterable[Row], columns: Sequence[str]) -> Iterator[Row]:
    columns = list(columns)
    for row in rows:
        yield {c: row.get(c) for c in columns}


def hash_join(
    left: Iterable[Row],
    right: Iterable[Row],
    left_key: str,
    right_key: str,
    stats: Optional[OperatorStats] = None,
) -> Iterator[Row]:
    """Build on *right*, probe with *left*; joined rows merge both sides
    (right-side columns prefixed on collision)."""
    table: Dict[Any, List[Row]] = {}
    build_rows = 0
    for row in right:
        build_rows += 1
        table.setdefault(row.get(right_key), []).append(row)
    table.pop(None, None)  # null keys never join
    if stats is not None:
        stats.rows_in += build_rows
    for row in left:
        if stats is not None:
            stats.rows_in += 1
        for match in table.get(row.get(left_key), ()):
            joined = dict(row)
            for key, value in match.items():
                if key in joined and joined[key] != value:
                    joined[f"r_{key}"] = value
                else:
                    joined[key] = value
            if stats is not None:
                stats.rows_out += 1
            yield joined


def indexed_nl_join(
    left: Iterable[Row],
    left_key: str,
    probe: Callable[[Any], List[Row]],
    stats: Optional[OperatorStats] = None,
) -> Iterator[Row]:
    """Indexed nested-loop join: probe an index for each left row.

    "Given a keyword-search interface that requires only the top-k
    results, indexed nested-loop joins may always be the preferred join
    method" (Section 3.3) — because the left input is tiny, probes beat
    building a hash table over the whole right side.
    """
    for row in left:
        if stats is not None:
            stats.rows_in += 1
        key = row.get(left_key)
        if key is None:
            continue
        for match in probe(key):
            joined = dict(row)
            for mkey, mvalue in match.items():
                if mkey in joined and joined[mkey] != mvalue:
                    joined[f"r_{mkey}"] = mvalue
                else:
                    joined[mkey] = mvalue
            if stats is not None:
                stats.rows_out += 1
            yield joined


def sort_rows(rows: Iterable[Row], keys: Sequence[str], descending: bool = False) -> List[Row]:
    materialized = list(rows)

    def sort_key(row: Row):
        return tuple(_orderable(row.get(k)) for k in keys)

    materialized.sort(key=sort_key, reverse=descending)
    return materialized


def _orderable(value: Any) -> Tuple[int, Any]:
    """Total order over mixed None/number/string values."""
    if value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    return (2, str(value))


def top_k(rows: Iterable[Row], k: int, key: str, descending: bool = True) -> List[Row]:
    """Heap-based top-k by one column (the retrieval-interface shape)."""
    if k < 1:
        raise ValueError("k must be >= 1")
    decorated = (( _orderable(row.get(key)), i, row) for i, row in enumerate(rows))
    if descending:
        selected = heapq.nlargest(k, decorated, key=lambda t: (t[0], -t[1]))
    else:
        selected = heapq.nsmallest(k, decorated, key=lambda t: (t[0], t[1]))
    return [row for _, _, row in selected]


# ----------------------------------------------------------------------
# aggregation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AggSpec:
    """One aggregate: output name, function, input column.

    ``func`` ∈ {count, sum, avg, min, max}.  ``column`` may be ``None``
    only for count.
    """

    name: str
    func: str
    column: Optional[str] = None

    def __post_init__(self) -> None:
        if self.func not in ("count", "sum", "avg", "min", "max"):
            raise ValueError(f"unknown aggregate function {self.func!r}")
        if self.func != "count" and self.column is None:
            raise ValueError(f"aggregate {self.func} needs a column")


class _AggState:
    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def update(self, value: Any) -> None:
        self.count += 1
        if value is None:
            return
        if not classify_value(value).is_numeric:
            raise AggregationTypeError(
                f"cannot aggregate non-numeric value {value!r}; "
                "the semantic layer should have excluded this column"
            )
        number = coerce_numeric(value)
        self.total += number
        self.minimum = number if self.minimum is None else min(self.minimum, number)
        self.maximum = number if self.maximum is None else max(self.maximum, number)

    def result(self, func: str) -> Any:
        if func == "count":
            return self.count
        if func == "sum":
            return self.total
        if func == "avg":
            return self.total / self.count if self.count else None
        if func == "min":
            return self.minimum
        return self.maximum


def group_aggregate(
    rows: Iterable[Row],
    group_by: Sequence[str],
    aggs: Sequence[AggSpec],
    stats: Optional[OperatorStats] = None,
) -> List[Row]:
    """Hash group-by with the guarded aggregate functions."""
    group_by = list(group_by)
    states: Dict[Tuple, Dict[str, _AggState]] = {}
    key_rows: Dict[Tuple, Row] = {}
    for row in rows:
        if stats is not None:
            stats.rows_in += 1
        key = tuple(row.get(c) for c in group_by)
        if key not in states:
            states[key] = {a.name: _AggState() for a in aggs}
            key_rows[key] = {c: row.get(c) for c in group_by}
        bucket = states[key]
        for agg in aggs:
            if agg.func == "count" and agg.column is None:
                bucket[agg.name].count += 1
            else:
                bucket[agg.name].update(row.get(agg.column))
    output = []
    for key in sorted(states, key=lambda k: tuple(_orderable(v) for v in k)):
        out_row = dict(key_rows[key])
        for agg in aggs:
            out_row[agg.name] = states[key][agg.name].result(agg.func)
        output.append(out_row)
        if stats is not None:
            stats.rows_out += 1
    return output


def partial_aggregate(
    rows: Iterable[Row], group_by: Sequence[str], aggs: Sequence[AggSpec]
) -> List[Row]:
    """Local (per-data-node) pre-aggregation for pushdown.

    avg is decomposed into sum+count partials so the final merge is
    correct; the merge step is :func:`merge_partial_aggregates`.
    """
    decomposed: List[AggSpec] = []
    for agg in aggs:
        if agg.func == "avg":
            decomposed.append(AggSpec(f"__{agg.name}_sum", "sum", agg.column))
            decomposed.append(AggSpec(f"__{agg.name}_cnt", "count", agg.column))
        else:
            decomposed.append(agg)
    return group_aggregate(rows, group_by, decomposed)


def merge_partial_aggregates(
    partials: Iterable[Row], group_by: Sequence[str], aggs: Sequence[AggSpec]
) -> List[Row]:
    """Combine per-node partial aggregates into final results."""
    merge_specs: List[AggSpec] = []
    for agg in aggs:
        if agg.func == "avg":
            merge_specs.append(AggSpec(f"__{agg.name}_sum", "sum", f"__{agg.name}_sum"))
            merge_specs.append(AggSpec(f"__{agg.name}_cnt", "sum", f"__{agg.name}_cnt"))
        elif agg.func == "count":
            merge_specs.append(AggSpec(agg.name, "sum", agg.name))
        else:
            merge_specs.append(AggSpec(agg.name, agg.func, agg.name))
    merged = group_aggregate(partials, group_by, merge_specs)
    for row in merged:
        for agg in aggs:
            if agg.func == "avg":
                total = row.pop(f"__{agg.name}_sum")
                count = row.pop(f"__{agg.name}_cnt")
                row[agg.name] = total / count if count else None
            elif agg.func == "count":
                row[agg.name] = int(row[agg.name])
    return merged
