"""Columnar execution batches (the vectorized hot path's currency).

The row engine interprets plans dict-row-at-a-time — the slowest possible
shape for Python, where every row pays dict construction, per-key hashing,
and per-row interpreter dispatch.  A :class:`ColumnBatch` is the standard
fix: a struct-of-arrays slice of an intermediate result (column name →
value list, one shared length), so operators pay their Python overhead
once per *batch* and loop over plain lists for the per-row work.

Batches are null-aware in two distinct senses:

* a ``None`` entry is a SQL NULL (present key, null value);
* the :data:`MISSING` sentinel marks a key that was *absent* from the
  originating dict row.  Joins produce ragged rows — ``r_<col>`` rename
  columns exist only on collision rows — and the batch representation
  must round-trip them exactly, or the vectorized engine would disagree
  with the row engine on join output.  ``to_rows`` omits MISSING entries;
  ``column`` reads them as None (matching ``row.get``).

The dict-row API stays at the edges: :func:`batches_from_rows` and
:func:`rows_from_batches` are the adapters the legacy operator functions
and ``QueryResult.rows`` sit on.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.model.values import MISSING, _Missing  # noqa: F401  (re-export home)
from repro.storage.encoding import EncodedColumn

Row = Dict[str, Any]

#: Default rows per batch.  Large enough to amortize per-batch dispatch,
#: small enough that intermediate columns stay cache- and memory-friendly.
DEFAULT_BATCH_SIZE = 1024


class ColumnBatch:
    """One struct-of-arrays slice of rows: column name → list of values.

    All columns share ``length``.  Columns never present in the batch read
    as all-None (like ``row.get`` on a dict row).  Construction does not
    copy the column lists — treat batches as immutable once built.
    """

    __slots__ = ("columns", "length")

    def __init__(self, columns: Dict[str, List[Any]], length: Optional[int] = None) -> None:
        self.columns = columns
        if length is None:
            length = len(next(iter(columns.values()))) if columns else 0
        self.length = length
        for name, values in columns.items():
            if len(values) != length:
                raise ValueError(
                    f"column {name!r} has {len(values)} values, batch length is {length}"
                )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, column_names: Sequence[str] = ()) -> "ColumnBatch":
        return cls({name: [] for name in column_names}, 0)

    @classmethod
    def from_rows(cls, rows: Sequence[Row]) -> "ColumnBatch":
        """Pivot dict rows into columns (first-seen column order).

        Keys absent from a given row are stored as :data:`MISSING`, so
        ragged join output survives the round trip through ``to_rows``.
        """
        names: List[str] = []
        seen = set()
        for row in rows:
            for key in row:
                if key not in seen:
                    seen.add(key)
                    names.append(key)
        columns: Dict[str, List[Any]] = {}
        for name in names:
            columns[name] = [row.get(name, MISSING) for row in rows]
        return cls(columns, len(rows))

    @classmethod
    def concat(cls, batches: Sequence["ColumnBatch"]) -> "ColumnBatch":
        """One batch holding every row of *batches*, in order."""
        batches = [b for b in batches if b.length]
        if not batches:
            return cls.empty()
        if len(batches) == 1:
            return batches[0]
        names: List[str] = []
        seen = set()
        for batch in batches:
            for name in batch.columns:
                if name not in seen:
                    seen.add(name)
                    names.append(name)
        columns: Dict[str, List[Any]] = {name: [] for name in names}
        for batch in batches:
            for name in names:
                values = batch.columns.get(name)
                if values is None:
                    columns[name].extend([MISSING] * batch.length)
                else:
                    columns[name].extend(values)
        return cls(columns, sum(b.length for b in batches))

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.length

    @property
    def column_names(self) -> List[str]:
        return list(self.columns)

    def column(self, name: str) -> List[Any]:
        """Values of *name*, reading MISSING/absent as None (``row.get``)."""
        values = self.columns.get(name)
        if values is None:
            return [None] * self.length
        if isinstance(values, EncodedColumn):
            values = values.decoded()
        for v in values:
            if v is MISSING:
                return [None if u is MISSING else u for u in values]
        return values

    def raw_column(self, name: str) -> Optional[List[Any]]:
        """The stored column list (may contain MISSING), or None if absent."""
        return self.columns.get(name)

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def take(self, indices: Sequence[int]) -> "ColumnBatch":
        """New batch with the rows at *indices* (in the given order).

        Encoded columns stay encoded: the gather happens on integer
        codes, so a filter over a compressed scan never decodes the
        columns the query doesn't touch.
        """
        columns = {
            name: (
                values.take(indices)
                if isinstance(values, EncodedColumn)
                else [values[i] for i in indices]
            )
            for name, values in self.columns.items()
        }
        return ColumnBatch(columns, len(indices))

    def head(self, n: int) -> "ColumnBatch":
        if n >= self.length:
            return self
        return ColumnBatch(
            {name: values[:n] for name, values in self.columns.items()}, n
        )

    def select_columns(self, names: Sequence[str]) -> "ColumnBatch":
        """Projection: keep *names* (absent ones become all-None columns)."""
        columns: Dict[str, List[Any]] = {}
        for name in names:
            values = self.columns.get(name)
            if values is None:
                columns[name] = [None] * self.length
            else:
                columns[name] = values
        return ColumnBatch(columns, self.length)

    def drop_column(self, name: str) -> "ColumnBatch":
        if name not in self.columns:
            return self
        columns = {k: v for k, v in self.columns.items() if k != name}
        return ColumnBatch(columns, self.length)

    # ------------------------------------------------------------------
    # row adapter edge
    # ------------------------------------------------------------------
    def to_rows(self) -> List[Row]:
        """Materialize dict rows (omitting MISSING entries)."""
        names = list(self.columns)
        cols = [self.columns[name] for name in names]
        ragged = any(any(v is MISSING for v in col) for col in cols)
        if not ragged:
            return [dict(zip(names, values)) for values in zip(*cols)] if names else [
                {} for _ in range(self.length)
            ]
        rows: List[Row] = []
        for i in range(self.length):
            rows.append(
                {name: col[i] for name, col in zip(names, cols) if col[i] is not MISSING}
            )
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColumnBatch({self.length} rows × {list(self.columns)})"


# ----------------------------------------------------------------------
# stream adapters
# ----------------------------------------------------------------------
def batches_from_rows(
    rows: Iterable[Row], batch_size: int = DEFAULT_BATCH_SIZE
) -> Iterator[ColumnBatch]:
    """Chunk dict rows into ColumnBatches of at most *batch_size* rows."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    pending: List[Row] = []
    for row in rows:
        pending.append(row)
        if len(pending) >= batch_size:
            yield ColumnBatch.from_rows(pending)
            pending = []
    if pending:
        yield ColumnBatch.from_rows(pending)


def batches_from_columns(
    columns: Dict[str, List[Any]],
    length: int,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> List[ColumnBatch]:
    """Slice accumulated full-length columns into fixed-size batches."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if length <= batch_size:
        return [ColumnBatch(columns, length)] if length else []
    return [
        ColumnBatch(
            {name: values[start : start + batch_size] for name, values in columns.items()},
            min(batch_size, length - start),
        )
        for start in range(0, length, batch_size)
    ]


def rows_from_batches(batches: Iterable[ColumnBatch]) -> List[Row]:
    """Flatten a batch stream back into dict rows (the API edge)."""
    rows: List[Row] = []
    for batch in batches:
        rows.extend(batch.to_rows())
    return rows
