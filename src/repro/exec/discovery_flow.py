"""Distributed discovery over the three node flavors (Section 3.3).

"Annotation extraction requires the capabilities of all three node
types.  Data nodes perform intra-document analyses: tasks like entity
extraction and sentiment detection within a single document.  The output
of intra-document analyses may be fed to grid nodes for inter-document
analyses to identify relationships spanning documents.  Finally, cluster
nodes are responsible for persisting newly extracted structures and
relationships reliably and consistently."

:func:`run_distributed_discovery` executes that exact dataflow against a
simulated cluster: annotators run where the documents live (cost charged
to data nodes), mentions ship to a grid work crew for entity resolution
(inter-document), and the resulting annotation documents and co-mention
edges persist through consistency-group locks at the cluster nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.topology import ImplianceCluster
from repro.discovery.annotators import Annotator
from repro.discovery.resolution import EntityResolver, Mention
from repro.exec import costs
from repro.exec.parallel import ExecReport, StageTiming
from repro.index.joins import JoinEdge
from repro.model.annotations import Annotation, make_annotation_document
from repro.model.document import DocumentKind
from repro.util import IdGenerator

#: Approximate wire size of one shipped annotation record.
ANNOTATION_BYTES = 160
#: CPU cost of resolving one mention against the entity blocks.
RESOLVE_MS_PER_MENTION = 0.05


@dataclass
class DistributedDiscoveryResult:
    """What one distributed discovery pass produced."""

    annotations: int = 0
    entities: int = 0
    edges: int = 0
    persisted: int = 0
    report: ExecReport = field(default_factory=ExecReport)

    @property
    def finish_ms(self) -> float:
        return self.report.finish_ms


def run_distributed_discovery(
    cluster: ImplianceCluster,
    annotators: Sequence[Annotator],
    entity_labels: Optional[Dict[str, str]] = None,
    crew_size: int = 2,
    after: float = 0.0,
) -> DistributedDiscoveryResult:
    """Run one full discovery pass with paper-faithful stage placement.

    Returns counts plus the per-stage cost report.  Annotation documents
    are persisted at each subject's home data node under consistency-
    group locks; co-mention edges land in every data node's join index
    (they are derived data — BRONZE — so a broadcast copy is fine).
    """
    labels = dict(entity_labels or {"person": "name"})
    result = DistributedDiscoveryResult()
    ids = IdGenerator("dann")

    # ------------------------------------------------------------------
    # Stage 1 (data nodes): intra-document analyses where the data lives.
    # ------------------------------------------------------------------
    per_node_annotations: Dict[str, Tuple[List[Annotation], float]] = {}
    for node in cluster.data_nodes:
        assert node.store is not None
        produced: List[Annotation] = []
        analysed_bytes = 0
        for document in node.store.scan():
            if document.kind is DocumentKind.ANNOTATION:
                continue
            analysed_bytes += document.size_bytes()
            for annotator in annotators:
                if annotator.applies_to(document):
                    produced.extend(annotator.annotate(document))
        cost = costs.ANNOTATE_MS_PER_KB * analysed_bytes / 1024.0
        finish = node.run(cost, after, label="intra-doc-analysis", operator="annotate")
        per_node_annotations[node.node_id] = (produced, finish)
        result.annotations += len(produced)
    result.report.record(
        StageTiming(
            "intra-doc",
            max((f for _, f in per_node_annotations.values()), default=after),
            result.annotations,
            nodes=tuple(sorted(per_node_annotations)),
        )
    )

    # ------------------------------------------------------------------
    # Stage 2 (grid crew): inter-document analyses — entity resolution.
    # ------------------------------------------------------------------
    crew = cluster.work_crew(crew_size)
    coordinator = crew[0] if crew else cluster.data_nodes[0]
    gathered: List[Annotation] = []
    ready = after
    for node_id, (produced, produced_at) in sorted(per_node_annotations.items()):
        wire = cluster.network.transfer(
            ANNOTATION_BYTES * len(produced), node_id, coordinator.node_id
        )
        gathered.extend(produced)
        ready = max(ready, produced_at + wire)
    result.report.record(
        StageTiming("ship-annotations", ready, len(gathered),
                    bytes_shipped=ANNOTATION_BYTES * len(gathered),
                    nodes=(coordinator.node_id,))
    )

    resolver = EntityResolver()
    mentions = [
        Mention(a.subject_id, str(a.payload[labels[a.label]]), a.label)
        for a in gathered
        if a.label in labels and a.payload.get(labels[a.label])
    ]
    # The crew splits resolution cost evenly (blocking makes this fair).
    resolve_finish = ready
    if mentions and crew:
        share = len(mentions) * RESOLVE_MS_PER_MENTION / len(crew)
        for node in crew:
            resolve_finish = max(
                resolve_finish,
                node.run(share, ready, label="inter-doc-analysis", operator="annotate"),
            )
    for mention in mentions:
        resolver.resolve(mention)
    result.entities = resolver.entity_count
    result.report.record(
        StageTiming("inter-doc", resolve_finish, len(mentions),
                    nodes=tuple(n.node_id for n in crew))
    )

    # ------------------------------------------------------------------
    # Stage 3 (cluster nodes): persist structures reliably/consistently.
    # ------------------------------------------------------------------
    group = cluster.consistency_group
    persist_finish = resolve_finish
    for annotation in gathered:
        ann_doc = make_annotation_document(ids.next(), annotation)
        home = cluster.home_of(ann_doc.doc_id)
        assert home.store is not None
        granted = group.acquire(ann_doc.doc_id, "discovery", home.node_id, resolve_finish)
        home.store.put(ann_doc)
        end = home.run(costs.UPDATE_CPU_MS, granted, label="persist-annotation",
                       operator="update")
        group.release(ann_doc.doc_id, "discovery")
        persist_finish = max(persist_finish, end)
        result.persisted += 1

    edges = 0
    for entity in resolver.entities():
        doc_ids = sorted(entity.doc_ids)
        for a, b in zip(doc_ids, doc_ids[1:]):
            edge = JoinEdge("co_mentions", a, b, confidence=0.7)
            for node in cluster.data_nodes:
                assert node.indexes is not None
                node.indexes.joins.add(edge)
            edges += 1
    result.edges = edges
    result.report.record(
        StageTiming("persist", persist_finish, result.persisted + edges,
                    nodes=tuple(n.node_id for n in cluster.cluster_nodes))
    )
    return result
