"""Distributed execution over the simulated cluster (paper Section 3.3).

"A query can be parallelized by performing full-text index search on a
set of data nodes, which then send the reduced data to a set of grid
nodes for joining, sorting, and group-wise aggregation, the results of
which are sent to a set of cluster nodes to drive a set of updates."

The executor provides exactly those building blocks.  Every step does the
real computation on real rows *and* charges simulated time to node
timelines and bytes to the network, so experiments get both answers and
costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.chaos.retry import RetryError, RetryPolicy
from repro.cluster.network import PartitionError
from repro.cluster.node import NodeKind, SimNode
from repro.cluster.topology import ImplianceCluster
from repro.exec import costs
from repro.exec.batch import (
    DEFAULT_BATCH_SIZE,
    ColumnBatch,
    batches_from_rows,
    rows_from_batches,
)
from repro.exec.operators import (
    AggSpec,
    Row,
    group_aggregate,
    hash_join,
    indexed_nl_join,
    merge_partial_aggregates,
    partial_aggregate,
    sort_rows,
    top_k,
)
from repro.model.document import Document
from repro.obs.telemetry import DISABLED, Telemetry
from repro.storage.encoding import EncodedColumn

DocExtractor = Callable[[Document], Optional[Row]]
RowPredicate = Callable[[Row], bool]

#: Partitioned intermediate result: node_id -> (rows, ready_at).
Partitions = Dict[str, Tuple[List[Row], float]]

#: Columnar partitioned intermediate: node_id -> (batches, ready_at).
BatchPartitions = Dict[str, Tuple[List[ColumnBatch], float]]


@dataclass
class StageTiming:
    """Timing record of one executed stage."""

    label: str
    finish_ms: float
    rows: int
    bytes_shipped: int = 0
    nodes: Tuple[str, ...] = ()
    lost_partitions: int = 0  # input partitions dropped (unreachable)


@dataclass
class ExecReport:
    """Accumulated cost report of one distributed query."""

    stages: List[StageTiming] = field(default_factory=list)
    #: Input partitions that stayed unreachable after retries; when
    #: non-zero the answer is partial and ``degraded`` is set.
    lost_partitions: int = 0
    degraded: bool = False

    def record(self, stage: StageTiming) -> None:
        self.stages.append(stage)
        if stage.lost_partitions:
            self.lost_partitions += stage.lost_partitions
            self.degraded = True

    @property
    def finish_ms(self) -> float:
        return max((s.finish_ms for s in self.stages), default=0.0)

    @property
    def bytes_shipped(self) -> int:
        return sum(s.bytes_shipped for s in self.stages)

    def stage(self, label: str) -> StageTiming:
        for stage in self.stages:
            if stage.label == label:
                return stage
        raise KeyError(f"no stage labeled {label!r}")


class ParallelExecutor:
    """Runs distributed dataflows against an :class:`ImplianceCluster`.

    With *use_scheduler* the executor delegates compute-stage placement
    to the §3.3 :class:`~repro.cluster.scheduler.OperatorScheduler`
    (completion-time based, any flavor); otherwise it uses the fixed
    paper placement (grid work crews).
    """

    def __init__(
        self,
        cluster: ImplianceCluster,
        use_scheduler: bool = False,
        telemetry: Optional[Telemetry] = None,
        retry_policy: Optional[RetryPolicy] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        self.cluster = cluster
        self.telemetry = telemetry if telemetry is not None else DISABLED
        #: Rows per shipped ColumnBatch on columnar inter-node transfers.
        self.batch_size = batch_size
        # Timed-out / dropped work retries under this policy; a chaos
        # controller swaps in the fault plan's seeded policy so backoff
        # jitter replays with the plan (see repro.chaos).
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.scheduler = None
        if use_scheduler:
            from repro.cluster.scheduler import OperatorScheduler

            self.scheduler = OperatorScheduler(cluster)

    def slowdown_factor(self) -> float:
        """Worst slowdown across live data nodes (1.0 = all healthy).

        The mid-query re-optimizer reads this as the probe-cost penalty:
        index probes land on whichever data node owns the key, so the
        slowest surviving node bounds expected probe latency
        (docs/ADAPTIVE.md).  Dead nodes are excluded — their work fails
        over rather than running slow.
        """
        live = [n for n in self.cluster.data_nodes if n.alive]
        if not live:
            return 1.0
        return max(node.slowdown for node in live)

    def _note_stage(self, label: str, rows: int, bytes_shipped: int = 0) -> None:
        """Per-stage metrics; node sim time is charged by SimNode.run."""
        if not self.telemetry.enabled:
            return
        self.telemetry.inc("exec.stages")
        self.telemetry.inc(f"exec.stage.{label}")
        self.telemetry.observe("exec.stage_rows", rows)
        if bytes_shipped:
            self.telemetry.inc("exec.bytes_shipped", bytes_shipped)

    def _choose_compute_node(
        self, operator: str, cost_ms: float, partitions: Partitions
    ) -> SimNode:
        """Destination for a gather+compute stage."""
        if self.scheduler is not None:
            input_bytes = {
                node_id: costs.estimate_rows_bytes(rows)
                for node_id, (rows, _) in partitions.items()
            }
            ready = max((f for _, f in partitions.values()), default=0.0)
            decision = self.scheduler.place(
                operator, cost_ms, input_bytes=input_bytes, ready_at=ready
            )
            return self.cluster.node(decision.node_id)
        crew = self.cluster.work_crew(1)
        return crew[0] if crew else self.cluster.data_nodes[0]

    # ------------------------------------------------------------------
    # fault tolerance: retried compute and shipping
    # ------------------------------------------------------------------
    def _failover_candidates(self, exclude: Set[str]) -> List[SimNode]:
        """Surviving nodes eligible to adopt orphaned work, grid first."""
        nodes = [
            n
            for n in self.cluster.nodes()
            if n.alive and n.node_id not in exclude
        ]
        return sorted(
            nodes, key=lambda n: (0 if n.kind is NodeKind.GRID else 1, n.node_id)
        )

    def _run_with_failover(
        self,
        node: Optional[SimNode],
        cost_ms: float,
        after: float,
        label: str,
        operator: str,
    ) -> Tuple[SimNode, float]:
        """Charge *cost_ms* to *node*, failing over when it is dead.

        Each failed attempt pays the retry policy's timeout + seeded
        backoff in simulated time, then the work moves to a surviving
        node (via the scheduler when one is attached).  Raises
        :class:`RetryError` when the policy exhausts with no survivor.
        """
        policy = self.retry_policy
        tried: Set[str] = set()
        delay = 0.0
        current = node
        for attempt in range(policy.max_attempts):
            if current is not None and current.alive:
                return current, current.run(
                    cost_ms, after + delay, label=label, operator=operator
                )
            if current is not None:
                tried.add(current.node_id)
            delay += policy.penalty_ms(attempt)
            self.telemetry.inc("exec.retries")
            current = self._next_survivor(operator, cost_ms, tried, after + delay)
        raise RetryError(
            f"no surviving node to run {label!r} after {policy.max_attempts} attempts",
            policy.max_attempts,
        )

    def _next_survivor(
        self, operator: str, cost_ms: float, tried: Set[str], ready_at: float
    ) -> Optional[SimNode]:
        if self.scheduler is not None:
            try:
                decision = self.scheduler.replace(
                    operator, cost_ms, failed=set(tried), ready_at=ready_at
                )
                return self.cluster.node(decision.node_id)
            except RuntimeError:
                return None
        candidates = self._failover_candidates(tried)
        return candidates[0] if candidates else None

    # ------------------------------------------------------------------
    # stage 0: batched ingest routing
    # ------------------------------------------------------------------
    def ingest_batch(
        self,
        documents: Sequence[Document],
        after: float = 0.0,
        report: Optional[ExecReport] = None,
    ) -> Tuple[List[Document], float]:
        """Commit one ingest batch across the data nodes, with failover.

        Wraps :meth:`ImplianceCluster.ingest_batch` — one scheduling round
        sharding the batch by home node — under the executor's retry
        policy: when a home node dies mid-round (chaos), topology is
        re-detected, the attempt pays the policy's timeout + seeded
        backoff in simulated time, and the documents that did not land are
        re-routed over the survivors.  Raises :class:`RetryError` only
        when the policy exhausts with documents still unplaced.

        Returns ``(stored documents, finish time)``; on the clean path the
        stored list is in arrival order.
        """
        if not documents:
            return [], after
        policy = self.retry_policy
        with self.telemetry.span("exec.ingest_batch", docs=len(documents)) as span:
            remaining = list(documents)
            stored: List[Document] = []
            finish = after
            nodes: Set[str] = set()
            delay = 0.0
            for attempt in range(policy.max_attempts):
                try:
                    ordered, shares, finish = self.cluster.ingest_batch(
                        remaining, after + delay
                    )
                    stored.extend(ordered)
                    nodes.update(shares)
                    remaining = []
                    break
                except RuntimeError:
                    # A home died between routing and its share's commit.
                    # Re-detect, keep what already landed, retry the rest.
                    self.cluster.detect_topology()
                    delay += policy.penalty_ms(attempt)
                    self.telemetry.inc("exec.retries")
                    still: List[Document] = []
                    for document in remaining:
                        landed = self._landed_version(document)
                        if landed is not None:
                            stored.append(landed)
                        else:
                            still.append(document)
                    remaining = still
                    if not remaining:
                        break
            if remaining:
                raise RetryError(
                    f"bulk ingest exhausted {policy.max_attempts} attempts"
                    f" with {len(remaining)} documents unplaced",
                    policy.max_attempts,
                )
            self._note_stage("ingest-batch", len(stored))
            span.tag("nodes", len(nodes))
            if report is not None:
                report.record(
                    StageTiming(
                        "ingest-batch",
                        finish,
                        len(stored),
                        nodes=tuple(sorted(nodes)),
                    )
                )
        return stored, finish

    def _landed_version(self, document: Document) -> Optional[Document]:
        """The stored copy of *document* if some live node committed it
        before the round failed, else ``None``."""
        for node in self.cluster.data_nodes:
            store = node.store
            if store is not None and store.contains(document.doc_id):
                chain = store.versions.chain(document.doc_id)
                if chain.head_version >= document.version:
                    return chain.get(document.version)
        return None

    # ------------------------------------------------------------------
    # stage 1: data-node row production
    # ------------------------------------------------------------------
    def scan(
        self,
        extract: DocExtractor,
        predicate: Optional[RowPredicate] = None,
        pushdown: bool = True,
        after: float = 0.0,
        report: Optional[ExecReport] = None,
        label: str = "scan",
    ) -> Partitions:
        """Parallel scan: every data node converts its documents to rows.

        With *pushdown* the predicate runs at the data node ("early data
        reduction", Section 3.1); otherwise all extracted rows are kept
        and the predicate must be applied after shipping — the baseline
        the PUSH experiment compares.
        """
        partitions: Partitions = {}
        total_rows = 0
        for node in self.cluster.data_nodes:
            assert node.store is not None
            rows: List[Row] = []
            n_docs = 0
            for document in node.store.scan():
                n_docs += 1
                row = extract(document)
                if row is None:
                    continue
                rows.append(row)
            cost = n_docs * costs.SCAN_CPU_MS_PER_DOC
            if pushdown and predicate is not None:
                cost += len(rows) * costs.FILTER_CPU_MS_PER_ROW
                rows = [r for r in rows if predicate(r)]
            finish = node.run(cost, after, label=label, operator="scan")
            partitions[node.node_id] = (rows, finish)
            total_rows += len(rows)
        self._note_stage(label, total_rows)
        if report is not None:
            report.record(
                StageTiming(
                    label=label,
                    finish_ms=max((f for _, f in partitions.values()), default=after),
                    rows=total_rows,
                    nodes=tuple(sorted(partitions)),
                )
            )
        return partitions

    def scan_view_batches(
        self,
        view,
        after: float = 0.0,
        report: Optional[ExecReport] = None,
        label: str = "scan-columnar",
    ) -> Optional[BatchPartitions]:
        """Parallel native columnar scan (docs/STORAGE.md): every data
        node yields still-encoded ColumnBatches straight off its column
        pages, ready to ship via :meth:`gather_batches` — where
        :func:`costs.estimate_batch_bytes` charges the *encoded* sizes,
        so compression bought at the storage layer is compression on the
        wire too.  Returns ``None`` when *view* cannot be answered
        columnar (the caller falls back to :meth:`scan`).

        The simulated scan charge matches :meth:`scan` exactly: every
        live document on the node costs :data:`costs.SCAN_CPU_MS_PER_DOC`
        plus the projection cost per produced row — the physical shortcut
        must not perturb the cost model experiments compare.
        """
        partitions: BatchPartitions = {}
        total_rows = 0
        encoded_bytes = 0
        for node in self.cluster.data_nodes:
            store = node.store
            assert store is not None
            produced = store.scan_view_batches(view, self.batch_size)
            if produced is None:
                return None
            batches = [b for b in produced if b.length]
            n_rows = sum(b.length for b in batches)
            cost = (
                store.live_doc_count * costs.SCAN_CPU_MS_PER_DOC
                + n_rows * costs.PROJECT_CPU_MS_PER_ROW
            )
            finish = node.run(cost, after, label=label, operator="scan")
            partitions[node.node_id] = (batches, finish)
            total_rows += n_rows
            encoded_bytes += costs.estimate_batches_bytes(batches)
        self._note_stage(label, total_rows)
        if self.telemetry.enabled and encoded_bytes:
            self.telemetry.inc("exec.bytes_encoded_produced", encoded_bytes)
        if report is not None:
            report.record(
                StageTiming(
                    label=label,
                    finish_ms=max((f for _, f in partitions.values()), default=after),
                    rows=total_rows,
                    nodes=tuple(sorted(partitions)),
                )
            )
        return partitions

    def search(
        self,
        query: str,
        top_n: int = 10,
        after: float = 0.0,
        report: Optional[ExecReport] = None,
        label: str = "search",
    ) -> Partitions:
        """Parallel full-text search: each data node scores its local
        index and keeps its top-n; the merge happens at gather time."""
        partitions: Partitions = {}
        total = 0
        for node in self.cluster.data_nodes:
            assert node.indexes is not None
            hits = node.indexes.text.search(query, top_k=top_n)
            scored = len(node.indexes.text.match_all(query)) or len(hits)
            cost = max(scored, len(hits)) * costs.SEARCH_MS_PER_DOC_SCORED
            finish = node.run(cost, after, label=label, operator="search")
            rows = [{"doc_id": h.doc_id, "score": h.score} for h in hits]
            partitions[node.node_id] = (rows, finish)
            total += len(rows)
        self._note_stage(label, total)
        if report is not None:
            report.record(
                StageTiming(
                    label=label,
                    finish_ms=max((f for _, f in partitions.values()), default=after),
                    rows=total,
                    nodes=tuple(sorted(partitions)),
                )
            )
        return partitions

    # ------------------------------------------------------------------
    # data movement
    # ------------------------------------------------------------------
    def gather(
        self,
        partitions: Partitions,
        dest: SimNode,
        report: Optional[ExecReport] = None,
        label: str = "ship",
    ) -> Tuple[List[Row], float]:
        """Ship every partition to *dest*; returns (rows, ready time).

        A partitioned source is retried under the executor's
        :class:`RetryPolicy` (each attempt charges its timeout + seeded
        backoff to the ready time).  A source that stays unreachable is
        *dropped*: the gather completes with the surviving partitions,
        the loss is counted on the report, and the result is degraded —
        a partial answer now beats no answer (Section 3.1's availability
        stance).
        """
        policy = self.retry_policy
        gathered: List[Row] = []
        ready = 0.0
        shipped_bytes = 0
        lost = 0
        for node_id in sorted(partitions):
            rows, produced_at = partitions[node_id]
            nbytes = costs.estimate_rows_bytes(rows)
            delay = 0.0
            wire = None
            for attempt in range(policy.max_attempts):
                try:
                    wire = self.cluster.network.transfer(nbytes, node_id, dest.node_id)
                    break
                except PartitionError:
                    delay += policy.penalty_ms(attempt)
                    self.telemetry.inc("exec.retries")
            if wire is None:
                lost += 1
                self.telemetry.inc("exec.partitions_lost")
                ready = max(ready, produced_at + delay)
                continue
            if node_id != dest.node_id:
                shipped_bytes += nbytes
            gathered.extend(rows)
            ready = max(ready, produced_at + delay + wire)
        self._note_stage(label, len(gathered), shipped_bytes)
        if report is not None:
            report.record(
                StageTiming(
                    label=label,
                    finish_ms=ready,
                    rows=len(gathered),
                    bytes_shipped=shipped_bytes,
                    nodes=(dest.node_id,),
                    lost_partitions=lost,
                )
            )
        return gathered, ready

    def gather_batches(
        self,
        partitions: BatchPartitions,
        dest: SimNode,
        report: Optional[ExecReport] = None,
        label: str = "ship",
    ) -> Tuple[List[ColumnBatch], float]:
        """Ship partitioned ColumnBatch streams to *dest* (columnar wire).

        Each batch is one network transfer charged at
        :func:`costs.estimate_batch_bytes` — column names travel once per
        batch instead of once per row, so the same rows cost fewer bytes
        than :meth:`gather`'s row wire format.  Retry and degradation
        semantics are identical to :meth:`gather`: a partitioned source
        retries under the executor policy (charging timeout + seeded
        backoff), then drops, leaving a partial, degraded answer.
        """
        policy = self.retry_policy
        gathered: List[ColumnBatch] = []
        ready = 0.0
        shipped_bytes = 0
        shipped_encoded = 0
        shipped_batches = 0
        total_rows = 0
        lost = 0
        for node_id in sorted(partitions):
            batches, produced_at = partitions[node_id]
            delay = 0.0
            wire = None
            for attempt in range(policy.max_attempts):
                try:
                    # Partition state is stable within a gather, so either
                    # every batch transfers or the first raises — partial
                    # accounting cannot happen mid-partition.  An empty
                    # stream still ships its (empty) manifest, so a dead
                    # link is detected exactly as in the row gather.
                    if batches:
                        wire = sum(
                            self.cluster.network.transfer(
                                costs.estimate_batch_bytes(batch), node_id, dest.node_id
                            )
                            for batch in batches
                        )
                    else:
                        wire = self.cluster.network.transfer(0, node_id, dest.node_id)
                    break
                except PartitionError:
                    delay += policy.penalty_ms(attempt)
                    self.telemetry.inc("exec.retries")
            if wire is None:
                lost += 1
                self.telemetry.inc("exec.partitions_lost")
                ready = max(ready, produced_at + delay)
                continue
            if node_id != dest.node_id:
                shipped_bytes += costs.estimate_batches_bytes(batches)
                shipped_batches += len(batches)
                for batch in batches:
                    for values in batch.columns.values():
                        if isinstance(values, EncodedColumn):
                            shipped_encoded += values.encoded_bytes()
            gathered.extend(batches)
            total_rows += sum(b.length for b in batches)
            ready = max(ready, produced_at + delay + wire)
        if shipped_batches:
            self.telemetry.inc("exec.batches_shipped", shipped_batches)
        if shipped_encoded:
            # The slice of the columnar wire traffic that traveled still
            # dictionary/RLE-encoded (vs decoded value lists).
            self.telemetry.inc("exec.bytes_shipped_encoded", shipped_encoded)
        self._note_stage(label, total_rows, shipped_bytes)
        if report is not None:
            report.record(
                StageTiming(
                    label=label,
                    finish_ms=ready,
                    rows=total_rows,
                    bytes_shipped=shipped_bytes,
                    nodes=(dest.node_id,),
                    lost_partitions=lost,
                )
            )
        return gathered, ready

    # ------------------------------------------------------------------
    # stage 2: grid computation
    # ------------------------------------------------------------------
    def compute_filter(
        self,
        rows: List[Row],
        predicate: RowPredicate,
        node: SimNode,
        after: float,
        report: Optional[ExecReport] = None,
        label: str = "filter",
    ) -> Tuple[List[Row], float]:
        result = [r for r in rows if predicate(r)]
        node, finish = self._run_with_failover(
            node, len(rows) * costs.FILTER_CPU_MS_PER_ROW, after, label, "filter"
        )
        self._note_stage(label, len(result))
        if report is not None:
            report.record(StageTiming(label, finish, len(result), nodes=(node.node_id,)))
        return result, finish

    def compute_hash_join(
        self,
        left: List[Row],
        right: List[Row],
        left_key: str,
        right_key: str,
        node: SimNode,
        after: float,
        report: Optional[ExecReport] = None,
        label: str = "join",
    ) -> Tuple[List[Row], float]:
        result = list(hash_join(left, right, left_key, right_key))
        cost = (
            len(right) * costs.HASH_BUILD_MS_PER_ROW
            + len(left) * costs.HASH_PROBE_MS_PER_ROW
        )
        node, finish = self._run_with_failover(node, cost, after, label, "join")
        self._note_stage(label, len(result))
        if report is not None:
            report.record(StageTiming(label, finish, len(result), nodes=(node.node_id,)))
        return result, finish

    def compute_indexed_join(
        self,
        left: List[Row],
        left_key: str,
        probe: Callable[[Any], List[Row]],
        node: SimNode,
        after: float,
        report: Optional[ExecReport] = None,
        label: str = "inljoin",
    ) -> Tuple[List[Row], float]:
        """Indexed nested-loop join; each probe pays a random-access cost
        plus one network round-trip to the data node holding the index."""
        result = list(indexed_nl_join(left, left_key, probe))
        probe_wire = self.cluster.network.latency_ms * 2 if self.cluster.data_nodes else 0
        cost = len(left) * costs.INDEX_PROBE_MS
        node, finish = self._run_with_failover(
            node, cost, after + probe_wire * min(1, len(left)), label, "join"
        )
        self._note_stage(label, len(result))
        if report is not None:
            report.record(StageTiming(label, finish, len(result), nodes=(node.node_id,)))
        return result, finish

    def compute_sort(
        self,
        rows: List[Row],
        keys: Sequence[str],
        node: SimNode,
        after: float,
        descending: bool = False,
        report: Optional[ExecReport] = None,
        label: str = "sort",
    ) -> Tuple[List[Row], float]:
        result = sort_rows(rows, keys, descending)
        node, finish = self._run_with_failover(
            node, costs.sort_cost_ms(len(rows)), after, label, "sort"
        )
        self._note_stage(label, len(result))
        if report is not None:
            report.record(StageTiming(label, finish, len(result), nodes=(node.node_id,)))
        return result, finish

    def compute_aggregate(
        self,
        rows: List[Row],
        group_by: Sequence[str],
        aggs: Sequence[AggSpec],
        node: SimNode,
        after: float,
        report: Optional[ExecReport] = None,
        label: str = "aggregate",
    ) -> Tuple[List[Row], float]:
        result = group_aggregate(rows, group_by, aggs)
        node, finish = self._run_with_failover(
            node, len(rows) * costs.AGG_MS_PER_ROW, after, label, "aggregate"
        )
        self._note_stage(label, len(result))
        if report is not None:
            report.record(StageTiming(label, finish, len(result), nodes=(node.node_id,)))
        return result, finish

    def compute_top_k(
        self,
        rows: List[Row],
        k: int,
        key: str,
        node: SimNode,
        after: float,
        descending: bool = True,
        report: Optional[ExecReport] = None,
        label: str = "topk",
    ) -> Tuple[List[Row], float]:
        result = top_k(rows, k, key, descending)
        node, finish = self._run_with_failover(
            node, len(rows) * costs.TOPK_MS_PER_ROW, after, label, "sort"
        )
        self._note_stage(label, len(result))
        if report is not None:
            report.record(StageTiming(label, finish, len(result), nodes=(node.node_id,)))
        return result, finish

    # ------------------------------------------------------------------
    # distributed aggregate pipeline (the PUSH experiment's subject)
    # ------------------------------------------------------------------
    def aggregate_distributed(
        self,
        extract: DocExtractor,
        group_by: Sequence[str],
        aggs: Sequence[AggSpec],
        predicate: Optional[RowPredicate] = None,
        pushdown: bool = True,
        report: Optional[ExecReport] = None,
        merge_crew: Optional[int] = None,
    ) -> Tuple[List[Row], ExecReport]:
        """Traced wrapper around the distributed aggregate pipeline."""
        with self.telemetry.span(
            "exec.aggregate_distributed", pushdown=pushdown
        ) as span:
            result, report = self._aggregate_distributed(
                extract, group_by, aggs,
                predicate=predicate, pushdown=pushdown,
                report=report, merge_crew=merge_crew,
            )
            span.tag("rows", len(result))
            span.tag("finish_ms", round(report.finish_ms, 3))
        return result, report

    def _aggregate_distributed(
        self,
        extract: DocExtractor,
        group_by: Sequence[str],
        aggs: Sequence[AggSpec],
        predicate: Optional[RowPredicate] = None,
        pushdown: bool = True,
        report: Optional[ExecReport] = None,
        merge_crew: Optional[int] = None,
    ) -> Tuple[List[Row], ExecReport]:
        """Scan → (maybe local partial-agg) → ship → final aggregate.

        With pushdown, filtering and partial aggregation run on the data
        nodes and only group partials travel; without it, raw rows travel
        and all reduction happens on the grid node.  With *merge_crew*,
        the final merge itself parallelizes: partials hash-repartition by
        group key across a crew of that size, removing the single-node
        merge bottleneck the strong-scaling experiment shows at high node
        counts.
        """
        if report is None:
            report = ExecReport()
        partitions = self.scan(
            extract, predicate=predicate, pushdown=pushdown, report=report
        )
        if pushdown and merge_crew is not None and merge_crew > 1:
            return self._repartitioned_merge(
                partitions, group_by, aggs, merge_crew, report
            )
        total_rows = sum(len(rows) for rows, _ in partitions.values())
        dest = self._choose_compute_node(
            "aggregate", total_rows * costs.AGG_MS_PER_ROW, partitions
        )
        if pushdown:
            # Partial aggregates travel as ColumnBatches: the columnar
            # wire format pays column names once per batch, so pushdown
            # ships even fewer bytes than row-shipped partials would.
            reduced: BatchPartitions = {}
            for node_id, (rows, ready) in partitions.items():
                node = self.cluster.node(node_id)
                partials = partial_aggregate(rows, group_by, aggs)
                _, finish = self._run_with_failover(
                    node, len(rows) * costs.AGG_MS_PER_ROW, ready,
                    "partial-agg", "aggregate",
                )
                reduced[node_id] = (
                    list(batches_from_rows(partials, self.batch_size)),
                    finish,
                )
            batches, ready = self.gather_batches(reduced, dest, report=report)
            gathered = rows_from_batches(batches)
            result = merge_partial_aggregates(gathered, group_by, aggs)
            dest, finish = self._run_with_failover(
                dest, len(gathered) * costs.AGG_MS_PER_ROW, ready,
                "merge-agg", "aggregate",
            )
        else:
            gathered, ready = self.gather(partitions, dest, report=report)
            if predicate is not None:
                gathered, ready = self.compute_filter(
                    gathered, predicate, dest, ready, report=report
                )
            result, finish = self.compute_aggregate(
                gathered, group_by, aggs, dest, ready, report=report
            )
        report.record(StageTiming("final", finish, len(result), nodes=(dest.node_id,)))
        return result, report

    def _repartitioned_merge(
        self,
        partitions: Partitions,
        group_by: Sequence[str],
        aggs: Sequence[AggSpec],
        crew_size: int,
        report: ExecReport,
    ) -> Tuple[List[Row], ExecReport]:
        """Partial-agg at data nodes, hash-repartition partials by group
        key across a grid crew, merge shards in parallel."""
        from repro.util import stable_hash

        group_by = list(group_by)
        # local partial aggregation at each data node
        reduced: Partitions = {}
        for node_id, (rows, ready) in partitions.items():
            node = self.cluster.node(node_id)
            partials = partial_aggregate(rows, group_by, aggs)
            _, finish = self._run_with_failover(
                node, len(rows) * costs.AGG_MS_PER_ROW, ready,
                "partial-agg", "aggregate",
            )
            reduced[node_id] = (partials, finish)

        crew = self.cluster.work_crew(crew_size)
        if not crew:
            crew = self.cluster.data_nodes[:1]

        def shard_of(row: Row) -> int:
            key = "\x1f".join(str(row.get(c)) for c in group_by)
            return stable_hash(key, len(crew))

        # repartition: each data node ships each shard to its crew member
        # (partitioned links retry under the executor policy, then drop)
        policy = self.retry_policy
        shards: List[List[Row]] = [[] for _ in crew]
        shard_ready = [0.0] * len(crew)
        shipped_bytes = 0
        lost = 0
        for node_id, (partials, produced_at) in sorted(reduced.items()):
            per_shard: Dict[int, List[Row]] = {}
            for row in partials:
                per_shard.setdefault(shard_of(row), []).append(row)
            for shard_no, rows in sorted(per_shard.items()):
                shard_batches = list(batches_from_rows(rows, self.batch_size))
                nbytes = costs.estimate_batches_bytes(shard_batches)
                delay = 0.0
                wire = None
                for attempt in range(policy.max_attempts):
                    try:
                        wire = sum(
                            self.cluster.network.transfer(
                                costs.estimate_batch_bytes(batch),
                                node_id,
                                crew[shard_no].node_id,
                            )
                            for batch in shard_batches
                        )
                        break
                    except PartitionError:
                        delay += policy.penalty_ms(attempt)
                        self.telemetry.inc("exec.retries")
                if wire is None:
                    lost += 1
                    self.telemetry.inc("exec.partitions_lost")
                    continue
                if node_id != crew[shard_no].node_id:
                    shipped_bytes += nbytes
                    self.telemetry.inc("exec.batches_shipped", len(shard_batches))
                shards[shard_no].extend(rows)
                shard_ready[shard_no] = max(
                    shard_ready[shard_no], produced_at + delay + wire
                )
        report.record(
            StageTiming(
                "repartition",
                max(shard_ready, default=0.0),
                sum(len(s) for s in shards),
                bytes_shipped=shipped_bytes,
                nodes=tuple(n.node_id for n in crew),
                lost_partitions=lost,
            )
        )

        # parallel merge: each crew member reduces its own shard
        result: List[Row] = []
        finish = 0.0
        for shard_no, node in enumerate(crew):
            merged = merge_partial_aggregates(shards[shard_no], group_by, aggs)
            node, end = self._run_with_failover(
                node,
                len(shards[shard_no]) * costs.AGG_MS_PER_ROW,
                shard_ready[shard_no],
                "merge-shard",
                "aggregate",
            )
            result.extend(merged)
            finish = max(finish, end)
        result.sort(key=lambda r: tuple(str(r.get(c)) for c in group_by))
        report.record(
            StageTiming("final", finish, len(result),
                        nodes=tuple(n.node_id for n in crew))
        )
        return result, report

    # ------------------------------------------------------------------
    # stage 3: consistent updates through cluster nodes
    # ------------------------------------------------------------------
    def cluster_update(
        self,
        updates: Mapping[str, Callable[[Document], Any]],
        after: float = 0.0,
        holder: str = "query",
        report: Optional[ExecReport] = None,
    ) -> Tuple[int, float]:
        """Apply versioned updates under consistency-group locks.

        *updates* maps doc_id → function(old document) → new content.
        Each update acquires the key's lock at its owning cluster node,
        writes a new version at the document's home data node, then
        releases.  Returns (applied count, finish time).
        """
        with self.telemetry.span("exec.update", count=len(updates)) as span:
            applied, finish = self._cluster_update(updates, after, holder, report)
            span.tag("applied", applied)
        return applied, finish

    def _cluster_update(
        self,
        updates: Mapping[str, Callable[[Document], Any]],
        after: float,
        holder: str,
        report: Optional[ExecReport],
    ) -> Tuple[int, float]:
        group = self.cluster.consistency_group
        policy = self.retry_policy
        applied = 0
        finish = after
        for doc_id in sorted(updates):
            home = None
            for node in self.cluster.data_nodes:
                assert node.store is not None
                if node.store.contains(doc_id):
                    home = node
                    break
            if home is None:
                continue
            # Lock traffic crosses the interconnect; a partition between
            # the home node and the key's owner retries with backoff,
            # and an unreachable lock skips the update (it stays pending
            # rather than bypassing consistency).
            granted = None
            delay = 0.0
            for attempt in range(policy.max_attempts):
                try:
                    granted = group.acquire(
                        doc_id, holder, home.node_id, after + delay
                    )
                    break
                except PartitionError:
                    delay += policy.penalty_ms(attempt)
                    self.telemetry.inc("exec.retries")
            if granted is None:
                self.telemetry.inc("exec.updates_unreachable")
                continue
            assert home.store is not None
            old = home.store.get(doc_id)
            new_content = updates[doc_id](old)
            home.store.put(old.new_version(new_content))
            end = home.run(costs.UPDATE_CPU_MS, granted, label="update", operator="update")
            group.release(doc_id, holder)
            applied += 1
            finish = max(finish, end)
        self._note_stage("update", applied)
        if report is not None:
            report.record(StageTiming("update", finish, applied))
        return applied, finish
