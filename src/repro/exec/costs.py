"""Cost model for simulated execution.

All values are *nominal* simulated milliseconds on a speed-1.0 node; node
speed and operator affinity (see :mod:`repro.cluster.node`) scale them.
Absolute values are arbitrary — the experiments report relative shapes —
but the relative magnitudes are chosen to be realistic: random index
probes cost more than streamed rows, annotators (text analytics) dominate
per-byte costs, and locking is cheap but serialized.
"""

from __future__ import annotations

import math
from typing import Any, Dict

from repro.storage.encoding import EncodedColumn

# Per-document / per-row CPU costs (nominal ms).
SCAN_CPU_MS_PER_DOC = 0.002        # read + deserialize one document
FILTER_CPU_MS_PER_ROW = 0.0005
PROJECT_CPU_MS_PER_ROW = 0.0002
HASH_BUILD_MS_PER_ROW = 0.002
HASH_PROBE_MS_PER_ROW = 0.001
INDEX_PROBE_MS = 0.02              # one indexed-NL probe (random access)
SORT_MS_PER_ROW_LOG = 0.0005       # multiplied by log2(n)
AGG_MS_PER_ROW = 0.0008
SEARCH_MS_PER_DOC_SCORED = 0.001   # BM25 scoring one candidate
TOPK_MS_PER_ROW = 0.0003
UPDATE_CPU_MS = 0.05               # apply one versioned update
CACHE_LOOKUP_MS = 0.005            # serve a query from the result cache
ANNOTATE_MS_PER_KB = 0.5           # text analytics are expensive
COMPRESS_MS_PER_KB = 0.01
ENCRYPT_MS_PER_KB = 0.02

#: Fixed serialization overhead per shipped row.
ROW_OVERHEAD_BYTES = 16

#: Fixed serialization overhead per shipped columnar batch (header:
#: schema, column offsets, row count).
BATCH_OVERHEAD_BYTES = 64


def indexed_nl_break_even(inner_rows: float, probe_cost_ms: float = INDEX_PROBE_MS) -> float:
    """Outer cardinality below which indexed nested-loop beats hash join.

    Probing costs ``outer * probe_cost_ms`` while a hash join pays
    ``inner * HASH_BUILD_MS_PER_ROW + outer * HASH_PROBE_MS_PER_ROW``;
    equating the two gives the break-even outer row count.  The planner
    and the runtime escape hatch (:mod:`repro.query.adaptive`) both call
    this, so plan-time choices and mid-query re-plans share one cost
    model.  ``probe_cost_ms`` may be inflated by a degraded data node's
    slowdown; once probes are no more expensive than hash probes the
    indexed plan always wins and the break-even is unbounded.
    """
    margin = probe_cost_ms - HASH_PROBE_MS_PER_ROW
    if margin <= 0.0:
        return float("inf")
    return max(1.0, inner_rows * HASH_BUILD_MS_PER_ROW / margin)


def sort_cost_ms(n_rows: int) -> float:
    """n log n sort cost."""
    if n_rows <= 1:
        return 0.0
    return SORT_MS_PER_ROW_LOG * n_rows * math.log2(n_rows)


def estimate_row_bytes(row: Dict[str, Any]) -> int:
    """Approximate wire size of one row."""
    total = ROW_OVERHEAD_BYTES
    for key, value in row.items():
        total += len(key) + len(str(value))
    return total


def estimate_rows_bytes(rows) -> int:
    return sum(estimate_row_bytes(r) for r in rows)


def estimate_batch_bytes(batch) -> int:
    """Approximate wire size of one :class:`~repro.exec.batch.ColumnBatch`.

    The columnar wire format serializes each column name once per batch
    (the row format repeats keys and pays :data:`ROW_OVERHEAD_BYTES` per
    row), so shipping the same rows as batches amortizes the per-row
    overhead down to one marker byte per value.

    Dictionary/run-length-encoded columns ship *still encoded* and are
    charged their on-page size (:meth:`EncodedColumn.encoded_bytes`) —
    compressing at the data node is exactly the pushdown the appliance
    owns the storage stack for, and the wire sees the encoded bytes.
    """
    total = BATCH_OVERHEAD_BYTES
    for name, values in batch.columns.items():
        total += len(name)
        if isinstance(values, EncodedColumn):
            total += values.encoded_bytes()
            continue
        for value in values:
            total += len(str(value)) + 1
    return total


def estimate_batches_bytes(batches) -> int:
    return sum(estimate_batch_bytes(b) for b in batches)
