"""Execution engine: the limited physical-operator vocabulary and the
distributed executor that runs it over the simulated cluster.

Implements Section 3.3's execution story: few physical operators, data
reduced at data nodes, joined/sorted/aggregated on grid work crews,
updated consistently through cluster nodes — with every step charged to
node timelines and the network so experiments measure makespans and
bytes on the wire.

The operator vocabulary is vectorized: :class:`ColumnBatch` (struct-of-
arrays) streams are the hot-path currency, with the original dict-row
functions kept as the compatibility edge (see docs/EXECUTION.md).
"""

from repro.exec.batch import (
    DEFAULT_BATCH_SIZE,
    MISSING,
    ColumnBatch,
    batches_from_columns,
    batches_from_rows,
    rows_from_batches,
)
from repro.exec.operators import (
    AggSpec,
    AggregationTypeError,
    OperatorStats,
    Row,
    filter_batches,
    filter_rows,
    group_aggregate,
    group_aggregate_batches,
    hash_join,
    hash_join_batches,
    indexed_nl_join,
    merge_joined_row,
    merge_partial_aggregates,
    partial_aggregate,
    project_batches,
    project_rows,
    selector_from_predicate,
    sort_batches,
    sort_rows,
    top_k,
    top_k_batches,
)
from repro.exec.parallel import (
    BatchPartitions,
    ExecReport,
    ParallelExecutor,
    Partitions,
    StageTiming,
)
from repro.exec.discovery_flow import (
    DistributedDiscoveryResult,
    run_distributed_discovery,
)
from repro.exec import costs

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "MISSING",
    "ColumnBatch",
    "batches_from_columns",
    "batches_from_rows",
    "rows_from_batches",
    "filter_batches",
    "group_aggregate_batches",
    "hash_join_batches",
    "merge_joined_row",
    "project_batches",
    "selector_from_predicate",
    "sort_batches",
    "top_k_batches",
    "BatchPartitions",
    "AggSpec",
    "AggregationTypeError",
    "OperatorStats",
    "Row",
    "filter_rows",
    "group_aggregate",
    "hash_join",
    "indexed_nl_join",
    "merge_partial_aggregates",
    "partial_aggregate",
    "project_rows",
    "sort_rows",
    "top_k",
    "ExecReport",
    "ParallelExecutor",
    "Partitions",
    "StageTiming",
    "costs",
    "DistributedDiscoveryResult",
    "run_distributed_discovery",
]
