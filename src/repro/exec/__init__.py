"""Execution engine: the limited physical-operator vocabulary and the
distributed executor that runs it over the simulated cluster.

Implements Section 3.3's execution story: few physical operators, data
reduced at data nodes, joined/sorted/aggregated on grid work crews,
updated consistently through cluster nodes — with every step charged to
node timelines and the network so experiments measure makespans and
bytes on the wire.
"""

from repro.exec.operators import (
    AggSpec,
    AggregationTypeError,
    OperatorStats,
    Row,
    filter_rows,
    group_aggregate,
    hash_join,
    indexed_nl_join,
    merge_partial_aggregates,
    partial_aggregate,
    project_rows,
    sort_rows,
    top_k,
)
from repro.exec.parallel import (
    ExecReport,
    ParallelExecutor,
    Partitions,
    StageTiming,
)
from repro.exec.discovery_flow import (
    DistributedDiscoveryResult,
    run_distributed_discovery,
)
from repro.exec import costs

__all__ = [
    "AggSpec",
    "AggregationTypeError",
    "OperatorStats",
    "Row",
    "filter_rows",
    "group_aggregate",
    "hash_join",
    "indexed_nl_join",
    "merge_partial_aggregates",
    "partial_aggregate",
    "project_rows",
    "sort_rows",
    "top_k",
    "ExecReport",
    "ParallelExecutor",
    "Partitions",
    "StageTiming",
    "costs",
    "DistributedDiscoveryResult",
    "run_distributed_discovery",
]
