"""Impliance reproduction: a next-generation information management
appliance (CIDR 2007), rebuilt as a Python library with a simulated
cluster substrate.

Quick start::

    from repro import Impliance

    app = Impliance()
    app.ingest({"pid": 1, "name": "WidgetPro"}, table="products")
    app.ingest("Ms. Alice Johnson loves the WidgetPro!")
    app.discover()                      # asynchronous in production;
                                        # synchronous drain for scripts
    hits = app.search("widget")
    rows = app.sql("SELECT name FROM products").rows

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-claim reproductions.
"""

from repro.chaos import ChaosController, FaultEvent, FaultKind, FaultPlan, RetryPolicy
from repro.core.appliance import Impliance
from repro.core.config import ApplianceConfig
from repro.model.document import Document, DocumentKind
from repro.obs import Telemetry, format_snapshot
from repro.query.result import QueryResult
from repro.security.policy import Principal
from repro.serving import ServingConfig, Session, TenantSpec, WorkloadDriver

__version__ = "1.0.0"

__all__ = [
    "Impliance",
    "ApplianceConfig",
    "ServingConfig",
    "Session",
    "Principal",
    "TenantSpec",
    "WorkloadDriver",
    "ChaosController",
    "Document",
    "DocumentKind",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "RetryPolicy",
    "Telemetry",
    "QueryResult",
    "format_snapshot",
    "__version__",
]
