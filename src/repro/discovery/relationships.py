"""Cross-document relationship discovery → join indexes (Section 3.2).

"As another example, a purchase order can be identified to reference
several master data records ... Discovered relationships can be stored
as join indexes and utilized at query time."

Two discovery mechanisms:

* :class:`RelationshipRule` — a declarative link: when an annotation's
  payload value equals a master-data value at some path, emit an edge
  (e.g. product mention in a transcript → the product master row).
* :class:`CoMentionRule` — two documents mentioning the same resolved
  entity get a ``co_mentions`` edge (partnership chains in the legal
  use case).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set

from repro.index.joins import JoinEdge, JoinIndex
from repro.index.structural import ValueIndex
from repro.model.annotations import Annotation
from repro.model.values import Path


@dataclass(frozen=True)
class RelationshipRule:
    """Link annotations to master data by value equality.

    Parameters
    ----------
    relation:
        Name of the emitted relation (edge label).
    annotation_label:
        Which annotations trigger the rule.
    payload_field:
        The payload key whose value is looked up.
    target_path:
        Content path in master documents where the value must appear.
    """

    relation: str
    annotation_label: str
    payload_field: str
    target_path: Path

    def __post_init__(self) -> None:
        object.__setattr__(self, "target_path", tuple(self.target_path))


class RelationshipDiscoverer:
    """Applies relationship rules as annotations stream through."""

    def __init__(
        self,
        rules: Iterable[RelationshipRule],
        value_index: ValueIndex,
        join_index: JoinIndex,
    ) -> None:
        self._rules: Dict[str, List[RelationshipRule]] = {}
        for rule in rules:
            self._rules.setdefault(rule.annotation_label, []).append(rule)
        self._values = value_index
        self._joins = join_index
        self.edges_added = 0

    def rules_for(self, label: str) -> List[RelationshipRule]:
        return list(self._rules.get(label, ()))

    def add_rule(self, rule: RelationshipRule) -> None:
        """Install a rule at runtime (rules may arrive after data)."""
        self._rules.setdefault(rule.annotation_label, []).append(rule)

    def on_annotation(self, annotation: Annotation) -> List[JoinEdge]:
        """Apply matching rules to one annotation; returns new edges."""
        added: List[JoinEdge] = []
        for rule in self._rules.get(annotation.label, ()):
            value = annotation.payload.get(rule.payload_field)
            if value is None:
                continue
            for target in sorted(self._values.docs_with_value(rule.target_path, value)):
                if target == annotation.subject_id:
                    continue
                edge = JoinEdge(
                    relation=rule.relation,
                    from_doc=annotation.subject_id,
                    to_doc=target,
                    confidence=annotation.confidence,
                    payload={rule.payload_field: value},
                )
                if self._joins.add(edge):
                    self.edges_added += 1
                    added.append(edge)
        return added


class CoMentionRule:
    """Emit ``co_mentions`` edges among documents sharing an entity.

    To keep the edge count linear in practice, each new mention links
    the new document to at most *fan_limit* earlier documents of the
    same entity.
    """

    def __init__(self, join_index: JoinIndex, relation: str = "co_mentions",
                 fan_limit: int = 8) -> None:
        if fan_limit < 1:
            raise ValueError("fan_limit must be >= 1")
        self._joins = join_index
        self.relation = relation
        self.fan_limit = fan_limit
        self.edges_added = 0

    def on_entity_docs(self, new_doc: str, existing_docs: Set[str]) -> List[JoinEdge]:
        added: List[JoinEdge] = []
        others = sorted(d for d in existing_docs if d != new_doc)[: self.fan_limit]
        for other in others:
            a, b = sorted((new_doc, other))
            edge = JoinEdge(relation=self.relation, from_doc=a, to_doc=b, confidence=0.7)
            if self._joins.add(edge):
                self.edges_added += 1
                added.append(edge)
        return added
