"""Piggybacked data mining (paper Section 3.2).

"Impliance will optionally piggyback data mining algorithms on discovery
passes, or perform both opportunistically on any page retrieved into the
buffer for other reasons, to more proactively discover trends and
exceptions in the data."

:class:`PiggybackMiner` subscribes to buffer-pool page traffic: every
page pulled in for *any* reason gets mined for term co-occurrence and
running numeric statistics, for free.  Coverage (fraction of distinct
documents mined) is the DISC experiment's metric: how far does
opportunistic mining get without dedicated scans?
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.index.text import tokenize
from repro.model.document import DocumentKind
from repro.model.values import Path, classify_value, coerce_numeric
from repro.storage.bufferpool import BufferPool, PageKey
from repro.storage.pages import Page


@dataclass
class NumericSummary:
    """Welford running mean/variance for one path."""

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0

    def update(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        return self.m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def zscore(self, value: float) -> float:
        sd = self.stddev
        return (value - self.mean) / sd if sd > 0 else 0.0


class PiggybackMiner:
    """Opportunistic mining over buffer-pool page traffic."""

    def __init__(self, top_terms_per_doc: int = 12) -> None:
        self.top_terms_per_doc = top_terms_per_doc
        self._seen_docs: Set[str] = set()
        self._pages_observed = 0
        self._term_counts: Counter = Counter()
        self._pair_counts: Counter = Counter()
        self._numeric: Dict[Path, NumericSummary] = defaultdict(NumericSummary)
        self._numeric_values: Dict[Path, List[Tuple[str, float]]] = defaultdict(list)

    # ------------------------------------------------------------------
    def attach(self, pool: BufferPool) -> None:
        """Subscribe to a buffer pool's demand reads."""
        pool.page_observers.append(self.observe_page)

    def observe_page(self, key: PageKey, page: Page) -> None:
        """Mine every not-yet-seen document on an accessed page."""
        self._pages_observed += 1
        for document in page.documents():
            if document.doc_id in self._seen_docs:
                continue
            self._seen_docs.add(document.doc_id)
            self._mine_document(document)

    def _mine_document(self, document) -> None:
        # Annotation documents echo extracted values plus pipeline
        # bookkeeping; mining their terms would report the pipeline's own
        # vocabulary as a corpus trend.  Their numeric payloads (amounts,
        # scores) are still worth summarizing.
        if document.kind is not DocumentKind.ANNOTATION:
            terms = [
                t for t, _ in
                Counter(tokenize(document.text)).most_common(self.top_terms_per_doc)
            ]
            self._term_counts.update(terms)
            for i, a in enumerate(terms):
                for b in terms[i + 1:]:
                    self._pair_counts[tuple(sorted((a, b)))] += 1
        for path, value in document.paths():
            if value is None:
                continue
            if classify_value(value).is_numeric:
                try:
                    number = coerce_numeric(value)
                except (TypeError, ValueError):
                    continue
                self._numeric[path].update(number)
                self._numeric_values[path].append((document.doc_id, number))

    # ------------------------------------------------------------------
    # reports
    # ------------------------------------------------------------------
    @property
    def docs_mined(self) -> int:
        return len(self._seen_docs)

    @property
    def pages_observed(self) -> int:
        return self._pages_observed

    def coverage(self, total_docs: int) -> float:
        """Fraction of the corpus reached opportunistically."""
        if total_docs <= 0:
            return 0.0
        return min(1.0, len(self._seen_docs) / total_docs)

    def top_terms(self, n: int = 10) -> List[Tuple[str, int]]:
        return self._term_counts.most_common(n)

    def top_cooccurrences(self, n: int = 10) -> List[Tuple[Tuple[str, str], int]]:
        """Most frequent term pairs — the "trends" report."""
        return self._pair_counts.most_common(n)

    def summary(self, path: Path) -> Optional[NumericSummary]:
        return self._numeric.get(tuple(path))

    def exceptions(self, path: Path, z_threshold: float = 3.0) -> List[Tuple[str, float, float]]:
        """Outlier values under *path*: (doc_id, value, z-score).

        The "exceptions" the paper wants surfaced proactively — e.g. a
        claim amount far outside the norm for its cohort.
        """
        path = tuple(path)
        summary = self._numeric.get(path)
        if summary is None or summary.count < 3:
            return []
        result = []
        for doc_id, value in self._numeric_values[path]:
            z = summary.zscore(value)
            if abs(z) >= z_threshold:
                result.append((doc_id, value, round(z, 3)))
        result.sort(key=lambda t: -abs(t[2]))
        return result
