"""The discovery engine: asynchronous enrichment passes (Figure 1).

"All data entering into Impliance will also go through a number of
asynchronous analysis phases."  Documents queue up as they are infused;
:meth:`DiscoveryEngine.run_pass` is the background task that drains the
queue under a budget, running annotators, persisting annotation
documents, resolving entities, and registering discovered relationships
as join-index edges.  Ingest never waits on any of this — the property
the DISC experiment measures.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Iterable, List, Optional, Sequence, Set

from repro.discovery.annotators import Annotator
from repro.discovery.relationships import CoMentionRule, RelationshipDiscoverer, RelationshipRule
from repro.discovery.resolution import EntityResolver, Mention
from repro.model.annotations import Annotation, make_annotation_document
from repro.model.document import Document, DocumentKind
from repro.model.schema import SchemaRegistry
from repro.obs.telemetry import DISABLED, Telemetry
from repro.util import IdGenerator

#: Queue ids resolved per dequeue chunk inside a pass.
DRAIN_BATCH = 64


@dataclass
class DiscoveryStats:
    docs_processed: int = 0
    annotations_created: int = 0
    edges_added: int = 0
    passes: int = 0


class DiscoveryEngine:
    """Coordinates annotators, resolution, and relationship discovery.

    Parameters
    ----------
    repository:
        Engine-protocol repository (indexes + lookup) whose join index
        receives discovered edges.
    persist:
        Callable persisting a new annotation document (the appliance
        routes it to storage + indexing).  Returns the stored document.
    annotators:
        The annotator suite to run.
    rules:
        Declarative relationship rules (annotation → master data).
    entity_labels:
        Payload fields per annotation label to feed entity resolution,
        e.g. ``{"person": "name"}``; resolved entities generate
        co-mention edges.
    """

    def __init__(
        self,
        repository,
        persist: Callable[[Document], Document],
        annotators: Sequence[Annotator],
        rules: Iterable[RelationshipRule] = (),
        entity_labels: Optional[Dict[str, str]] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.repository = repository
        self.telemetry = telemetry if telemetry is not None else DISABLED
        self._persist = persist
        self.annotators = list(annotators)
        self.schema_registry = SchemaRegistry()
        self.resolver = EntityResolver()
        self._entity_labels = dict(entity_labels or {"person": "name"})
        self._relationships = RelationshipDiscoverer(
            rules, repository.indexes.values, repository.indexes.joins
        )
        self._co_mentions = CoMentionRule(repository.indexes.joins)
        self._queue: Deque[str] = deque()
        self._queued: Set[str] = set()
        self._processed: Set[tuple] = set()  # (doc_id, version) already done
        self._ids = IdGenerator("ann")
        self.stats = DiscoveryStats()

    # ------------------------------------------------------------------
    def enqueue(self, document: Document) -> None:
        """Register a newly infused document for future discovery.

        Annotation documents are not re-annotated by default (that keeps
        the pipeline loop-free); everything else queues once per version.
        """
        if document.kind is DocumentKind.ANNOTATION:
            return
        if document.doc_id in self._queued:
            return
        if document.vid in self._processed:
            # Already annotated this exact version — re-homed replicas
            # after a node failure must not trigger duplicate discovery.
            return
        self._queue.append(document.doc_id)
        self._queued.add(document.doc_id)

    def enqueue_many(self, documents: Sequence[Document]) -> int:
        """Register one ingest batch, in arrival order.

        Queue order (and therefore annotation-id assignment, which is
        sequential) is exactly what per-document :meth:`enqueue` calls
        over the same sequence would produce.  Returns how many joined
        the queue; the backlog gauge updates once for the batch.
        """
        before = len(self._queue)
        for document in documents:
            self.enqueue(document)
        added = len(self._queue) - before
        self.telemetry.set_gauge("discovery.backlog", len(self._queue))
        return added

    @property
    def backlog(self) -> int:
        return len(self._queue)

    def add_rule(self, rule: RelationshipRule) -> None:
        """Install a relationship rule at runtime."""
        self._relationships.add_rule(rule)

    # ------------------------------------------------------------------
    def run_pass(self, budget: Optional[int] = None) -> int:
        """Process up to *budget* queued documents; returns how many.

        The queue drains in dequeue batches (up to :data:`DRAIN_BATCH`
        ids resolved against the repository per chunk) rather than one
        pop per loop; processing order is unchanged.  One document's
        processing: schema registration, every applicable annotator,
        annotation persistence, entity resolution, and relationship
        rules.
        """
        processed = 0
        with self.telemetry.span("discovery.pass") as span:
            while self._queue and (budget is None or processed < budget):
                room = DRAIN_BATCH if budget is None else min(DRAIN_BATCH, budget - processed)
                for document in self._dequeue_batch(room):
                    self.process_document(document)
                    processed += 1
            span.tag("processed", processed)
        if processed:
            self.stats.passes += 1
            self.telemetry.inc("discovery.passes")
        self.telemetry.set_gauge("discovery.backlog", len(self._queue))
        return processed

    def _dequeue_batch(self, limit: int) -> List[Document]:
        """Pop up to *limit* resolvable documents off the queue.

        Ids whose document vanished (superseded before discovery got to
        them and then unreachable) are skipped without consuming budget,
        matching the old one-at-a-time behavior.
        """
        batch: List[Document] = []
        while self._queue and len(batch) < limit:
            doc_id = self._queue.popleft()
            self._queued.discard(doc_id)
            document = self.repository.lookup(doc_id)
            if document is not None:
                batch.append(document)
        return batch

    def process_document(self, document: Document) -> List[Document]:
        """Run the full discovery suite on one document; returns the
        persisted annotation documents."""
        with self.telemetry.span("discovery.doc", doc=document.doc_id) as span:
            self.schema_registry.register(document)
            self._processed.add(document.vid)
            persisted: List[Document] = []
            for annotator in self.annotators:
                if not annotator.applies_to(document):
                    continue
                for annotation in annotator.annotate(document):
                    persisted.append(self._handle_annotation(annotation))
            span.tag("annotations", len(persisted))
        self.stats.docs_processed += 1
        self.telemetry.inc("discovery.docs_processed")
        return persisted

    def _handle_annotation(self, annotation: Annotation) -> Document:
        ann_doc = make_annotation_document(self._ids.next(), annotation)
        stored = self._persist(ann_doc)
        self.stats.annotations_created += 1
        self.telemetry.inc("discovery.annotations")

        edges = self._relationships.on_annotation(annotation)
        self.stats.edges_added += len(edges)
        if edges:
            self.telemetry.inc("discovery.edges", len(edges))

        payload_field = self._entity_labels.get(annotation.label)
        if payload_field is not None:
            value = annotation.payload.get(payload_field)
            if value:
                entity = self.resolver.resolve(
                    Mention(annotation.subject_id, str(value), annotation.label)
                )
                co_edges = self._co_mentions.on_entity_docs(
                    annotation.subject_id, entity.doc_ids
                )
                self.stats.edges_added += len(co_edges)
                if co_edges:
                    self.telemetry.inc("discovery.edges", len(co_edges))
        return stored

    # ------------------------------------------------------------------
    def drain(self, batch: int = 64) -> int:
        """Run passes until the backlog is empty; returns total processed."""
        total = 0
        while self._queue:
            total += self.run_pass(batch)
        return total
