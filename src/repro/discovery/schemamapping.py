"""Schema mapping and consolidation (paper Section 3.2, refs Clio).

"Second, using schema mapping technologies, structures from different
sources can be consolidated.  Thus, customer purchase orders can all be
searched together, whether they are ingested into Impliance via e-mail,
a spreadsheet, a Microsoft Word document, a relational row, or other
formats."

The mapper proposes *path correspondences* between a source schema and a
target (canonical) schema by combining three signals, in the spirit of
instance-based matchers:

1. **name similarity** of the leaf path component (token overlap plus a
   synonym lexicon: qty≈quantity, amt≈amount, ...),
2. **type compatibility** of the inferred value types,
3. **value overlap** between sample instances (Jaccard on normalized
   values), which catches renames that names alone would miss.

Accepted correspondences rewrite documents into *derived* consolidated
documents that reference their originals — so the unified view is just
more documents, searchable and queryable by all the existing machinery.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.model.document import Document, DocumentKind
from repro.model.schema import DocumentSchema, infer_schema
from repro.model.values import Path, ValueType

#: Built-in synonym groups for common business-field abbreviations.
DEFAULT_SYNONYMS: Tuple[Tuple[str, ...], ...] = (
    ("quantity", "qty", "count", "units"),
    ("amount", "amt", "total", "price", "cost", "value"),
    ("customer", "cust", "client", "buyer", "account"),
    ("identifier", "id", "number", "num", "no", "key"),
    ("date", "day", "when", "time"),
    ("product", "item", "sku", "article"),
    ("address", "addr", "location"),
    ("description", "desc", "note", "notes", "comment"),
)


def _tokens(name: str) -> List[str]:
    """Split a field name into lowercase tokens (camelCase, snake_case)."""
    spaced = re.sub(r"(?<=[a-z0-9])(?=[A-Z])", " ", name)
    return [t for t in re.split(r"[^a-zA-Z0-9]+", spaced.lower()) if t]


@dataclass(frozen=True)
class PathCorrespondence:
    """One proposed mapping: source path → target path."""

    source: Path
    target: Path
    confidence: float
    signals: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "source", tuple(self.source))
        object.__setattr__(self, "target", tuple(self.target))
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError("confidence must lie in [0, 1]")


@dataclass
class SchemaMapping:
    """An accepted set of correspondences into one target schema."""

    target_root: str
    correspondences: List[PathCorrespondence] = field(default_factory=list)

    def target_of(self, source: Path) -> Optional[Path]:
        source = tuple(source)
        for correspondence in self.correspondences:
            if correspondence.source == source:
                return correspondence.target
        return None

    @property
    def mapped_sources(self) -> Set[Path]:
        return {c.source for c in self.correspondences}


class SchemaMapper:
    """Proposes and applies mappings between document schemas."""

    def __init__(
        self,
        synonyms: Iterable[Iterable[str]] = DEFAULT_SYNONYMS,
        accept_threshold: float = 0.5,
        sample_size: int = 32,
    ) -> None:
        if not 0.0 < accept_threshold <= 1.0:
            raise ValueError("accept_threshold must be in (0, 1]")
        self._syn_group: Dict[str, int] = {}
        for group_id, group in enumerate(synonyms):
            for word in group:
                self._syn_group[word.lower()] = group_id
        self.accept_threshold = accept_threshold
        self.sample_size = sample_size

    # ------------------------------------------------------------------
    # signals
    # ------------------------------------------------------------------
    def name_similarity(self, a: Path, b: Path) -> float:
        """Token overlap of the leaf names, synonym groups unified."""
        if not a or not b:
            return 0.0
        ta = self._canonical_tokens(a[-1])
        tb = self._canonical_tokens(b[-1])
        if not ta or not tb:
            return 0.0
        overlap = len(ta & tb) / len(ta | tb)
        if a[-1].lower() == b[-1].lower():
            overlap = 1.0
        return overlap

    def _canonical_tokens(self, name: str) -> Set:
        canon = set()
        for token in _tokens(name):
            group = self._syn_group.get(token)
            canon.add(("syn", group) if group is not None else ("tok", token))
        return canon

    @staticmethod
    def type_compatible(a: Optional[ValueType], b: Optional[ValueType]) -> bool:
        if a is None or b is None:
            return True
        if a == b:
            return True
        numeric = {ValueType.INTEGER, ValueType.FLOAT, ValueType.MONEY}
        stringy = {ValueType.STRING, ValueType.TEXT}
        return (a in numeric and b in numeric) or (a in stringy and b in stringy)

    @staticmethod
    def _normalize(value: Any) -> str:
        return str(value).strip().lower()

    def value_overlap(
        self, source_values: Sequence[Any], target_values: Sequence[Any]
    ) -> float:
        sa = {self._normalize(v) for v in source_values if v is not None}
        sb = {self._normalize(v) for v in target_values if v is not None}
        if not sa or not sb:
            return 0.0
        return len(sa & sb) / len(sa | sb)

    # ------------------------------------------------------------------
    # mapping proposal
    # ------------------------------------------------------------------
    def _sample_values(self, documents: Sequence[Document], path: Path) -> List[Any]:
        values: List[Any] = []
        for document in documents[: self.sample_size]:
            values.extend(document.get(path))
        return values

    def propose(
        self,
        source_docs: Sequence[Document],
        target_docs: Sequence[Document],
        target_root: str,
    ) -> SchemaMapping:
        """Propose a mapping from the source documents' schema into the
        target documents' schema.

        Greedy best-first assignment: each source path maps to its
        best-scoring unclaimed target path above the accept threshold.
        Score = 0.6·name + 0.4·value-overlap, gated on type compatibility.
        """
        if not source_docs or not target_docs:
            raise ValueError("need sample documents on both sides")
        source_schema = self._merged_schema(source_docs)
        target_schema = self._merged_schema(target_docs)

        scored: List[Tuple[float, Path, Path, Tuple[str, ...]]] = []
        for source_path in sorted(source_schema.fields):
            for target_path in sorted(target_schema.fields):
                if not self.type_compatible(
                    source_schema.type_of(source_path),
                    target_schema.type_of(target_path),
                ):
                    continue
                name_score = self.name_similarity(source_path, target_path)
                value_score = self.value_overlap(
                    self._sample_values(list(source_docs), source_path),
                    self._sample_values(list(target_docs), target_path),
                )
                score = 0.6 * name_score + 0.4 * value_score
                if score <= 0:
                    continue
                signals = tuple(
                    s for s, v in (("name", name_score), ("values", value_score)) if v > 0
                )
                scored.append((score, source_path, target_path, signals))

        scored.sort(key=lambda item: (-item[0], item[1], item[2]))
        mapping = SchemaMapping(target_root=target_root)
        used_sources: Set[Path] = set()
        used_targets: Set[Path] = set()
        for score, source_path, target_path, signals in scored:
            if score < self.accept_threshold:
                break
            if source_path in used_sources or target_path in used_targets:
                continue
            used_sources.add(source_path)
            used_targets.add(target_path)
            mapping.correspondences.append(
                PathCorrespondence(source_path, target_path, round(score, 4), signals)
            )
        return mapping

    @staticmethod
    def _merged_schema(documents: Sequence[Document]) -> DocumentSchema:
        merged: Optional[DocumentSchema] = None
        for document in documents:
            schema = infer_schema(document)
            merged = schema if merged is None else merged.merge(schema)
        assert merged is not None
        return merged

    # ------------------------------------------------------------------
    # duplicate detection (§2.2: don't "double-count revenues contained
    # in diverse sources (e.g., e-mail and a spreadsheet)")
    # ------------------------------------------------------------------
    def find_duplicate(
        self,
        document: Document,
        mapping: SchemaMapping,
        targets: Sequence[Document],
        min_matching_fields: int = 4,
    ) -> Optional[str]:
        """Return the doc_id of a target that is the *same business
        object* as *document*, or ``None``.

        Two records match when at least *min_matching_fields* mapped
        fields agree on (normalized) value — the instance-level test
        that catches the same purchase order arriving through two
        channels.
        """
        mapped_values: Dict[Path, str] = {}
        for correspondence in mapping.correspondences:
            values = document.get(correspondence.source)
            if values:
                mapped_values[correspondence.target] = self._normalize(values[0])
        if len(mapped_values) < min_matching_fields:
            return None
        for target in targets:
            matches = 0
            for target_path, value in mapped_values.items():
                target_values = [self._normalize(v) for v in target.get(target_path)]
                if value in target_values:
                    matches += 1
            if matches >= min_matching_fields:
                return target.doc_id
        return None

    # ------------------------------------------------------------------
    # consolidation
    # ------------------------------------------------------------------
    def consolidate(
        self, document: Document, mapping: SchemaMapping, doc_id: str
    ) -> Document:
        """Rewrite *document* into the target schema as a DERIVED doc.

        Unmapped source paths are preserved under ``_unmapped`` so the
        consolidation is lossless (the original is referenced anyway).
        """
        content: Dict[str, Any] = {}
        unmapped: Dict[str, Any] = {}
        for path, value in document.paths():
            target = mapping.target_of(path)
            if target is not None:
                # Target paths carry the canonical root (they came from
                # target-side documents); the rewrite re-roots below.
                if target and target[0] == mapping.target_root:
                    target = target[1:]
                if not target:
                    continue
                node = content
                for key in target[:-1]:
                    node = node.setdefault(key, {})
                existing = node.get(target[-1])
                if existing is None:
                    node[target[-1]] = value
                elif isinstance(existing, list):
                    existing.append(value)
                else:
                    node[target[-1]] = [existing, value]
            else:
                unmapped["/".join(path)] = value
        if unmapped:
            content["_unmapped"] = unmapped
        return Document(
            doc_id=doc_id,
            content={mapping.target_root: content},
            kind=DocumentKind.DERIVED,
            source_format="consolidated",
            metadata={
                "table": mapping.target_root,
                "consolidated_from": document.doc_id,
                "original_format": document.source_format,
            },
            refs=(document.doc_id,),
        )
