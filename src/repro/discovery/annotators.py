"""Annotators: rule- and lexicon-based information extraction.

"Additional metadata will be extracted for each document by running
different kinds of annotators.  This will identify not only entities
such as person names and locations, but also relationships among them."
(Section 3.2)

Each annotator declares what it applies to and emits
:class:`~repro.model.annotations.Annotation` objects with character
spans into the document's text projection.  The UIMA-style statistical
annotators of the paper are substituted by deterministic rule/lexicon
extractors (see DESIGN.md) — the pipeline behaviour they exercise is
identical.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional, Pattern, Set, Tuple

from repro.model.annotations import Annotation, Span
from repro.model.document import Document, DocumentKind


class Annotator:
    """Base annotator: subclasses implement :meth:`annotate`."""

    #: Annotator name; also recorded on every annotation produced.
    name: str = "annotator"

    def applies_to(self, document: Document) -> bool:
        """Default: any non-annotation document with text content."""
        if document.kind is DocumentKind.ANNOTATION:
            return False
        return bool(document.text)

    def annotate(self, document: Document) -> List[Annotation]:
        raise NotImplementedError


class RegexAnnotator(Annotator):
    """Extract every match of a pattern as one annotation.

    Parameters
    ----------
    name / label:
        Annotator identity and the label its annotations carry.
    pattern:
        Compiled or raw regular expression; group 0 is the payload value.
    payload_field:
        Key under which the matched text is stored in the payload.
    normalizer:
        Optional callable cleaning the matched text before storage.
    """

    def __init__(
        self,
        name: str,
        label: str,
        pattern,
        payload_field: str = "value",
        normalizer=None,
        confidence: float = 0.9,
    ) -> None:
        self.name = name
        self.label = label
        self.pattern: Pattern[str] = (
            pattern if isinstance(pattern, re.Pattern) else re.compile(pattern)
        )
        self.payload_field = payload_field
        self.normalizer = normalizer
        self.confidence = confidence

    def annotate(self, document: Document) -> List[Annotation]:
        text = document.text
        annotations = []
        for match in self.pattern.finditer(text):
            value = match.group(0)
            if self.normalizer is not None:
                value = self.normalizer(value)
            annotations.append(
                Annotation(
                    annotator=self.name,
                    label=self.label,
                    subject_id=document.doc_id,
                    payload={self.payload_field: value},
                    spans=[Span(match.start(), match.end())],
                    confidence=self.confidence,
                )
            )
        return annotations


def phone_annotator() -> RegexAnnotator:
    """US-style phone numbers."""
    return RegexAnnotator(
        name="phone",
        label="phone",
        pattern=r"\(?\b\d{3}\)?[-. ]\d{3}[-.]\d{4}\b",
        payload_field="number",
        normalizer=lambda s: re.sub(r"[^\d]", "", s),
    )


def money_annotator() -> RegexAnnotator:
    """Currency amounts like $1,234.56."""
    return RegexAnnotator(
        name="money",
        label="money",
        pattern=r"[$€£]\s?\d[\d,]*(?:\.\d{1,2})?",
        payload_field="amount",
        normalizer=lambda s: s.replace(",", "").lstrip("$€£ "),
    )


def date_annotator() -> RegexAnnotator:
    """ISO dates (2007-01-10)."""
    return RegexAnnotator(
        name="date",
        label="date",
        pattern=r"\b\d{4}-\d{2}-\d{2}\b",
        payload_field="date",
        confidence=0.95,
    )


def email_address_annotator() -> RegexAnnotator:
    return RegexAnnotator(
        name="email-address",
        label="email_address",
        pattern=r"\b[\w.+-]+@[\w-]+\.[\w.]+\b",
        payload_field="address",
        normalizer=str.lower,
    )


class LexiconAnnotator(Annotator):
    """Extract occurrences of a known vocabulary (products, locations,
    medical procedures...).  Matching is case-insensitive on word
    boundaries; multi-word entries are supported."""

    def __init__(
        self,
        name: str,
        label: str,
        lexicon: Iterable[str],
        payload_field: str = "value",
        confidence: float = 0.85,
    ) -> None:
        self.name = name
        self.label = label
        self.payload_field = payload_field
        self.confidence = confidence
        entries = sorted({e.strip() for e in lexicon if e.strip()}, key=len, reverse=True)
        if not entries:
            raise ValueError(f"annotator {name!r} needs a non-empty lexicon")
        self._canonical = {e.lower(): e for e in entries}
        escaped = "|".join(re.escape(e) for e in entries)
        self.pattern = re.compile(rf"\b(?:{escaped})\b", re.IGNORECASE)

    def annotate(self, document: Document) -> List[Annotation]:
        text = document.text
        annotations = []
        for match in self.pattern.finditer(text):
            canonical = self._canonical[match.group(0).lower()]
            annotations.append(
                Annotation(
                    annotator=self.name,
                    label=self.label,
                    subject_id=document.doc_id,
                    payload={self.payload_field: canonical},
                    spans=[Span(match.start(), match.end())],
                    confidence=self.confidence,
                )
            )
        return annotations


class PersonAnnotator(Annotator):
    """Person names: honorific-triggered or Firstname Lastname shapes.

    A deterministic stand-in for a statistical NER model: matches
    "Mr./Ms./Dr. X [Y]" always, and capitalized bigrams when the first
    token is in the given-names lexicon.
    """

    name = "person"
    label = "person"

    _HONORIFIC = re.compile(
        r"\b(?:Mr|Ms|Mrs|Dr|Prof)\.?\s+([A-Z][a-z]+(?:\s+[A-Z][a-z]+)?)"
    )
    _BIGRAM = re.compile(r"\b([A-Z][a-z]+)\s+([A-Z][a-z]+)\b")

    DEFAULT_GIVEN_NAMES = frozenset(
        """alice bob carol david erin frank grace henry irene jack karen
        laura mike nancy oscar peggy quinn rachel steve trudy victor wendy
        maria john linda james sarah robert emma daniel olivia""".split()
    )

    def __init__(self, given_names: Optional[Iterable[str]] = None) -> None:
        names = given_names if given_names is not None else self.DEFAULT_GIVEN_NAMES
        self._given = {n.lower() for n in names}

    def annotate(self, document: Document) -> List[Annotation]:
        text = document.text
        annotations = []
        seen_spans: Set[Tuple[int, int]] = set()
        for match in self._HONORIFIC.finditer(text):
            span = (match.start(1), match.end(1))
            seen_spans.add(span)
            annotations.append(self._make(document, match.group(1), span, 0.95))
        for match in self._BIGRAM.finditer(text):
            span = (match.start(), match.end())
            if span in seen_spans:
                continue
            if match.group(1).lower() in self._given:
                annotations.append(
                    self._make(document, match.group(0), span, 0.8)
                )
        return annotations

    def _make(self, document: Document, name: str, span: Tuple[int, int], conf: float) -> Annotation:
        return Annotation(
            annotator=self.name,
            label=self.label,
            subject_id=document.doc_id,
            payload={"name": name},
            spans=[Span(span[0], span[1])],
            confidence=conf,
        )


class SentimentAnnotator(Annotator):
    """Document-level sentiment from a polarity lexicon.

    Emits one annotation per document with ``score`` in [-1, 1] and a
    discrete ``polarity`` — the "sentiment detection within a single
    document" task the paper assigns to data nodes (Section 3.3).
    """

    name = "sentiment"
    label = "sentiment"

    POSITIVE = frozenset(
        """good great excellent happy love wonderful fantastic pleased
        satisfied helpful resolved thanks thank perfect amazing easy
        recommend delighted impressed reliable fast""".split()
    )
    NEGATIVE = frozenset(
        """bad terrible awful unhappy hate horrible angry frustrated broken
        useless slow disappointed complaint problem issue fail failed
        cancel refund worst annoyed defective crash""".split()
    )

    def __init__(self, positive: Optional[Iterable[str]] = None,
                 negative: Optional[Iterable[str]] = None) -> None:
        self._positive = frozenset(positive) if positive is not None else self.POSITIVE
        self._negative = frozenset(negative) if negative is not None else self.NEGATIVE

    def annotate(self, document: Document) -> List[Annotation]:
        words = re.findall(r"[a-z']+", document.text.lower())
        pos = sum(1 for w in words if w in self._positive)
        neg = sum(1 for w in words if w in self._negative)
        total = pos + neg
        if total == 0:
            return []
        score = (pos - neg) / total
        polarity = "positive" if score > 0.2 else "negative" if score < -0.2 else "neutral"
        confidence = min(1.0, 0.5 + 0.1 * total)
        return [
            Annotation(
                annotator=self.name,
                label=self.label,
                subject_id=document.doc_id,
                payload={"score": round(score, 4), "polarity": polarity,
                         "positive_hits": pos, "negative_hits": neg},
                confidence=confidence,
            )
        ]


def default_annotators(
    products: Iterable[str] = (),
    locations: Iterable[str] = (),
    procedures: Iterable[str] = (),
) -> List[Annotator]:
    """The out-of-the-box annotator suite; lexicon-driven annotators are
    included only when a lexicon is supplied."""
    suite: List[Annotator] = [
        phone_annotator(),
        money_annotator(),
        date_annotator(),
        email_address_annotator(),
        PersonAnnotator(),
        SentimentAnnotator(),
    ]
    if products:
        suite.append(LexiconAnnotator("product", "product_mention", products, "product"))
    if locations:
        suite.append(LexiconAnnotator("location", "location", locations, "place"))
    if procedures:
        suite.append(LexiconAnnotator("procedure", "procedure_mention", procedures, "procedure"))
    return suite
