"""Entity resolution across documents (paper Section 3.2, ref [28]).

"Additional relationships across documents can be identified by running
various analyses on all pairs of documents (conceptually).  One such
example is entity relationship resolution."

The resolver clusters extracted entity mentions (person names, product
names...) into entities: normalized-key blocking first, then pairwise
similarity within a block — the standard way to avoid the quadratic
all-pairs pass the paper says is only conceptual.
"""

from __future__ import annotations

import re
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple


@dataclass(frozen=True)
class Mention:
    """One extracted entity mention."""

    doc_id: str
    text: str
    label: str = "entity"


@dataclass
class Entity:
    """A resolved entity: canonical name + all mentions."""

    entity_id: str
    canonical: str
    label: str
    mentions: List[Mention] = field(default_factory=list)

    @property
    def doc_ids(self) -> Set[str]:
        return {m.doc_id for m in self.mentions}

    @property
    def mention_count(self) -> int:
        return len(self.mentions)


def normalize_name(text: str) -> str:
    """Lowercase, strip punctuation/extra spaces, drop honorifics."""
    cleaned = re.sub(r"[^\w\s]", " ", text.lower())
    tokens = [t for t in cleaned.split() if t not in ("mr", "ms", "mrs", "dr", "prof")]
    return " ".join(tokens)


def token_similarity(a: str, b: str) -> float:
    """Jaccard similarity over name tokens, with last-token (surname)
    agreement counted double — cheap but effective for person names."""
    ta, tb = a.split(), b.split()
    if not ta or not tb:
        return 0.0
    sa, sb = set(ta), set(tb)
    jaccard = len(sa & sb) / len(sa | sb)
    surname_bonus = 0.25 if ta[-1] == tb[-1] else 0.0
    return min(1.0, jaccard + surname_bonus)


class EntityResolver:
    """Incremental entity resolution with blocking.

    Mentions are blocked by their normalized last token; within a block,
    a mention joins the most similar existing entity above
    ``similarity_threshold`` or founds a new one.  Resolution is
    incremental — mentions stream in from discovery passes.
    """

    def __init__(self, similarity_threshold: float = 0.5) -> None:
        if not 0.0 < similarity_threshold <= 1.0:
            raise ValueError("similarity_threshold must be in (0, 1]")
        self.similarity_threshold = similarity_threshold
        self._entities: Dict[str, Entity] = {}
        self._blocks: Dict[Tuple[str, str], List[str]] = defaultdict(list)
        self._next_id = 0

    # ------------------------------------------------------------------
    def resolve(self, mention: Mention) -> Entity:
        """Assign *mention* to an entity (possibly new); returns it."""
        normalized = normalize_name(mention.text)
        if not normalized:
            raise ValueError(f"mention {mention.text!r} normalizes to nothing")
        block_key = (mention.label, normalized.split()[-1])
        best: Optional[Entity] = None
        best_score = 0.0
        for entity_id in self._blocks[block_key]:
            entity = self._entities[entity_id]
            score = token_similarity(normalized, normalize_name(entity.canonical))
            if score > best_score:
                best, best_score = entity, score
        if best is not None and best_score >= self.similarity_threshold:
            best.mentions.append(mention)
            # Prefer the longest (most complete) name as canonical.
            if len(mention.text) > len(best.canonical):
                best.canonical = mention.text
            return best
        entity = Entity(
            entity_id=f"entity-{self._next_id:06d}",
            canonical=mention.text,
            label=mention.label,
            mentions=[mention],
        )
        self._next_id += 1
        self._entities[entity.entity_id] = entity
        self._blocks[block_key].append(entity.entity_id)
        return entity

    def resolve_all(self, mentions: Iterable[Mention]) -> List[Entity]:
        """Resolve a batch; returns the affected entities (deduplicated)."""
        touched: Dict[str, Entity] = {}
        for mention in mentions:
            entity = self.resolve(mention)
            touched[entity.entity_id] = entity
        return list(touched.values())

    # ------------------------------------------------------------------
    def entities(self, label: Optional[str] = None) -> List[Entity]:
        result = [
            e for e in self._entities.values()
            if label is None or e.label == label
        ]
        return sorted(result, key=lambda e: (-e.mention_count, e.entity_id))

    def entity_of(self, doc_id: str, text: str) -> Optional[Entity]:
        normalized = normalize_name(text)
        for entity in self._entities.values():
            for mention in entity.mentions:
                if mention.doc_id == doc_id and normalize_name(mention.text) == normalized:
                    return entity
        return None

    def co_mentioned(self, entity_id: str) -> Set[str]:
        """Doc-ids in which this entity appears — the basis of
        co-mention relationships."""
        entity = self._entities.get(entity_id)
        return entity.doc_ids if entity else set()

    @property
    def entity_count(self) -> int:
        return len(self._entities)
