"""Discovery engine: annotators, entity resolution, relationships, mining.

Implements Section 3.2's automatic information discovery: annotators add
annotation documents asynchronously, entity resolution clusters mentions,
relationship rules materialize join indexes, and a piggyback miner rides
buffer-pool traffic for trends and exceptions.
"""

from repro.discovery.annotators import (
    Annotator,
    LexiconAnnotator,
    PersonAnnotator,
    RegexAnnotator,
    SentimentAnnotator,
    date_annotator,
    default_annotators,
    email_address_annotator,
    money_annotator,
    phone_annotator,
)
from repro.discovery.resolution import (
    Entity,
    EntityResolver,
    Mention,
    normalize_name,
    token_similarity,
)
from repro.discovery.relationships import (
    CoMentionRule,
    RelationshipDiscoverer,
    RelationshipRule,
)
from repro.discovery.pipeline import DiscoveryEngine, DiscoveryStats
from repro.discovery.mining import NumericSummary, PiggybackMiner
from repro.discovery.schemamapping import (
    DEFAULT_SYNONYMS,
    PathCorrespondence,
    SchemaMapper,
    SchemaMapping,
)

__all__ = [
    "Annotator",
    "LexiconAnnotator",
    "PersonAnnotator",
    "RegexAnnotator",
    "SentimentAnnotator",
    "date_annotator",
    "default_annotators",
    "email_address_annotator",
    "money_annotator",
    "phone_annotator",
    "Entity",
    "EntityResolver",
    "Mention",
    "normalize_name",
    "token_similarity",
    "CoMentionRule",
    "RelationshipDiscoverer",
    "RelationshipRule",
    "DiscoveryEngine",
    "DiscoveryStats",
    "NumericSummary",
    "PiggybackMiner",
    "DEFAULT_SYNONYMS",
    "PathCorrespondence",
    "SchemaMapper",
    "SchemaMapping",
]
