"""Facet index for multi-faceted (guided) search (paper Section 3.2.1).

"Multi-faceted search, or guided search ... provides more analytical
functions such as drill-down and drill-across of the search results,
while at the same time masking schema complexity from the user."

A *facet* maps documents to one or more discrete values, either from a
content path or from annotation labels.  The index keeps value → doc-id
buckets per facet and can (a) count a result set along a facet
(drill-down menu), (b) intersect with a facet selection (drill-down), and
(c) compute numeric aggregates per facet bucket — the paper's extension
of faceted search "beyond just counting entities in one dimension".
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.model.document import Document
from repro.model.values import Path


@dataclass(frozen=True)
class FacetDefinition:
    """How to derive facet values from a document.

    ``extractor`` returns the facet values of a document (possibly
    several, possibly none).  :func:`path_facet` and convenience
    constructors cover the common cases.
    """

    name: str
    extractor: Callable[[Document], Sequence[Any]]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("facet name must be non-empty")


def path_facet(name: str, path: Path) -> FacetDefinition:
    """Facet fed by the values under a content path."""
    path = tuple(path)

    def extract(document: Document) -> Sequence[Any]:
        return [v for v in document.get(path) if v is not None]

    return FacetDefinition(name=name, extractor=extract)


def metadata_facet(name: str, key: str) -> FacetDefinition:
    """Facet fed by a metadata key (source format, table, annotator...)."""

    def extract(document: Document) -> Sequence[Any]:
        value = document.metadata.get(key)
        return [value] if value is not None else []

    return FacetDefinition(name=name, extractor=extract)


def source_format_facet(name: str = "format") -> FacetDefinition:
    """Facet over the ingest format — schema chaos made navigable."""

    def extract(document: Document) -> Sequence[Any]:
        return [document.source_format]

    return FacetDefinition(name=name, extractor=extract)


class FacetIndex:
    """Buckets of doc-ids per (facet, value)."""

    def __init__(self, definitions: Iterable[FacetDefinition] = ()) -> None:
        self._definitions: Dict[str, FacetDefinition] = {}
        self._buckets: Dict[str, Dict[Any, Set[str]]] = {}
        self._doc_values: Dict[str, Dict[str, List[Any]]] = defaultdict(dict)
        for definition in definitions:
            self.define(definition)

    # ------------------------------------------------------------------
    def define(self, definition: FacetDefinition) -> None:
        if definition.name in self._definitions:
            raise ValueError(f"facet {definition.name!r} already defined")
        self._definitions[definition.name] = definition
        self._buckets[definition.name] = defaultdict(set)

    def facet_names(self) -> List[str]:
        return sorted(self._definitions)

    # ------------------------------------------------------------------
    def add(self, document: Document) -> None:
        if document.doc_id in self._doc_values:
            self.remove(document.doc_id)
        per_facet: Dict[str, List[Any]] = {}
        for name, definition in self._definitions.items():
            values = list(definition.extractor(document))
            if not values:
                continue
            per_facet[name] = values
            for value in values:
                self._buckets[name][value].add(document.doc_id)
        self._doc_values[document.doc_id] = per_facet

    def remove(self, doc_id: str) -> None:
        per_facet = self._doc_values.pop(doc_id, None)
        if per_facet is None:
            return
        for name, values in per_facet.items():
            buckets = self._buckets[name]
            for value in values:
                bucket = buckets.get(value)
                if bucket is not None:
                    bucket.discard(doc_id)
                    if not bucket:
                        del buckets[value]

    # ------------------------------------------------------------------
    def docs_with(self, facet: str, value: Any) -> Set[str]:
        """Drill-down: documents whose *facet* includes *value*."""
        return set(self._buckets.get(facet, {}).get(value, set()))

    def counts(
        self, facet: str, within: Optional[Set[str]] = None, top: Optional[int] = None
    ) -> List[Tuple[Any, int]]:
        """Facet-value counts, optionally restricted to a result set.

        This is the navigation menu a guided-search UI renders next to
        the hits.
        """
        buckets = self._buckets.get(facet)
        if buckets is None:
            raise KeyError(f"no facet named {facet!r}")
        rows = []
        for value, docs in buckets.items():
            count = len(docs if within is None else docs & within)
            if count:
                rows.append((value, count))
        rows.sort(key=lambda kv: (-kv[1], repr(kv[0])))
        return rows[:top] if top is not None else rows

    def aggregate(
        self,
        facet: str,
        values_of: Callable[[str], Optional[float]],
        within: Optional[Set[str]] = None,
    ) -> Dict[Any, Dict[str, float]]:
        """Per-bucket numeric aggregation (count/sum/avg/min/max).

        *values_of* maps a doc-id to the measure being aggregated; docs
        yielding ``None`` are skipped.  This is the "more sophisticated
        analytical capability than just counting" of Section 3.2.1.
        """
        buckets = self._buckets.get(facet)
        if buckets is None:
            raise KeyError(f"no facet named {facet!r}")
        report: Dict[Any, Dict[str, float]] = {}
        for value, docs in buckets.items():
            selected = docs if within is None else docs & within
            measures = [m for m in (values_of(d) for d in selected) if m is not None]
            if not measures:
                continue
            report[value] = {
                "count": float(len(measures)),
                "sum": float(sum(measures)),
                "avg": float(sum(measures) / len(measures)),
                "min": float(min(measures)),
                "max": float(max(measures)),
            }
        return report

    @property
    def doc_count(self) -> int:
        return len(self._doc_values)
