"""Structural and value indexes (paper Section 3.2).

"Impliance automatically indexes each document by its values as well as
its structures (e.g., every path in the document) for efficient keyword
and structural search."

* :class:`StructuralIndex` answers "which documents contain path P"
  including suffix matches ("…/amount" matches ``/claim/amount`` and
  ``/order/amount``), which is what schema-chaotic data needs.
* :class:`ValueIndex` answers exact-value and numeric-range predicates
  per path; this is the index the simple planner's indexed-nested-loop
  join probes.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.model.document import Document
from repro.model.values import Path, classify_value, coerce_numeric


class StructuralIndex:
    """path → doc-ids, with suffix lookup for schema-agnostic queries."""

    def __init__(self) -> None:
        self._exact: Dict[Path, Set[str]] = defaultdict(set)
        self._by_leaf: Dict[str, Set[Path]] = defaultdict(set)
        self._doc_paths: Dict[str, Set[Path]] = {}

    def add(self, document: Document) -> None:
        paths = set(document.structure())
        if document.doc_id in self._doc_paths:
            self.remove(document.doc_id)
        self._doc_paths[document.doc_id] = paths
        for path in paths:
            self._exact[path].add(document.doc_id)
            if path:
                self._by_leaf[path[-1]].add(path)

    def add_group(self, paths: Iterable[Path], doc_ids: Sequence[str]) -> None:
        """Bulk-load *doc_ids* that all share one structural signature.

        Schema-chaotic data still arrives in structurally repetitive runs
        (every row of a table, every event of a sensor), so a batch
        usually collapses to a handful of signatures — one bucket
        ``update`` per path replaces one set-add per (document, path).

        The shared signature is stored as a single frozenset for every
        document in the group; that is safe because the index never
        mutates a stored path set (``remove`` only iterates it).
        """
        stale = [doc_id for doc_id in doc_ids if doc_id in self._doc_paths]
        for doc_id in stale:
            self.remove(doc_id)
        signature = frozenset(paths)
        for doc_id in doc_ids:
            self._doc_paths[doc_id] = signature
        for path in signature:
            self._exact[path].update(doc_ids)
            if path:
                self._by_leaf[path[-1]].add(path)

    def remove(self, doc_id: str) -> None:
        paths = self._doc_paths.pop(doc_id, None)
        if paths is None:
            return
        for path in paths:
            bucket = self._exact.get(path)
            if bucket is not None:
                bucket.discard(doc_id)
                if not bucket:
                    del self._exact[path]
                    if path:
                        leaf_paths = self._by_leaf.get(path[-1])
                        if leaf_paths is not None:
                            leaf_paths.discard(path)
                            if not leaf_paths:
                                del self._by_leaf[path[-1]]

    # ------------------------------------------------------------------
    def docs_with_path(self, path: Path) -> Set[str]:
        """Documents containing exactly *path*."""
        return set(self._exact.get(tuple(path), set()))

    def docs_with_suffix(self, suffix: Path) -> Set[str]:
        """Documents containing any path ending in *suffix*.

        ``docs_with_suffix(("amount",))`` finds amounts wherever they sit
        in heterogeneous schemas.
        """
        suffix = tuple(suffix)
        if not suffix:
            return set()
        result: Set[str] = set()
        for path in self._by_leaf.get(suffix[-1], set()):
            if path[-len(suffix):] == suffix:
                result |= self._exact[path]
        return result

    def paths_with_suffix(self, suffix: Path) -> List[Path]:
        suffix = tuple(suffix)
        if not suffix:
            return []
        return sorted(
            path
            for path in self._by_leaf.get(suffix[-1], set())
            if path[-len(suffix):] == suffix
        )

    def all_paths(self) -> List[Path]:
        return sorted(self._exact)

    @property
    def doc_count(self) -> int:
        return len(self._doc_paths)


@dataclass(frozen=True)
class RangeQuery:
    """A numeric range predicate on one path (inclusive bounds)."""

    path: Path
    low: Optional[float] = None
    high: Optional[float] = None

    def __post_init__(self) -> None:
        if self.low is not None and self.high is not None and self.low > self.high:
            raise ValueError("range low bound exceeds high bound")
        object.__setattr__(self, "path", tuple(self.path))


class ValueIndex:
    """(path, value) → doc-ids, plus sorted numeric entries per path."""

    def __init__(self) -> None:
        self._equality: Dict[Tuple[Path, Any], Set[str]] = defaultdict(set)
        self._numeric: Dict[Path, List[Tuple[float, str]]] = defaultdict(list)
        self._numeric_sorted: Dict[Path, bool] = defaultdict(lambda: True)
        self._doc_entries: Dict[str, Sequence[Tuple[Path, Any, Optional[float]]]] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def _normalize(value: Any) -> Any:
        if isinstance(value, str):
            return value.strip().lower()
        return value

    def add(self, document: Document) -> None:
        if document.doc_id in self._doc_entries:
            self.remove(document.doc_id)
        entries: List[Tuple[Path, Any, Optional[float]]] = []
        for path, value in document.paths():
            if value is None:
                continue
            normalized = self._normalize(value)
            self._equality[(path, normalized)].add(document.doc_id)
            numeric: Optional[float] = None
            if classify_value(value).is_numeric:
                try:
                    numeric = coerce_numeric(value)
                except (TypeError, ValueError):
                    numeric = None
            if numeric is not None:
                self._numeric[path].append((numeric, document.doc_id))
                self._numeric_sorted[path] = False
            entries.append((path, normalized, numeric))
        self._doc_entries[document.doc_id] = entries

    def add_entries(
        self, doc_id: str, entries: Sequence[Tuple[Path, Any, Optional[float]]]
    ) -> None:
        """Index pre-computed value entries (the batch path).

        *entries* is the projection's ``(path, normalized, numeric)``
        list, in document order — exactly what :meth:`add` derives by
        re-walking and re-classifying the content tree.  Final state and
        probe answers are identical to :meth:`add`.
        """
        if doc_id in self._doc_entries:
            self.remove(doc_id)
        equality = self._equality
        numeric_rows = self._numeric
        for path, normalized, numeric in entries:
            equality[(path, normalized)].add(doc_id)
            if numeric is not None:
                numeric_rows[path].append((numeric, doc_id))
                self._numeric_sorted[path] = False
        # The projection's entry tuple is immutable and remove() only
        # iterates it — no defensive copy needed on the batch path.
        self._doc_entries[doc_id] = entries

    def remove(self, doc_id: str) -> None:
        entries = self._doc_entries.pop(doc_id, None)
        if entries is None:
            return
        for path, normalized, numeric in entries:
            bucket = self._equality.get((path, normalized))
            if bucket is not None:
                bucket.discard(doc_id)
                if not bucket:
                    del self._equality[(path, normalized)]
            if numeric is not None:
                rows = self._numeric.get(path)
                if rows:
                    try:
                        rows.remove((numeric, doc_id))
                    except ValueError:
                        pass
                    if not rows:
                        del self._numeric[path]

    # ------------------------------------------------------------------
    def docs_with_value(self, path: Path, value: Any) -> Set[str]:
        """Documents where *path* holds exactly *value* (case-insensitive
        for strings)."""
        return set(self._equality.get((tuple(path), self._normalize(value)), set()))

    def docs_in_range(self, query: RangeQuery) -> Set[str]:
        """Documents whose numeric value at ``query.path`` lies in range."""
        rows = self._numeric.get(query.path)
        if not rows:
            return set()
        if not self._numeric_sorted[query.path]:
            rows.sort(key=lambda item: item[0])
            self._numeric_sorted[query.path] = True
        keys = [item[0] for item in rows]
        lo = 0 if query.low is None else bisect.bisect_left(keys, query.low)
        hi = len(rows) if query.high is None else bisect.bisect_right(keys, query.high)
        return {doc_id for _, doc_id in rows[lo:hi]}

    def values_of(self, path: Path) -> List[Any]:
        """Distinct indexed values under *path* (facet vocabulary)."""
        path = tuple(path)
        return sorted(
            {value for (p, value), docs in self._equality.items() if p == path and docs},
            key=repr,
        )

    def cardinality(self, path: Path, value: Any) -> int:
        return len(self._equality.get((tuple(path), self._normalize(value)), ()))

    @property
    def doc_count(self) -> int:
        return len(self._doc_entries)
