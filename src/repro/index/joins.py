"""Discovered join indexes and the association graph (paper Section 3.2).

"Discovered relationships can be stored as join indexes and utilized at
query time."  The discovery engine registers edges like
(transcript-doc) --mentions--> (product-row); the join index keeps them
per relation name, and the association graph view over all relations
answers the Section 3.2.1 connection query: "given two pieces of data,
we should be able to ask how they are connected."
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple


@dataclass(frozen=True)
class JoinEdge:
    """A directed, labeled association between two documents."""

    relation: str
    from_doc: str
    to_doc: str
    confidence: float = 1.0
    payload: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.relation:
            raise ValueError("relation name must be non-empty")
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError("confidence must lie in [0, 1]")
        object.__setattr__(self, "payload", dict(self.payload))

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.relation, self.from_doc, self.to_doc)


class JoinIndex:
    """Edges grouped by relation, with forward and reverse adjacency."""

    def __init__(self) -> None:
        self._edges: Dict[Tuple[str, str, str], JoinEdge] = {}
        self._forward: Dict[Tuple[str, str], Set[str]] = defaultdict(set)
        self._reverse: Dict[Tuple[str, str], Set[str]] = defaultdict(set)
        self._doc_edges: Dict[str, Set[Tuple[str, str, str]]] = defaultdict(set)

    # ------------------------------------------------------------------
    def add(self, edge: JoinEdge) -> bool:
        """Insert *edge*; a repeated key keeps the higher confidence.
        Returns True when the index changed."""
        existing = self._edges.get(edge.key)
        if existing is not None:
            if edge.confidence > existing.confidence:
                self._edges[edge.key] = edge
                return True
            return False
        self._edges[edge.key] = edge
        self._forward[(edge.relation, edge.from_doc)].add(edge.to_doc)
        self._reverse[(edge.relation, edge.to_doc)].add(edge.from_doc)
        self._doc_edges[edge.from_doc].add(edge.key)
        self._doc_edges[edge.to_doc].add(edge.key)
        return True

    def remove_doc(self, doc_id: str) -> int:
        """Drop every edge touching *doc_id*; returns how many."""
        keys = list(self._doc_edges.pop(doc_id, ()))
        for key in keys:
            edge = self._edges.pop(key, None)
            if edge is None:
                continue
            self._forward[(edge.relation, edge.from_doc)].discard(edge.to_doc)
            self._reverse[(edge.relation, edge.to_doc)].discard(edge.from_doc)
            other = edge.to_doc if edge.from_doc == doc_id else edge.from_doc
            self._doc_edges[other].discard(key)
        return len(keys)

    # ------------------------------------------------------------------
    def targets(self, relation: str, from_doc: str) -> Set[str]:
        """Join probe: all docs related to *from_doc* under *relation*."""
        return set(self._forward.get((relation, from_doc), set()))

    def sources(self, relation: str, to_doc: str) -> Set[str]:
        return set(self._reverse.get((relation, to_doc), set()))

    def edges_of(self, relation: str) -> List[JoinEdge]:
        return sorted(
            (e for e in self._edges.values() if e.relation == relation),
            key=lambda e: e.key,
        )

    def relations(self) -> List[str]:
        return sorted({e.relation for e in self._edges.values()})

    def degree(self, doc_id: str) -> int:
        return len(self._doc_edges.get(doc_id, ()))

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    # ------------------------------------------------------------------
    # association-graph queries
    # ------------------------------------------------------------------
    def neighbors(self, doc_id: str, relations: Optional[Set[str]] = None) -> Set[str]:
        """Documents one association step away, in either direction."""
        result: Set[str] = set()
        for key in self._doc_edges.get(doc_id, ()):
            edge = self._edges[key]
            if relations is not None and edge.relation not in relations:
                continue
            result.add(edge.to_doc if edge.from_doc == doc_id else edge.from_doc)
        result.discard(doc_id)
        return result

    def connection(
        self,
        source: str,
        target: str,
        max_hops: int = 4,
        relations: Optional[Set[str]] = None,
    ) -> Optional[List[str]]:
        """Shortest undirected association path source → target.

        Returns the doc-id path (inclusive), or ``None`` when the two are
        not connected within *max_hops* — the paper's "how are these two
        pieces of data connected" query.
        """
        if source == target:
            return [source]
        if max_hops < 1:
            return None
        frontier = deque([(source, [source])])
        visited = {source}
        while frontier:
            doc_id, path = frontier.popleft()
            if len(path) > max_hops:
                continue
            for neighbor in sorted(self.neighbors(doc_id, relations)):
                if neighbor in visited:
                    continue
                next_path = path + [neighbor]
                if neighbor == target:
                    return next_path
                visited.add(neighbor)
                frontier.append((neighbor, next_path))
        return None

    def transitive_closure(
        self,
        seed: str,
        relations: Optional[Set[str]] = None,
        max_hops: Optional[int] = None,
    ) -> Set[str]:
        """Everything reachable from *seed* via associations.

        This implements the legal-discovery requirement of Section 2.1.3:
        "the relevance of data may ... require determining the transitive
        closure of relationships extracted from the content."
        """
        reached: Set[str] = set()
        frontier = deque([(seed, 0)])
        visited = {seed}
        while frontier:
            doc_id, hops = frontier.popleft()
            if max_hops is not None and hops >= max_hops:
                continue
            for neighbor in self.neighbors(doc_id, relations):
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                reached.add(neighbor)
                frontier.append((neighbor, hops + 1))
        return reached
