"""Full-text inverted index with BM25 ranking (paper Section 3.3).

The paper would embed Lucene/Indri and extend them; we implement the
index directly with the extensions the paper asks for: positional
postings, incremental maintenance (documents and annotations arrive
continuously), and removal of superseded versions.
"""

from __future__ import annotations

import math
import re
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: Minimal stopword list: high-frequency glue words that would otherwise
#: dominate postings without adding retrieval signal.
STOPWORDS = frozenset(
    """a an and are as at be by for from has he in is it its of on or that the
    to was were will with this i you your we they not but have had do did
    s t""".split()
)

BM25_K1 = 1.2
BM25_B = 0.75


def tokenize(text: str) -> List[str]:
    """Lowercase word tokens, stopwords removed."""
    return [t for t in _TOKEN_RE.findall(text.lower()) if t not in STOPWORDS]


def tokenize_with_positions(text: str) -> List[Tuple[str, int]]:
    """Tokens with their ordinal positions (stopwords consume positions so
    phrase distances stay faithful to the original text)."""
    result = []
    for position, token in enumerate(_TOKEN_RE.findall(text.lower())):
        if token not in STOPWORDS:
            result.append((token, position))
    return result


@dataclass
class SearchHit:
    """One ranked result."""

    doc_id: str
    score: float

    def __iter__(self):
        return iter((self.doc_id, self.score))


@dataclass
class TextIndexStats:
    """Maintenance counters for the incremental-maintenance experiment."""

    adds: int = 0
    removes: int = 0
    rebuilds: int = 0
    postings_touched: int = 0


class InvertedIndex:
    """Positional inverted index over document text projections.

    Maintenance is incremental: :meth:`add` indexes one document,
    :meth:`remove` un-indexes a superseded version, and both touch only
    the postings of the terms involved — the property the IDX experiment
    compares against periodic full rebuilds.
    """

    def __init__(self) -> None:
        self._postings: Dict[str, Dict[str, List[int]]] = defaultdict(dict)
        self._doc_lengths: Dict[str, int] = {}
        self._total_length = 0
        self.stats = TextIndexStats()

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def add(self, doc_id: str, text: str) -> None:
        """Index *text* under *doc_id*; re-adding replaces the old entry."""
        if doc_id in self._doc_lengths:
            self.remove(doc_id)
        tokens = tokenize_with_positions(text)
        length = len(tokens)
        self._doc_lengths[doc_id] = length
        self._total_length += length
        for token, position in tokens:
            posting = self._postings[token].setdefault(doc_id, [])
            posting.append(position)
        self.stats.adds += 1
        self.stats.postings_touched += len({t for t, _ in tokens})

    def add_projected(
        self, doc_id: str, term_positions: Dict[str, List[int]], length: int
    ) -> None:
        """Index pre-tokenized postings (the batch path).

        The model projection already grouped positions per term, so this
        inserts one posting list per term instead of appending position by
        position.  Produces exactly the state and stats :meth:`add` would:
        *term_positions* must come from ``tokenize_with_positions`` of the
        document text (terms in first-occurrence order) and *length* is
        the total token count.
        """
        if doc_id in self._doc_lengths:
            self.remove(doc_id)
        self._doc_lengths[doc_id] = length
        self._total_length += length
        postings = self._postings
        for term, positions in term_positions.items():
            postings[term][doc_id] = list(positions)
        self.stats.adds += 1
        self.stats.postings_touched += len(term_positions)

    def remove(self, doc_id: str) -> None:
        """Un-index *doc_id* (no-op when absent)."""
        length = self._doc_lengths.pop(doc_id, None)
        if length is None:
            return
        self._total_length -= length
        emptied = []
        touched = 0
        for term, posting in self._postings.items():
            if doc_id in posting:
                del posting[doc_id]
                touched += 1
                if not posting:
                    emptied.append(term)
        for term in emptied:
            del self._postings[term]
        self.stats.removes += 1
        self.stats.postings_touched += touched

    def rebuild(self, corpus: Iterable[Tuple[str, str]]) -> None:
        """Discard everything and re-index *corpus* (the baseline the
        incremental path is compared against)."""
        self._postings.clear()
        self._doc_lengths.clear()
        self._total_length = 0
        for doc_id, text in corpus:
            self.add(doc_id, text)
        self.stats.rebuilds += 1

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def doc_count(self) -> int:
        return len(self._doc_lengths)

    @property
    def term_count(self) -> int:
        return len(self._postings)

    @property
    def average_doc_length(self) -> float:
        if not self._doc_lengths:
            return 0.0
        return self._total_length / len(self._doc_lengths)

    def document_frequency(self, term: str) -> int:
        return len(self._postings.get(term.lower(), {}))

    def term_frequency(self, term: str, doc_id: str) -> int:
        return len(self._postings.get(term.lower(), {}).get(doc_id, []))

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._doc_lengths

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def _idf(self, term: str) -> float:
        df = self.document_frequency(term)
        if df == 0:
            return 0.0
        n = self.doc_count
        return math.log(1.0 + (n - df + 0.5) / (df + 0.5))

    def _bm25(self, term: str, doc_id: str, idf: float) -> float:
        tf = self.term_frequency(term, doc_id)
        if tf == 0:
            return 0.0
        doc_len = self._doc_lengths[doc_id]
        avg = self.average_doc_length or 1.0
        denom = tf + BM25_K1 * (1 - BM25_B + BM25_B * doc_len / avg)
        return idf * tf * (BM25_K1 + 1) / denom

    def search(
        self,
        query: str,
        top_k: int = 10,
        candidates: Optional[Set[str]] = None,
    ) -> List[SearchHit]:
        """BM25-ranked top-k search.

        *candidates*, when given, restricts scoring to that doc-id set —
        the hook faceted drill-down and security filtering use.
        """
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        terms = tokenize(query)
        if not terms:
            return []
        scores: Dict[str, float] = defaultdict(float)
        for term in set(terms):
            idf = self._idf(term)
            if idf == 0.0:
                continue
            for doc_id in self._postings.get(term, {}):
                if candidates is not None and doc_id not in candidates:
                    continue
                scores[doc_id] += self._bm25(term, doc_id, idf)
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        return [SearchHit(doc_id, score) for doc_id, score in ranked[:top_k]]

    def match_all(self, query: str) -> Set[str]:
        """Doc-ids containing *every* query term (boolean AND)."""
        terms = tokenize(query)
        if not terms:
            return set()
        result: Optional[Set[str]] = None
        for term in terms:
            posting = set(self._postings.get(term, {}))
            result = posting if result is None else result & posting
            if not result:
                return set()
        return result or set()

    def match_phrase(self, phrase: str) -> Set[str]:
        """Doc-ids containing the tokens of *phrase* adjacently, in order."""
        tokens = tokenize_with_positions(phrase)
        if not tokens:
            return set()
        terms = [t for t, _ in tokens]
        offsets = [p for _, p in tokens]
        candidates = self.match_all(" ".join(terms))
        result = set()
        for doc_id in candidates:
            first_positions = self._postings[terms[0]][doc_id]
            for start in first_positions:
                if all(
                    start + (offsets[i] - offsets[0]) in self._postings[terms[i]][doc_id]
                    for i in range(1, len(terms))
                ):
                    result.add(doc_id)
                    break
        return result
