"""Indexing substrate: text, structural, value, facet, and join indexes.

Implements the indexing requirements of paper Sections 3.2 and 3.3:
index "each document by its values as well as its structures", support
faceted navigation with aggregate payloads, maintain everything
incrementally as annotations stream in, and keep discovered relationships
as join indexes.
"""

from repro.index.text import (
    BM25_B,
    BM25_K1,
    InvertedIndex,
    SearchHit,
    STOPWORDS,
    TextIndexStats,
    tokenize,
    tokenize_with_positions,
)
from repro.index.structural import RangeQuery, StructuralIndex, ValueIndex
from repro.index.facets import (
    FacetDefinition,
    FacetIndex,
    metadata_facet,
    path_facet,
    source_format_facet,
)
from repro.index.joins import JoinEdge, JoinIndex
from repro.index.manager import IndexManager, IndexManagerStats

__all__ = [
    "BM25_B",
    "BM25_K1",
    "InvertedIndex",
    "SearchHit",
    "STOPWORDS",
    "TextIndexStats",
    "tokenize",
    "tokenize_with_positions",
    "RangeQuery",
    "StructuralIndex",
    "ValueIndex",
    "FacetDefinition",
    "FacetIndex",
    "metadata_facet",
    "path_facet",
    "source_format_facet",
    "JoinEdge",
    "JoinIndex",
    "IndexManager",
    "IndexManagerStats",
]
