"""Index manager: keeps every index current as documents arrive.

Subscribes to the document store's put hook, so "this indexing need not
take place as part of the same transaction that infused that document
initially" (Section 3.2) — the manager can run in immediate mode (index
on put) or deferred mode (queue and apply in batches from a background
task), and the IDX experiment measures the difference against periodic
full rebuilds.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Optional, Tuple

from repro.index.facets import FacetDefinition, FacetIndex
from repro.index.joins import JoinIndex
from repro.index.structural import StructuralIndex, ValueIndex
from repro.index.text import InvertedIndex
from repro.model.document import Document
from repro.storage.pages import PageAddress
from repro.storage.store import DocumentStore


@dataclass
class IndexManagerStats:
    indexed: int = 0
    deferred: int = 0
    batches_applied: int = 0


class IndexManager:
    """One handle owning the text, structural, value, and facet indexes.

    Parameters
    ----------
    store:
        The document store to attach to (may be ``None`` for standalone
        index use; call :meth:`index_document` directly).
    facets:
        Facet definitions to maintain.
    deferred:
        When True, puts are queued and indexed by :meth:`apply_pending`
        (a background-task budget decides when); when False, indexing is
        synchronous with the put.
    """

    def __init__(
        self,
        store: Optional[DocumentStore] = None,
        facets: Iterable[FacetDefinition] = (),
        deferred: bool = False,
        telemetry=None,
    ) -> None:
        # Telemetry stays None-guarded (not the DISABLED singleton):
        # per-node index managers are numerous and their put hook is hot.
        self.telemetry = telemetry
        self.text = InvertedIndex()
        self.structure = StructuralIndex()
        self.values = ValueIndex()
        self.facets = FacetIndex(facets)
        self.joins = JoinIndex()
        self.deferred = deferred
        self.stats = IndexManagerStats()
        self._pending: Deque[Document] = deque()
        self._store = store
        if store is not None:
            store.put_listeners.append(self._on_put)

    # ------------------------------------------------------------------
    def _on_put(self, document: Document, address: PageAddress) -> None:
        if self.deferred:
            self._pending.append(document)
            self.stats.deferred += 1
        else:
            self.index_document(document)

    def index_document(self, document: Document) -> None:
        """(Re-)index one document version across all indexes.

        Indexing the same doc_id again replaces the previous version's
        entries — superseded versions never pollute search results.
        """
        self.text.add(document.doc_id, document.text)
        self.structure.add(document)
        self.values.add(document)
        self.facets.add(document)
        self.stats.indexed += 1
        if self.telemetry is not None:
            self.telemetry.inc("index.documents_indexed")

    def unindex(self, doc_id: str) -> None:
        self.text.remove(doc_id)
        self.structure.remove(doc_id)
        self.values.remove(doc_id)
        self.facets.remove(doc_id)
        self.joins.remove_doc(doc_id)

    # ------------------------------------------------------------------
    def apply_pending(self, budget: Optional[int] = None) -> int:
        """Index up to *budget* queued documents (all, when ``None``).

        Returns how many were applied.  Called from the execution
        manager's background-task slots.
        """
        applied = 0
        while self._pending and (budget is None or applied < budget):
            self.index_document(self._pending.popleft())
            applied += 1
        if applied:
            self.stats.batches_applied += 1
            if self.telemetry is not None:
                self.telemetry.inc("index.batches_applied")
        return applied

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    def rebuild_from(self, store: DocumentStore) -> None:
        """Full rebuild from a store scan (the IDX baseline strategy)."""
        self.text = InvertedIndex()
        self.structure = StructuralIndex()
        self.values = ValueIndex()
        rebuilt_facets = FacetIndex()
        for name in self.facets.facet_names():
            rebuilt_facets.define(self.facets._definitions[name])
        self.facets = rebuilt_facets
        self._pending.clear()
        for document in store.scan(latest_only=True):
            self.index_document(document)
