"""Index manager: keeps every index current as documents arrive.

Subscribes to the document store's put hook, so "this indexing need not
take place as part of the same transaction that infused that document
initially" (Section 3.2) — the manager can run in immediate mode (index
on put) or deferred mode (queue and apply in batches from a background
task), and the IDX experiment measures the difference against periodic
full rebuilds.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.index.facets import FacetDefinition, FacetIndex
from repro.index.joins import JoinIndex
from repro.index.structural import StructuralIndex, ValueIndex
from repro.index.text import InvertedIndex
from repro.model.document import Document
from repro.model.projection import projection_of
from repro.storage.pages import PageAddress
from repro.storage.store import DocumentStore


@dataclass
class IndexManagerStats:
    indexed: int = 0
    deferred: int = 0
    batches_applied: int = 0


class IndexManager:
    """One handle owning the text, structural, value, and facet indexes.

    Parameters
    ----------
    store:
        The document store to attach to (may be ``None`` for standalone
        index use; call :meth:`index_document` directly).
    facets:
        Facet definitions to maintain.
    deferred:
        When True, puts are queued and indexed by :meth:`apply_pending`
        (a background-task budget decides when); when False, indexing is
        synchronous with the put.
    """

    def __init__(
        self,
        store: Optional[DocumentStore] = None,
        facets: Iterable[FacetDefinition] = (),
        deferred: bool = False,
        telemetry=None,
    ) -> None:
        # Telemetry stays None-guarded (not the DISABLED singleton):
        # per-node index managers are numerous and their put hook is hot.
        self.telemetry = telemetry
        self.text = InvertedIndex()
        self.structure = StructuralIndex()
        self.values = ValueIndex()
        self.facets = FacetIndex(facets)
        self.joins = JoinIndex()
        self.deferred = deferred
        self.stats = IndexManagerStats()
        self._pending: Deque[Document] = deque()
        self._store = store
        if store is not None:
            store.batch_put_listeners.append(self._on_put_batch)

    # ------------------------------------------------------------------
    def _on_put(self, document: Document, address: PageAddress) -> None:
        if self.deferred:
            self._pending.append(document)
            self.stats.deferred += 1
        else:
            self.index_document(document)

    def _on_put_batch(self, pairs: List[Tuple[Document, PageAddress]]) -> None:
        """Store hook: one call per group commit.

        A batch of one is the reactive document-at-a-time path and is
        indexed exactly as before; a real batch takes the bulk path,
        where every index reuses the shared model projection.
        """
        if self.deferred:
            for document, _ in pairs:
                self._pending.append(document)
            self.stats.deferred += len(pairs)
        elif len(pairs) == 1:
            self.index_document(pairs[0][0])
        else:
            self.index_batch([document for document, _ in pairs])

    def index_document(self, document: Document) -> None:
        """(Re-)index one document version across all indexes.

        Indexing the same doc_id again replaces the previous version's
        entries — superseded versions never pollute search results.  A
        tombstone version removes the document from every index: deleted
        documents must stop matching immediately.
        """
        if document.is_tombstone:
            self.unindex(document.doc_id)
            return
        self.text.add(document.doc_id, document.text)
        self.structure.add(document)
        self.values.add(document)
        self.facets.add(document)
        self.stats.indexed += 1
        if self.telemetry is not None:
            self.telemetry.inc("index.documents_indexed")

    def index_batch(self, documents: List[Document]) -> int:
        """Group index maintenance: one bulk pass over every index.

        Each document's projection (one content walk: text, postings,
        structure, value entries — see ``repro.model.projection``) feeds
        all four indexes, and documents sharing a structural signature are
        loaded into the structural index as one group.  Final index state
        and probe answers are identical to calling :meth:`index_document`
        per document in the same order.

        A batch that mentions the same doc_id twice (two versions in one
        group commit) falls back to the sequential path — replacement
        semantics depend on arrival order, which grouping would lose.
        """
        if not documents:
            return 0
        if any(document.is_tombstone for document in documents):
            # Deletes take the sequential path: arrival order decides
            # whether a doc_id ends the batch indexed or removed.
            for document in documents:
                self.index_document(document)
            return len(documents)
        doc_ids = [document.doc_id for document in documents]
        if len(set(doc_ids)) != len(doc_ids):
            for document in documents:
                self.index_document(document)
            return len(documents)

        projections = [projection_of(document) for document in documents]
        for document, projection in zip(documents, projections):
            self.text.add_projected(
                document.doc_id, projection.term_positions, projection.token_count
            )
        groups: Dict[frozenset, List[str]] = {}
        group_order: List[frozenset] = []
        for document, projection in zip(documents, projections):
            members = groups.get(projection.structure)
            if members is None:
                groups[projection.structure] = members = []
                group_order.append(projection.structure)
            members.append(document.doc_id)
        for signature in group_order:
            self.structure.add_group(signature, groups[signature])
        for document, projection in zip(documents, projections):
            self.values.add_entries(document.doc_id, projection.value_entries)
            self.facets.add(document)
        self.stats.indexed += len(documents)
        if self.telemetry is not None:
            self.telemetry.inc("index.documents_indexed", len(documents))
        return len(documents)

    def unindex(self, doc_id: str) -> None:
        # Purge queued copies too: in deferred mode an unindexed document
        # must not be resurrected by a later apply_pending pass.
        if self._pending:
            self._pending = deque(
                document for document in self._pending if document.doc_id != doc_id
            )
        self.text.remove(doc_id)
        self.structure.remove(doc_id)
        self.values.remove(doc_id)
        self.facets.remove(doc_id)
        self.joins.remove_doc(doc_id)

    # ------------------------------------------------------------------
    def apply_pending(self, budget: Optional[int] = None) -> int:
        """Index up to *budget* queued documents (all, when ``None``).

        Returns how many were applied.  Called from the execution
        manager's background-task slots.  The drained chunk is applied as
        one :meth:`index_batch`, so deferred maintenance gets the same
        projection sharing the pipeline's group stage does.
        """
        if not self._pending:
            return 0
        take = len(self._pending) if budget is None else min(budget, len(self._pending))
        if take <= 0:
            return 0
        batch = [self._pending.popleft() for _ in range(take)]
        applied = self.index_batch(batch)
        self.stats.batches_applied += 1
        if self.telemetry is not None:
            self.telemetry.inc("index.batches_applied")
        return applied

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    def rebuild_from(self, store: DocumentStore) -> None:
        """Full rebuild from a store scan (the IDX baseline strategy)."""
        self.text = InvertedIndex()
        self.structure = StructuralIndex()
        self.values = ValueIndex()
        rebuilt_facets = FacetIndex()
        for name in self.facets.facet_names():
            rebuilt_facets.define(self.facets._definitions[name])
        self.facets = rebuilt_facets
        self._pending.clear()
        for document in store.scan(latest_only=True):
            self.index_document(document)
