"""Logical query plans and predicates.

The SQL subset, the faceted interface, and the graph interface all lower
into this small algebra; the planners then choose physical operators for
it.  The algebra is deliberately minimal — the paper's simple-planner
argument depends on a small operator vocabulary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from repro.exec.operators import AggSpec, Row
from repro.storage.encoding import EncodedColumn


class CompareOp(enum.Enum):
    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    CONTAINS = "contains"

    def apply(self, left: Any, right: Any) -> bool:
        if self is CompareOp.CONTAINS:
            if left is None:
                return False
            return str(right).lower() in str(left).lower()
        if left is None or right is None:
            return False
        if self is CompareOp.EQ:
            return self._eq(left, right)
        if self is CompareOp.NE:
            return not self._eq(left, right)
        try:
            if self is CompareOp.LT:
                return left < right
            if self is CompareOp.LE:
                return left <= right
            if self is CompareOp.GT:
                return left > right
            return left >= right
        except TypeError:
            return False

    @staticmethod
    def _eq(left: Any, right: Any) -> bool:
        if isinstance(left, str) and isinstance(right, str):
            return left.lower() == right.lower()
        if isinstance(left, bool) != isinstance(right, bool):
            return False
        if isinstance(left, (int, float)) and isinstance(right, (int, float)):
            return float(left) == float(right)
        return left == right


@dataclass(frozen=True)
class Comparison:
    """column <op> literal."""

    column: str
    op: CompareOp
    value: Any

    def matches(self, row: Row) -> bool:
        return self.op.apply(row.get(self.column), self.value)

    def value_predicate(self) -> Callable[[Any], bool]:
        """A value → bool closure equivalent to ``op.apply(value, literal)``.

        Built once per batch by the vectorized filter so the per-row loop
        skips the enum dispatch inside :meth:`CompareOp.apply`.  The
        specialized closures replicate ``apply``'s semantics exactly
        (None never matches ordering ops, cross-type comparisons are
        False, string equality is case-insensitive).
        """
        op, literal = self.op, self.value
        if op in (CompareOp.LT, CompareOp.LE, CompareOp.GT, CompareOp.GE) and literal is not None:
            def ordered(value: Any, _op=op, _lit=literal) -> bool:
                if value is None:
                    return False
                try:
                    if _op is CompareOp.LT:
                        return value < _lit
                    if _op is CompareOp.LE:
                        return value <= _lit
                    if _op is CompareOp.GT:
                        return value > _lit
                    return value >= _lit
                except TypeError:
                    return False

            return ordered
        if op is CompareOp.EQ and isinstance(literal, str):
            lowered = literal.lower()

            def str_eq(value: Any, _lowered=lowered) -> bool:
                return value.lower() == _lowered if isinstance(value, str) else False

            return str_eq
        if (
            op is CompareOp.EQ
            and isinstance(literal, (int, float))
            and not isinstance(literal, bool)
        ):
            as_float = float(literal)

            def num_eq(value: Any, _lit=as_float, _raw=literal) -> bool:
                if isinstance(value, bool) or value is None:
                    return False
                if isinstance(value, (int, float)):
                    return float(value) == _lit
                return value == _raw

            return num_eq
        return lambda value: op.apply(value, literal)

    def __str__(self) -> str:
        return f"{self.column} {self.op.value} {self.value!r}"


@dataclass(frozen=True)
class Conjunction:
    """AND of comparisons (the only boolean connective we support)."""

    terms: Tuple[Comparison, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "terms", tuple(self.terms))

    def matches(self, row: Row) -> bool:
        return all(term.matches(row) for term in self.terms)

    def selector(self, batch: Any) -> List[int]:
        """Vectorized evaluation: indices of the batch rows that match.

        Terms narrow the candidate set column-by-column — each term reads
        one column list and filters the surviving indices, so a selective
        leading term makes the remaining terms nearly free.  *batch* is a
        :class:`repro.exec.batch.ColumnBatch` (typed as Any to keep this
        module free of an exec-layer import).

        Dictionary-coded columns take a code fast path: the compiled
        predicate runs once per *distinct* value (memoized on the shared
        :class:`~repro.storage.encoding.ColumnDictionary`, keyed by this
        frozen term), and the per-row work collapses to an integer set
        membership test on still-encoded codes.  Semantics are identical
        by construction — the same ``value_predicate`` closure decides
        both paths, just at different granularity.
        """
        indices: Sequence[int] = range(batch.length)
        for term in self.terms:
            if not indices:
                break
            raw = batch.columns.get(term.column)
            if isinstance(raw, EncodedColumn):
                codes = raw.codes()
                matching = raw.dictionary.matching_codes(
                    term, term.value_predicate()
                )
                indices = [i for i in indices if codes[i] in matching]
                continue
            values = batch.column(term.column)
            predicate = term.value_predicate()
            indices = [i for i in indices if predicate(values[i])]
        return list(indices)

    def columns(self) -> List[str]:
        return [t.column for t in self.terms]

    @property
    def is_empty(self) -> bool:
        return not self.terms

    def __str__(self) -> str:
        return " AND ".join(str(t) for t in self.terms) if self.terms else "TRUE"


# ----------------------------------------------------------------------
# logical operators
# ----------------------------------------------------------------------
#: Estimate annotation carried by every plan node.  ``compare=False``
#: keeps equality/hashing purely structural (plan-cache keys and the
#: re-optimizer's observed-cardinality overlay both rely on that), and
#: ``repr=False`` keeps EXPLAIN/test output stable.  The cost-based
#: optimizer stamps it via ``object.__setattr__``; the simple planner
#: leaves it ``None``, which the runtime reads as "no estimate — fall
#: back to budgeted adaptivity".
def _estimate_field() -> Any:
    return field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class ScanView:
    """Leaf: read a view (virtual table)."""

    view: str
    alias: Optional[str] = None
    estimated_rows: Optional[float] = _estimate_field()

    @property
    def name(self) -> str:
        return self.alias or self.view


@dataclass(frozen=True)
class Filter:
    child: "LogicalPlan"
    predicate: Conjunction
    estimated_rows: Optional[float] = _estimate_field()


@dataclass(frozen=True)
class Join:
    """Equi-join on one column pair."""

    left: "LogicalPlan"
    right: "LogicalPlan"
    left_column: str
    right_column: str
    estimated_rows: Optional[float] = _estimate_field()


@dataclass(frozen=True)
class Project:
    child: "LogicalPlan"
    columns: Tuple[str, ...]
    estimated_rows: Optional[float] = _estimate_field()

    def __post_init__(self) -> None:
        object.__setattr__(self, "columns", tuple(self.columns))


@dataclass(frozen=True)
class Aggregate:
    child: "LogicalPlan"
    group_by: Tuple[str, ...]
    aggs: Tuple[AggSpec, ...]
    estimated_rows: Optional[float] = _estimate_field()

    def __post_init__(self) -> None:
        object.__setattr__(self, "group_by", tuple(self.group_by))
        object.__setattr__(self, "aggs", tuple(self.aggs))


@dataclass(frozen=True)
class Sort:
    child: "LogicalPlan"
    keys: Tuple[str, ...]
    descending: bool = False
    estimated_rows: Optional[float] = _estimate_field()

    def __post_init__(self) -> None:
        object.__setattr__(self, "keys", tuple(self.keys))


@dataclass(frozen=True)
class Limit:
    child: "LogicalPlan"
    count: int
    estimated_rows: Optional[float] = _estimate_field()

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("LIMIT count cannot be negative")


LogicalPlan = Union[ScanView, Filter, Join, Project, Aggregate, Sort, Limit]


def plan_children(plan: LogicalPlan) -> List[LogicalPlan]:
    if isinstance(plan, ScanView):
        return []
    if isinstance(plan, Join):
        return [plan.left, plan.right]
    return [plan.child]  # type: ignore[union-attr]


def base_views(plan: LogicalPlan) -> List[str]:
    """Every view a plan reads, in scan order."""
    if isinstance(plan, ScanView):
        return [plan.view]
    views: List[str] = []
    for child in plan_children(plan):
        views.extend(base_views(child))
    return views


def describe(plan: LogicalPlan, indent: int = 0) -> str:
    """Readable plan tree, for EXPLAIN output and tests."""
    pad = "  " * indent
    if isinstance(plan, ScanView):
        return f"{pad}Scan({plan.view})"
    if isinstance(plan, Filter):
        return f"{pad}Filter({plan.predicate})\n" + describe(plan.child, indent + 1)
    if isinstance(plan, Join):
        return (
            f"{pad}Join({plan.left_column} = {plan.right_column})\n"
            + describe(plan.left, indent + 1)
            + "\n"
            + describe(plan.right, indent + 1)
        )
    if isinstance(plan, Project):
        return f"{pad}Project({', '.join(plan.columns)})\n" + describe(plan.child, indent + 1)
    if isinstance(plan, Aggregate):
        aggs = ", ".join(f"{a.func}({a.column or '*'}) AS {a.name}" for a in plan.aggs)
        group = ", ".join(plan.group_by) or "-"
        return f"{pad}Aggregate(group={group}; {aggs})\n" + describe(plan.child, indent + 1)
    if isinstance(plan, Sort):
        direction = "DESC" if plan.descending else "ASC"
        return f"{pad}Sort({', '.join(plan.keys)} {direction})\n" + describe(plan.child, indent + 1)
    if isinstance(plan, Limit):
        return f"{pad}Limit({plan.count})\n" + describe(plan.child, indent + 1)
    raise TypeError(f"unknown plan node {plan!r}")
