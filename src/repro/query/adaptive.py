"""Adaptive query processing (paper Section 3.3, docs/ADAPTIVE.md).

"The field of adaptive query processing has advanced significantly over
the past six years, and we can borrow and extend some of the techniques
to make query operators self-adaptable at runtime."

Two tiers of adaptivity, both in the spirit of progressive
reoptimization (already-produced results are always kept; only the
strategy for the *remaining* work changes):

1. :func:`adaptive_indexed_join` — the budgeted escape hatch.  An
   indexed nested-loop join with *no* cardinality estimate monitors how
   many outer rows it has actually probed; past the break-even budget it
   stops probing, builds a hash table over the inner side once, and
   streams the remaining outer rows through it.  This is what makes the
   simple planner's "indexed-NL by default" rule safe.

2. :class:`ReOptimizer` — feedback-driven mid-query re-planning for
   cost-based plans.  Pipeline breakers (join builds, full aggregation,
   sorts) are materialization checkpoints: the compiled execution path
   (:mod:`repro.query.compile`) compares the cardinality it just
   materialized against the optimizer's ``estimated_rows`` annotation.
   Beyond a configurable divergence ratio — or when a chaos-degraded
   data node inflates probe costs — it injects the observed cardinality
   into a :class:`~repro.query.stats.Statistics` overlay, re-runs the
   cost-based optimizer on the remaining logical subtree, and splices
   the new physical plan in (switch join strategy, flip the hash build
   side) while keeping everything already produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.exec import costs
from repro.exec.operators import Row, merge_joined_row

#: Default probe budget before the operator reconsiders: the number of
#: probes whose cost equals building a hash table over ~1k inner rows.
DEFAULT_PROBE_BUDGET = 128


@dataclass(frozen=True)
class AdaptiveConfig:
    """Knobs for compiled execution and mid-query re-optimization.

    ``enabled`` gates the re-optimizer (budgeted join migration stays
    available regardless — it predates this config and needs no
    estimates).  ``divergence_ratio`` is the observed/estimated factor
    (either direction) that arms a checkpoint; ``max_replans`` bounds
    splices per query so a pathological estimate cannot thrash.
    ``compiled_pipelines`` turns plan compilation off entirely, falling
    back to the interpreted batch engine.
    """

    enabled: bool = True
    divergence_ratio: float = 2.0
    max_replans: int = 2
    compiled_pipelines: bool = True
    probe_budget: int = DEFAULT_PROBE_BUDGET

    def __post_init__(self) -> None:
        if self.divergence_ratio < 1.0:
            raise ValueError("divergence_ratio must be >= 1.0")
        if self.max_replans < 0:
            raise ValueError("max_replans cannot be negative")
        if self.probe_budget < 1:
            raise ValueError("probe_budget must be >= 1")


@dataclass
class AdaptiveJoinReport:
    """What the budgeted adaptive operator did on one execution."""

    probes_done: int = 0
    switched: bool = False
    hash_build_rows: int = 0
    rows_out: int = 0
    sim_ms: float = 0.0


@dataclass
class ReplanReport:
    """One mid-query re-optimization decision (docs/ADAPTIVE.md)."""

    stage: str
    reason: str
    observed_rows: float
    estimated_rows: Optional[float]
    old_strategy: str
    new_strategy: str
    #: Kept True so replan and budgeted-migration reports share the
    #: ``switched`` surface in ``QueryResult.adaptive_reports``.
    switched: bool = True


def adaptive_indexed_join(
    outer: Iterable[Row],
    outer_key: str,
    probe: Callable[[Any], List[Row]],
    inner_scan: Callable[[], List[Row]],
    inner_key: str,
    probe_budget: int = DEFAULT_PROBE_BUDGET,
    probe_cost_ms: float = costs.INDEX_PROBE_MS,
) -> Tuple[List[Row], AdaptiveJoinReport]:
    """Run an indexed-NL join that may migrate to a hash join.

    Parameters
    ----------
    outer / outer_key:
        The driving input and its join column.
    probe:
        Index probe for one key (the indexed-NL fast path).
    inner_scan / inner_key:
        Full inner materialization, used only if the operator switches.
    probe_budget:
        Probes allowed before switching.  Null-key outer rows never
        probe, so they never count toward the budget — a run of nulls
        cannot trigger (or delay) a migration.
    probe_cost_ms:
        Simulated cost of one index probe; inflated above
        :data:`repro.exec.costs.INDEX_PROBE_MS` when the probed node is
        degraded.
    """
    if probe_budget < 1:
        raise ValueError("probe budget must be >= 1")
    report = AdaptiveJoinReport()
    results: List[Row] = []
    remaining: List[Row] = []
    outer_iter = iter(outer)

    for row in outer_iter:
        key = row.get(outer_key)
        if key is None:
            # Null keys never join and never probe; skipping before the
            # budget check keeps them out of the probe accounting on
            # both strategies.
            continue
        if report.probes_done >= probe_budget:
            remaining.append(row)
            remaining.extend(outer_iter)
            break
        report.probes_done += 1
        report.sim_ms += probe_cost_ms
        for match in probe(key):
            results.append(merge_joined_row(dict(row), match))

    if remaining:
        report.switched = True
        inner_rows = inner_scan()
        report.hash_build_rows = len(inner_rows)
        report.sim_ms += len(inner_rows) * costs.HASH_BUILD_MS_PER_ROW
        joined, probed = hash_probe_rows(remaining, outer_key, inner_rows, inner_key)
        report.sim_ms += probed * costs.HASH_PROBE_MS_PER_ROW
        results.extend(joined)

    report.rows_out = len(results)
    return results, report


def hash_probe_rows(
    outer: Iterable[Row],
    outer_key: str,
    inner_rows: List[Row],
    inner_key: str,
) -> Tuple[List[Row], int]:
    """Build a hash table over *inner_rows* and stream *outer* through it.

    Returns ``(joined rows, probes charged)``.  Null keys on either side
    never join and are free — the same accounting the probe path uses, so
    a strategy switch never changes what a row costs.  Shared by the
    budgeted migration above and the engine's re-plan splice.
    """
    table: Dict[Any, List[Row]] = {}
    for inner_row in inner_rows:
        table.setdefault(inner_row.get(inner_key), []).append(inner_row)
    table.pop(None, None)
    results: List[Row] = []
    probed = 0
    for row in outer:
        key = row.get(outer_key)
        if key is None:
            continue
        probed += 1
        for match in table.get(key, ()):
            results.append(merge_joined_row(dict(row), match))
    return results, probed


class ReOptimizer:
    """Per-execution mid-query re-planning state (docs/ADAPTIVE.md).

    Owned by one adaptive compiled execution.  Pipeline-breaker stages
    call the ``checkpoint_*`` methods with the cardinality they just
    materialized; the re-optimizer decides whether the remaining subtree
    should be re-planned, consults the cost-based optimizer with the
    observation injected into a statistics *overlay* (the caller's
    statistics object is never mutated), and records a
    :class:`ReplanReport` for every splice it approves.
    """

    def __init__(
        self,
        config: AdaptiveConfig,
        statistics: Optional[Any] = None,
        optimizer_factory: Optional[Callable[[Any], Any]] = None,
        probe_penalty: float = 1.0,
        report_sink: Optional[List[Any]] = None,
    ) -> None:
        self.config = config
        self.statistics = statistics.overlay() if statistics is not None else None
        self._optimizer_factory = optimizer_factory
        self.probe_penalty = max(1.0, probe_penalty)
        self.reports: List[ReplanReport] = []
        self._sink = report_sink
        self.checkpoints = 0

    # ------------------------------------------------------------------
    @property
    def can_replan(self) -> bool:
        return (
            self.config.enabled
            and len(self.reports) < self.config.max_replans
            and self.statistics is not None
            and self._optimizer_factory is not None
        )

    def diverged(self, estimated: Optional[float], observed: float) -> bool:
        """True when observed/estimated exceeds the ratio either way."""
        if estimated is None or estimated <= 0.0:
            return False
        ratio = observed / estimated
        threshold = self.config.divergence_ratio
        return ratio >= threshold or ratio <= 1.0 / threshold

    def record(self, report: ReplanReport) -> None:
        self.reports.append(report)
        if self._sink is not None:
            self._sink.append(report)

    def replan(self, logical: Any) -> Any:
        """Cost-based plan for *logical* under the observation overlay."""
        return self._optimizer_factory(self.statistics).plan(logical)

    # ------------------------------------------------------------------
    # materialization checkpoints
    # ------------------------------------------------------------------
    def checkpoint_indexed_join(
        self,
        *,
        stage: str,
        observed_outer: float,
        estimated_outer: Optional[float],
        outer_logical: Any,
        inner_logical: Any,
        outer_column: str,
        inner_column: str,
    ) -> Optional[Any]:
        """Decide the fate of an indexed-NL join whose outer just materialized.

        Returns the replacement physical plan (a ``PhysHashJoin``) when
        the re-plan switches strategy, else ``None`` (keep probing).
        Armed by cardinality divergence *or* a degraded probe target —
        the optimizer re-runs with the observed outer cardinality and a
        penalty-inflated probe cost, so both signals flow through the
        same cost model that planned the join in the first place.
        """
        self.checkpoints += 1
        if not self.can_replan:
            return None
        divergence = self.diverged(estimated_outer, observed_outer)
        degraded = self.probe_penalty > 1.0
        if not (divergence or degraded):
            return None
        from repro.query.planner import PhysHashJoin
        from repro.query.plans import Join

        self.statistics.observe(outer_logical, float(observed_outer))
        remaining = Join(outer_logical, inner_logical, outer_column, inner_column)
        replacement = self.replan(remaining)
        if not isinstance(replacement, PhysHashJoin):
            return None
        self.record(
            ReplanReport(
                stage=stage,
                reason="degraded-node" if degraded and not divergence else "cardinality-divergence",
                observed_rows=float(observed_outer),
                estimated_rows=estimated_outer,
                old_strategy="indexed-nl",
                new_strategy="hash",
            )
        )
        return replacement

    def checkpoint_hash_join(
        self,
        *,
        stage: str,
        observed_probe: float,
        estimated_probe: Optional[float],
        estimated_build: Optional[float],
        probe_logical: Any,
    ) -> bool:
        """Decide whether to flip the build side of a hash join.

        Called after the probe side materialized but before the build
        side runs.  Returns True when the observed probe cardinality has
        diverged enough that building over the (already materialized)
        probe side and streaming the other side is cheaper.
        """
        self.checkpoints += 1
        if not self.can_replan or estimated_build is None:
            return False
        if not self.diverged(estimated_probe, observed_probe):
            return False
        self.statistics.observe(probe_logical, float(observed_probe))
        keep = (
            estimated_build * costs.HASH_BUILD_MS_PER_ROW
            + observed_probe * costs.HASH_PROBE_MS_PER_ROW
        )
        swap = (
            observed_probe * costs.HASH_BUILD_MS_PER_ROW
            + estimated_build * costs.HASH_PROBE_MS_PER_ROW
        )
        if swap >= keep:
            return False
        self.record(
            ReplanReport(
                stage=stage,
                reason="cardinality-divergence",
                observed_rows=float(observed_probe),
                estimated_rows=estimated_probe,
                old_strategy="hash(build=other)",
                new_strategy="hash(build=probe)",
            )
        )
        return True
