"""Adaptive query processing (paper Section 3.3).

"The field of adaptive query processing has advanced significantly over
the past six years, and we can borrow and extend some of the techniques
to make query operators self-adaptable at runtime."

The technique implemented here is mid-flight join migration (in the
spirit of progressive reoptimization): an indexed nested-loop join
monitors how many outer rows it has actually probed; once the count
exceeds the break-even budget — the point where the remaining probes are
expected to cost more than building a hash table over the inner side —
it stops probing, builds the hash table once, and streams the remaining
outer rows through it. Already-produced results are kept; the switch is
purely an execution-strategy change.

This is the escape hatch that makes the simple planner's "indexed-NL by
default" rule safe: when the outer turns out huge (stale estimate, or no
estimate at all), the operator self-corrects at a bounded cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Tuple

from repro.exec import costs
from repro.exec.operators import Row

#: Default probe budget before the operator reconsiders: the number of
#: probes whose cost equals building a hash table over ~1k inner rows.
DEFAULT_PROBE_BUDGET = 128


@dataclass
class AdaptiveJoinReport:
    """What the adaptive operator did on one execution."""

    probes_done: int = 0
    switched: bool = False
    hash_build_rows: int = 0
    rows_out: int = 0
    sim_ms: float = 0.0


def adaptive_indexed_join(
    outer: Iterable[Row],
    outer_key: str,
    probe: Callable[[Any], List[Row]],
    inner_scan: Callable[[], List[Row]],
    inner_key: str,
    probe_budget: int = DEFAULT_PROBE_BUDGET,
) -> Tuple[List[Row], AdaptiveJoinReport]:
    """Run an indexed-NL join that may migrate to a hash join.

    Parameters
    ----------
    outer / outer_key:
        The driving input and its join column.
    probe:
        Index probe for one key (the indexed-NL fast path).
    inner_scan / inner_key:
        Full inner materialization, used only if the operator switches.
    probe_budget:
        Probes allowed before switching.
    """
    if probe_budget < 1:
        raise ValueError("probe budget must be >= 1")
    report = AdaptiveJoinReport()
    results: List[Row] = []
    remaining: List[Row] = []
    outer_iter = iter(outer)

    def merge(row: Row, match: Row) -> Row:
        joined = dict(row)
        for key, value in match.items():
            if key in joined and joined[key] != value:
                joined[f"r_{key}"] = value
            else:
                joined[key] = value
        return joined

    for row in outer_iter:
        if report.probes_done >= probe_budget:
            remaining.append(row)
            remaining.extend(outer_iter)
            break
        key = row.get(outer_key)
        if key is None:
            continue
        report.probes_done += 1
        report.sim_ms += costs.INDEX_PROBE_MS
        for match in probe(key):
            results.append(merge(row, match))

    if remaining:
        report.switched = True
        inner_rows = inner_scan()
        report.hash_build_rows = len(inner_rows)
        report.sim_ms += len(inner_rows) * costs.HASH_BUILD_MS_PER_ROW
        table: Dict[Any, List[Row]] = {}
        for inner_row in inner_rows:
            table.setdefault(inner_row.get(inner_key), []).append(inner_row)
        table.pop(None, None)
        for row in remaining:
            key = row.get(outer_key)
            if key is None:
                # Null keys never join; the probe path skips them before
                # charging, so the migrated path must be free too or the
                # two strategies would disagree on cost for equal work.
                continue
            report.sim_ms += costs.HASH_PROBE_MS_PER_ROW
            for match in table.get(key, ()):
                results.append(merge(row, match))

    report.rows_out = len(results)
    return results, report
