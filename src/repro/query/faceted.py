"""Faceted (guided) search with analytics (paper Section 3.2.1).

"We envision an interface for Impliance that extends the concept of
faceted search by incorporating more sophisticated analytical
capabilities than just counting entities in one dimension, via a
sequence of processes that guide the user."

A :class:`FacetedSession` is that sequence: start from a keyword query
(or everything), drill down facet by facet, and at any point ask for
facet counts (navigation), ranked results, or per-bucket aggregates of a
numeric measure — joins and aggregates folded into the guided interface
without exposing schema.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.model.values import Path, coerce_numeric
from repro.obs.telemetry import DISABLED
from repro.query.keyword import KeywordHit, KeywordSearch
from repro.query.result import QueryResult


@dataclass(frozen=True)
class DrillStep:
    """One navigation action taken in a session (for breadcrumbs)."""

    facet: str
    value: Any


class FacetedSession:
    """An interactive guided-search session over a repository."""

    def __init__(
        self,
        repository,
        query: Optional[str] = None,
        within: Optional[Set[str]] = None,
        telemetry=None,
    ) -> None:
        """*within*, when given, restricts the whole session to that
        doc-id set — the hook security scoping uses."""
        self.repository = repository
        self.telemetry = telemetry if telemetry is not None else DISABLED
        self._keyword = KeywordSearch(repository)
        self.query = query
        self._within = None if within is None else set(within)
        self._steps: List[DrillStep] = []
        self._selection: Optional[Set[str]] = None
        self._recompute()

    # ------------------------------------------------------------------
    def _base_set(self) -> Optional[Set[str]]:
        if self.query is None:
            base = None  # None means "everything"
        else:
            base = self._keyword.all_terms(self.query)
        if self._within is not None:
            base = self._within if base is None else base & self._within
        return base

    def _recompute(self) -> None:
        selection = self._base_set()
        for step in self._steps:
            bucket = self.repository.indexes.facets.docs_with(step.facet, step.value)
            selection = bucket if selection is None else selection & bucket
        self._selection = selection

    # ------------------------------------------------------------------
    @property
    def breadcrumbs(self) -> List[DrillStep]:
        return list(self._steps)

    @property
    def selection(self) -> Optional[Set[str]]:
        """Current doc-id selection (``None`` = unrestricted)."""
        return None if self._selection is None else set(self._selection)

    def count(self) -> int:
        if self._selection is not None:
            return len(self._selection)
        return self.repository.indexes.facets.doc_count

    # ------------------------------------------------------------------
    def drill(self, facet: str, value: Any) -> "FacetedSession":
        """Drill down: narrow the selection by one facet value."""
        if facet not in self.repository.indexes.facets.facet_names():
            raise KeyError(f"no facet named {facet!r}")
        self._steps.append(DrillStep(facet, value))
        self._recompute()
        return self

    def back(self) -> "FacetedSession":
        """Undo the most recent drill step."""
        if self._steps:
            self._steps.pop()
            self._recompute()
        return self

    def across(self, facet: str, value: Any) -> "FacetedSession":
        """Drill *across*: replace the last step's value within the same
        facet (sideways navigation in guided search)."""
        if self._steps and self._steps[-1].facet == facet:
            self._steps.pop()
        return self.drill(facet, value)

    # ------------------------------------------------------------------
    def facet_counts(self, facet: str, top: int = 10) -> List[Tuple[Any, int]]:
        """The navigation menu: counts of *facet* within the selection."""
        return self.repository.indexes.facets.counts(
            facet, within=self._selection, top=top
        )

    def results(self, top_k: int = 10) -> QueryResult:
        """Ranked hits within the current selection, as a unified
        :class:`QueryResult` (iterable/indexable like the old hit list)."""
        with self.telemetry.span("query.faceted", steps=len(self._steps)) as span:
            hits = self._ranked_hits(top_k)
            span.tag("hits", len(hits))
        self.telemetry.inc("query.faceted")
        return QueryResult.from_hits(hits, trace=span.record())

    def _ranked_hits(self, top_k: int) -> List[KeywordHit]:
        if self.query is not None:
            return self._keyword.search(self.query, top_k=top_k, within=self._selection)
        selection = self._selection
        if selection is None:
            doc_ids = sorted(
                d.doc_id for d in self.repository.documents()
            )[:top_k]
        else:
            doc_ids = sorted(selection)[:top_k]
        return [
            KeywordHit(doc_id=d, score=0.0, document=self.repository.lookup(d))
            for d in doc_ids
        ]

    # ------------------------------------------------------------------
    # mining operations inside the guided interface (§3.2.1: "as well as
    # certain mining operations")
    # ------------------------------------------------------------------
    def related_terms(self, top: int = 10) -> List[Tuple[str, int]]:
        """Most frequent content terms within the current selection —
        the "what else is in here" mining prompt guided search shows."""
        from collections import Counter

        from repro.index.text import tokenize

        counter: Counter = Counter()
        for doc_id in self._selected_doc_ids():
            document = self.repository.lookup(doc_id)
            if document is not None:
                counter.update(set(tokenize(document.text)))
        return counter.most_common(top)

    def correlate(self, facet_a: str, facet_b: str, top: int = 10
                  ) -> List[Tuple[Any, Any, int]]:
        """Co-occurrence mining across two facets within the selection:
        which (a, b) pairs appear together unusually often."""
        from collections import Counter

        facets = self.repository.indexes.facets
        selection = self._selected_doc_ids()
        pair_counts: Counter = Counter()
        for value_a, count_a in facets.counts(facet_a, within=selection):
            docs_a = facets.docs_with(facet_a, value_a)
            if selection is not None:
                docs_a &= selection
            for value_b, _ in facets.counts(facet_b, within=docs_a):
                overlap = len(docs_a & facets.docs_with(facet_b, value_b))
                if overlap:
                    pair_counts[(value_a, value_b)] = overlap
        return [(a, b, n) for (a, b), n in pair_counts.most_common(top)]

    def exceptions(self, measure_path: Path, z_threshold: float = 3.0
                   ) -> List[Tuple[str, float, float]]:
        """Numeric outliers within the selection: (doc_id, value, z).

        The guided interface surfacing "trends and exceptions" without
        the user writing analytics (§3.2)."""
        import math

        measure_path = tuple(measure_path)
        values: List[Tuple[str, float]] = []
        for doc_id in self._selected_doc_ids() or set():
            document = self.repository.lookup(doc_id)
            if document is None:
                continue
            for value in document.get(measure_path):
                try:
                    values.append((doc_id, coerce_numeric(value)))
                    break
                except (TypeError, ValueError):
                    continue
        if len(values) < 3:
            return []
        mean = sum(v for _, v in values) / len(values)
        variance = sum((v - mean) ** 2 for _, v in values) / (len(values) - 1)
        stddev = math.sqrt(variance)
        if stddev == 0:
            return []
        flagged = [
            (doc_id, value, round((value - mean) / stddev, 3))
            for doc_id, value in values
            if abs(value - mean) / stddev >= z_threshold
        ]
        flagged.sort(key=lambda t: -abs(t[2]))
        return flagged

    def _selected_doc_ids(self) -> Optional[Set[str]]:
        """Selection as a concrete id set (materializes 'everything')."""
        if self._selection is not None:
            return set(self._selection)
        return {d.doc_id for d in self.repository.documents()}

    def aggregate(
        self, facet: str, measure_path: Path, top: int = 10
    ) -> List[Tuple[Any, Dict[str, float]]]:
        """Per-bucket aggregates of a numeric measure within the selection.

        This is faceted search doing OLAP: e.g. facet = product, measure
        = /claim/amount → average claim amount per product.
        """
        measure_path = tuple(measure_path)

        def measure(doc_id: str) -> Optional[float]:
            document = self.repository.lookup(doc_id)
            if document is None:
                return None
            values = document.get(measure_path)
            for value in values:
                try:
                    return coerce_numeric(value)
                except (TypeError, ValueError):
                    continue
            return None

        report = self.repository.indexes.facets.aggregate(
            facet, measure, within=self._selection
        )
        ranked = sorted(report.items(), key=lambda kv: (-kv[1]["sum"], repr(kv[0])))
        return ranked[:top]
