"""Query engine: interprets physical plans against a repository.

The engine executes for real (rows out are correct) while charging a
simulated cost meter, so the PLAN experiment can compare planner choices
by simulated latency without depending on host noise.

Two interpreters share the cost model and produce identical rows:

* the **vectorized** interpreter (the default) runs plans over
  :class:`~repro.exec.batch.ColumnBatch` streams — scans project
  documents column-wise, filters/joins/aggregates work batch-at-a-time
  (``repro.exec.operators``'s ``*_batches`` family), and
  ``QueryResult.rows`` is a thin adapter over the final batches;
* the **legacy row** interpreter walks dict rows one at a time, kept
  alive behind ``vectorized=False`` so benches and property tests can
  compare the two for identical output.

A *repository* is anything exposing documents, point lookup, a view
catalog, and indexes — :class:`LocalRepository` wraps a single document
store; the appliance facade (:class:`repro.core.appliance.Impliance`)
implements the same protocol over a cluster.  Repositories may also
offer ``document_batches(batch_size)`` (the stores do) to feed the
vectorized scan without per-document generator hops.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
)

if TYPE_CHECKING:  # repro.cache imports the SQL parser; keep the cycle lazy
    from repro.cache.hierarchy import CacheHierarchy

from repro.exec import costs
from repro.exec.batch import (
    DEFAULT_BATCH_SIZE,
    ColumnBatch,
    batches_from_columns,
    batches_from_rows,
    rows_from_batches,
)
from repro.exec.operators import (
    OperatorStats,
    Row,
    filter_batches,
    group_aggregate,
    group_aggregate_batches,
    hash_join,
    hash_join_batches,
    merge_joined_row,
    project_batches,
    sort_batches,
    sort_rows,
)
from repro.index.manager import IndexManager
from repro.model.document import Document
from repro.model.views import ColumnProjector, RelationalView, ViewCatalog
from repro.obs.telemetry import DISABLED, Telemetry
from repro.query.adaptive import AdaptiveConfig, ReOptimizer
from repro.query.compile import PipelineContext, compile_plan, plan_fingerprint
from repro.query.planner import (
    CostBasedOptimizer,
    PhysHashJoin,
    PhysicalPlan,
    PhysIndexedJoin,
    SimplePlanner,
    to_logical,
)
from repro.query.plans import (
    Aggregate,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    ScanView,
    Sort,
    base_views,
)
from repro.query.result import QueryResult
from repro.query.sql import parse_sql
from repro.storage.store import DocumentStore


class Repository(Protocol):
    """What the engine needs from a data home."""

    views: ViewCatalog
    indexes: IndexManager

    def documents(self) -> Iterable[Document]:
        """All live (latest-version) documents."""

    def lookup(self, doc_id: str) -> Optional[Document]:
        """Latest version of one document, or None."""


class LocalRepository:
    """Single-store repository for embedded/standalone use."""

    def __init__(
        self,
        store: DocumentStore,
        views: Optional[ViewCatalog] = None,
        indexes: Optional[IndexManager] = None,
    ) -> None:
        self.store = store
        self.views = views if views is not None else ViewCatalog()
        self.indexes = indexes if indexes is not None else IndexManager(store)

    def documents(self) -> Iterable[Document]:
        return self.store.scan()

    def document_batches(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[List[Document]]:
        return self.store.scan_batches(batch_size)

    def view_column_batches(self, view: RelationalView, batch_size: int = DEFAULT_BATCH_SIZE):
        """Native columnar scan of *view*, or ``None`` when the store
        cannot answer it off column pages.  Returns ``(batches, n_docs)``
        where *n_docs* is the live-document count the scan is charged
        for — the same population a row scan would walk."""
        batches = self.store.scan_view_batches(view, batch_size)
        if batches is None:
            return None
        return batches, self.store.live_doc_count

    def lookup(self, doc_id: str) -> Optional[Document]:
        return self.store.lookup(doc_id)


class _CostMeter:
    __slots__ = ("ms", "adaptive", "adaptive_reports", "operators", "probe_cost_ms")

    def __init__(self, adaptive: bool = False) -> None:
        self.ms = 0.0
        self.adaptive = adaptive
        self.adaptive_reports: List[Any] = []
        #: Per-operator row+batch statistics, keyed by operator name.
        self.operators: Dict[str, OperatorStats] = {}
        #: Cost of one index probe for this execution — the base constant
        #: inflated by the worst live data-node slowdown, so a degraded
        #: cluster makes probe-driving plans visibly expensive.
        self.probe_cost_ms = costs.INDEX_PROBE_MS

    def charge(self, ms: float) -> None:
        self.ms += ms

    def stats(self, operator: str) -> OperatorStats:
        stats = self.operators.get(operator)
        if stats is None:
            stats = self.operators[operator] = OperatorStats()
        return stats


class QueryEngine:
    """Plan interpreter with a simulated cost meter.

    ``vectorized`` selects the batch interpreter (the default hot path);
    ``vectorized=False`` keeps the legacy row-at-a-time interpreter for
    comparison runs.  Both charge identical simulated costs.
    """

    #: Bound on the engine-local compiled-pipeline memo (used when no
    #: cache hierarchy is wired in; the hierarchy's plan cache owns the
    #: compiled tier otherwise).
    COMPILED_MEMO_CAPACITY = 128

    def __init__(
        self,
        repository: Repository,
        telemetry: Optional[Telemetry] = None,
        vectorized: bool = True,
        batch_size: int = DEFAULT_BATCH_SIZE,
        cache: Optional[CacheHierarchy] = None,
        adaptive_config: Optional[AdaptiveConfig] = None,
    ) -> None:
        self.repository = repository
        self.telemetry = telemetry if telemetry is not None else DISABLED
        self.vectorized = vectorized
        self.batch_size = batch_size
        #: Optional appliance-wide cache hierarchy (docs/CACHING.md).
        #: None (the standalone default) means every query runs uncached.
        self.cache = cache
        #: Compiled-pipeline + re-optimizer knobs (docs/ADAPTIVE.md).
        self.adaptive_config = adaptive_config if adaptive_config is not None else AdaptiveConfig()
        self.simple_planner = SimplePlanner(
            can_probe=self._can_probe, columns_of=self._columns_of_view
        )
        self._compiled_memo: "OrderedDict[str, Any]" = OrderedDict()
        self._adaptive_counters: Dict[str, int] = {
            "compiled_built": 0,
            "compiled_hits": 0,
            "replans": 0,
            "checkpoints": 0,
        }

    def _active_cache(self) -> Optional[CacheHierarchy]:
        cache = self.cache
        if cache is not None and cache.enabled:
            return cache
        return None

    # ------------------------------------------------------------------
    def optimizer(self, statistics) -> CostBasedOptimizer:
        """A cost-based optimizer wired to this engine's probe check.

        The optimizer's probe cost reflects the cluster's *current*
        health — a degraded data node shifts the indexed-NL break-even
        toward hash joins for fresh plans and re-plans alike.
        """
        return CostBasedOptimizer(
            statistics,
            can_probe=self._can_probe,
            columns_of=self._columns_of_view,
            probe_cost_ms=self._probe_cost_ms(),
        )

    def _probe_penalty(self) -> float:
        """Worst live data-node slowdown (>= 1.0), from repositories that
        expose one (the appliance facade); 1.0 for local repositories."""
        provider = getattr(self.repository, "probe_penalty", None)
        if provider is None:
            return 1.0
        try:
            return max(1.0, float(provider()))
        except (TypeError, ValueError):
            return 1.0

    def _probe_cost_ms(self) -> float:
        return costs.INDEX_PROBE_MS * self._probe_penalty()

    def _columns_of_view(self, view_name: str) -> frozenset:
        if view_name not in self.repository.views:
            return frozenset()
        return frozenset(self.repository.views.get(view_name).column_names)

    def _can_probe(self, view_name: str, column: str) -> bool:
        """A (view, column) is probe-able when the view is defined, the
        column maps to a self-sourced path, and the value index actually
        covers documents — an empty index (e.g. a historical snapshot,
        which has no index) must force scan-based plans, or probes would
        silently return nothing."""
        if self.repository.indexes.values.doc_count == 0:
            return False
        if view_name not in self.repository.views:
            return False
        view = self.repository.views.get(view_name)
        for vcolumn in view.columns:
            if vcolumn.name == column and vcolumn.source == "self":
                return True
        return False

    def _column_path(self, view: RelationalView, column: str):
        for vcolumn in view.columns:
            if vcolumn.name == column and vcolumn.source == "self":
                return vcolumn.path
        raise KeyError(f"view {view.name!r} has no self column {column!r}")

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def sql(
        self,
        query: str,
        planner: str = "simple",
        statistics=None,
        adaptive: bool = False,
    ) -> QueryResult:
        """Parse, plan, and execute a SQL query.

        ``planner`` selects ``"simple"`` (default, the Impliance way) or
        ``"costbased"`` (requires *statistics*).  With ``adaptive``, an
        indexed-NL join may migrate to a hash join mid-flight when its
        probe budget is exceeded (Section 3.3 adaptive operators).

        With a cache hierarchy wired in, the statement flows through
        three tiers (docs/CACHING.md): the parse cache (always), the
        epoch-validated physical-plan cache, and — for the default
        simple/non-adaptive path — the dependency-tracked result cache.
        """
        with self.telemetry.span("query.sql", query=query) as span:
            cache = self._active_cache()
            if cache is not None:
                key, logical = cache.plans.parse(query)
            else:
                logical = parse_sql(query)
            # Result caching covers only the deterministic default path:
            # cost-based plans depend on caller statistics and adaptive
            # runs carry per-execution reports.
            cacheable = (
                cache is not None
                and planner == "simple"
                and statistics is None
                and not adaptive
            )
            if cacheable:
                result = self._sql_cached(cache, key, logical, span)
            else:
                result = self.execute(
                    logical, planner=planner, statistics=statistics, adaptive=adaptive
                )
            # sim cost rolls up from the nested query.execute span
            span.tag("rows", len(result.rows))
        self.telemetry.inc("query.sql")
        self.telemetry.observe("query.sql.sim_ms", result.sim_ms)
        # the full query.sql span (parse → plan → execute) is the trace
        result.trace = span.record() or result.trace
        return result

    def _sql_cached(self, cache: CacheHierarchy, key: str, logical, span) -> QueryResult:
        """The simple-planner path through plan + result tiers."""
        epoch = cache.epoch
        # Same trace shape as the uncached path: planning (even a plan
        # cache hit) appears as a query.plan child span.
        with self.telemetry.span("query.plan", planner="simple"):
            physical = cache.plans.physical(
                key, epoch, lambda: self.simple_planner.plan(logical)
            )
        fingerprint = _describe_physical(physical)
        hit = cache.results.lookup(fingerprint)
        if hit is not None:
            span.tag("cache", "hit")
            span.charge_sim(costs.CACHE_LOOKUP_MS)
            return QueryResult(
                rows=[dict(r) for r in hit.rows],
                sim_ms=costs.CACHE_LOOKUP_MS,
                plan_text=hit.plan_text,
                cached=True,
            )
        span.tag("cache", "miss")
        result = self.run_physical(physical)
        # Admit only when (a) nothing invalidated mid-execution — a put
        # fired while we scanned would leave this answer already stale —
        # and (b) the admission guard agrees (the facade points it at
        # "no missing segments", so degraded answers are never cached).
        if cache.epoch == epoch and cache.can_admit_results():
            cache.results.store(
                fingerprint,
                result.rows,
                frozenset(base_views(logical)),
                result.sim_ms,
                result.plan_text,
            )
        return result

    def execute(
        self,
        logical: LogicalPlan,
        planner: str = "simple",
        statistics=None,
        adaptive: bool = False,
    ) -> QueryResult:
        with self.telemetry.span("query.plan", planner=planner):
            if planner == "simple":
                physical = self.simple_planner.plan(logical)
            elif planner == "costbased":
                if statistics is None:
                    raise ValueError("cost-based planning requires statistics")
                physical = self.optimizer(statistics).plan(logical)
            else:
                raise ValueError(f"unknown planner {planner!r}")
        return self.run_physical(physical, adaptive=adaptive, statistics=statistics)

    def run_physical(
        self,
        physical: PhysicalPlan,
        adaptive: bool = False,
        statistics=None,
    ) -> QueryResult:
        """Execute a physical plan.

        The default path compiles the plan into fused pipeline closures
        (:mod:`repro.query.compile`, memoized by plan fingerprint); the
        interpreters remain as fallbacks (``vectorized=False`` for the
        row engine, ``AdaptiveConfig.compiled_pipelines=False`` for the
        interpreted batch engine).  With ``adaptive`` *and* caller
        *statistics*, pipeline breakers become re-optimization
        checkpoints (docs/ADAPTIVE.md); adaptive without statistics keeps
        the budgeted indexed-join migration.
        """
        meter = _CostMeter(adaptive=adaptive)
        meter.probe_cost_ms = self._probe_cost_ms()
        pipeline = None
        if self.vectorized and self.adaptive_config.compiled_pipelines:
            pipeline = self._compiled_pipeline(physical)
        if pipeline is not None:
            engine_kind = "compiled"
        else:
            engine_kind = "vectorized" if self.vectorized else "rows"
        reoptimizer: Optional[ReOptimizer] = None
        with self.telemetry.span("query.execute", engine=engine_kind) as span:
            batches: Optional[List[ColumnBatch]] = None
            if pipeline is not None:
                reoptimizer = self._make_reoptimizer(adaptive, statistics, meter)
                batches = pipeline.execute(PipelineContext(self, meter, reoptimizer))
                rows = rows_from_batches(batches)
            elif self.vectorized:
                batches = self._run_batches(physical, meter)
                rows = rows_from_batches(batches)
            else:
                rows = self._run(physical, meter)
            span.charge_sim(meter.ms)
        self._note_batch_metrics(meter)
        if reoptimizer is not None:
            self._note_adaptive(reoptimizer)
        return QueryResult(
            rows=rows,
            sim_ms=meter.ms,
            plan_text=_describe_physical(physical),
            adaptive_reports=list(meter.adaptive_reports),
            trace=span.record(),
            batches=batches,
            operator_stats=dict(meter.operators),
        )

    # ------------------------------------------------------------------
    # compiled pipelines + re-optimization (docs/ADAPTIVE.md)
    # ------------------------------------------------------------------
    def _compiled_pipeline(self, physical: PhysicalPlan):
        """Fetch-or-build the compiled pipeline for *physical*.

        With a cache hierarchy the compiled tier lives in the plan cache
        (shared across engines, flushed with it); standalone engines keep
        a small bounded memo so repeated plans still amortize.
        """
        fingerprint = plan_fingerprint(physical)
        counters = self._adaptive_counters
        cache = self._active_cache()
        if cache is not None:
            built = False

            def build():
                nonlocal built
                built = True
                return compile_plan(physical)

            pipeline = cache.plans.compiled(fingerprint, build)
            if built:
                counters["compiled_built"] += 1
                self.telemetry.inc("exec.compiled.built")
            else:
                counters["compiled_hits"] += 1
                self.telemetry.inc("exec.compiled.hits")
            return pipeline
        memo = self._compiled_memo
        pipeline = memo.get(fingerprint)
        if pipeline is not None:
            memo.move_to_end(fingerprint)
            counters["compiled_hits"] += 1
            self.telemetry.inc("exec.compiled.hits")
            return pipeline
        pipeline = compile_plan(physical)
        memo[fingerprint] = pipeline
        if len(memo) > self.COMPILED_MEMO_CAPACITY:
            memo.popitem(last=False)
        counters["compiled_built"] += 1
        self.telemetry.inc("exec.compiled.built")
        return pipeline

    def _make_reoptimizer(
        self, adaptive: bool, statistics, meter: _CostMeter
    ) -> Optional[ReOptimizer]:
        if not adaptive or statistics is None or not self.adaptive_config.enabled:
            return None
        return ReOptimizer(
            self.adaptive_config,
            statistics=statistics,
            optimizer_factory=self.optimizer,
            probe_penalty=self._probe_penalty(),
            report_sink=meter.adaptive_reports,
        )

    def _note_adaptive(self, reoptimizer: ReOptimizer) -> None:
        counters = self._adaptive_counters
        counters["checkpoints"] += reoptimizer.checkpoints
        replans = len(reoptimizer.reports)
        counters["replans"] += replans
        if reoptimizer.checkpoints:
            self.telemetry.inc("adaptive.checkpoint.count", reoptimizer.checkpoints)
        if replans:
            self.telemetry.inc("adaptive.replan.count", replans)

    def adaptive_stats(self) -> Dict[str, Any]:
        """Compiled-pipeline and re-plan counters for ``stats()["adaptive"]``."""
        counters = self._adaptive_counters
        config = self.adaptive_config
        return {
            "compiled": {
                "enabled": bool(self.vectorized and config.compiled_pipelines),
                "built": counters["compiled_built"],
                "hits": counters["compiled_hits"],
                "local_entries": len(self._compiled_memo),
            },
            "replan": {
                "count": counters["replans"],
                "checkpoints": counters["checkpoints"],
            },
            "config": {
                "enabled": config.enabled,
                "divergence_ratio": config.divergence_ratio,
                "max_replans": config.max_replans,
                "probe_budget": config.probe_budget,
            },
        }

    def _note_batch_metrics(self, meter: _CostMeter) -> None:
        if not self.telemetry.enabled or not meter.operators:
            return
        produced = sum(s.batches_out for s in meter.operators.values())
        if produced:
            self.telemetry.inc("exec.batches", produced)
        for stats in meter.operators.values():
            if stats.batches_out:
                self.telemetry.observe(
                    "exec.rows_per_batch", stats.rows_out / stats.batches_out
                )

    # ------------------------------------------------------------------
    # scan (shared leaf of both interpreters)
    # ------------------------------------------------------------------
    def _document_batches(self) -> Iterator[List[Document]]:
        """Documents in storage-sized batches, falling back to chunking
        the flat iterator for repositories without a batched scan."""
        provider = getattr(self.repository, "document_batches", None)
        if provider is not None:
            yield from provider(self.batch_size)
            return
        pending: List[Document] = []
        for document in self.repository.documents():
            pending.append(document)
            if len(pending) >= self.batch_size:
                yield pending
                pending = []
        if pending:
            yield pending

    def _view_batches(self, view_name: str, meter: _CostMeter) -> List[ColumnBatch]:
        """Vectorized scan: project matching documents column-wise.

        Repositories backed by the native column pages expose
        ``view_column_batches`` — batches come straight off the encoded
        pages with zero row materialization (columns are still-encoded
        :class:`~repro.storage.encoding.EncodedColumn` vectors the filter
        path evaluates on integer codes).  The simulated charge is
        identical to the transpose path by construction — the physical
        shortcut must not perturb the cost model the PLAN experiments
        compare — and repositories without the native path (snapshots,
        non-columnar views) fall through to transposing documents.
        """
        view = self.repository.views.get(view_name)
        native = getattr(self.repository, "view_column_batches", None)
        if native is not None:
            produced = native(view, self.batch_size)
            if produced is not None:
                batch_iter, n_docs = produced
                batches = [b for b in batch_iter if b.length]
                n_rows = sum(b.length for b in batches)
                meter.charge(n_docs * costs.SCAN_CPU_MS_PER_DOC)
                meter.charge(n_rows * costs.PROJECT_CPU_MS_PER_ROW)
                stats = meter.stats("scan")
                stats.rows_in += n_docs
                stats.rows_out += n_rows
                stats.batches_out += len(batches)
                return batches
        projector = ColumnProjector(view, self.repository.lookup)
        matches = view.matches
        n_docs = 0
        for chunk in self._document_batches():
            n_docs += len(chunk)
            for document in chunk:
                if matches(document):
                    projector.add(document)
        meter.charge(n_docs * costs.SCAN_CPU_MS_PER_DOC)
        meter.charge(projector.length * costs.PROJECT_CPU_MS_PER_ROW)
        batches = batches_from_columns(
            projector.columns, projector.length, self.batch_size
        )
        stats = meter.stats("scan")
        stats.rows_in += n_docs
        stats.rows_out += projector.length
        stats.batches_out += len(batches)
        return batches

    # ------------------------------------------------------------------
    # row interpreter (legacy engine)
    # ------------------------------------------------------------------
    def _view_rows(self, view_name: str, meter: _CostMeter) -> List[Row]:
        view = self.repository.views.get(view_name)
        rows: List[Row] = []
        n_docs = 0
        for document in self.repository.documents():
            n_docs += 1
            if not view.matches(document):
                continue
            row = view.project(document, self.repository.lookup)
            if row is not None:
                rows.append(row)
        meter.charge(n_docs * costs.SCAN_CPU_MS_PER_DOC)
        meter.charge(len(rows) * costs.PROJECT_CPU_MS_PER_ROW)
        stats = meter.stats("scan")
        stats.rows_in += n_docs
        stats.rows_out += len(rows)
        return rows

    # ------------------------------------------------------------------
    # batch interpreter (vectorized engine)
    # ------------------------------------------------------------------
    def _run_batches(self, plan: PhysicalPlan, meter: _CostMeter) -> List[ColumnBatch]:
        if isinstance(plan, ScanView):
            return self._view_batches(plan.view, meter)
        if isinstance(plan, Filter):
            child = self._run_batches(plan.child, meter)
            meter.charge(
                sum(b.length for b in child) * costs.FILTER_CPU_MS_PER_ROW
            )
            return list(
                filter_batches(child, plan.predicate.selector, meter.stats("filter"))
            )
        if isinstance(plan, Project):
            child = self._run_batches(plan.child, meter)
            meter.charge(
                sum(b.length for b in child) * costs.PROJECT_CPU_MS_PER_ROW
            )
            return list(
                project_batches(child, plan.columns, meter.stats("project"))
            )
        if isinstance(plan, Aggregate):
            child = self._run_batches(plan.child, meter)
            meter.charge(sum(b.length for b in child) * costs.AGG_MS_PER_ROW)
            out = group_aggregate_batches(
                child, plan.group_by, plan.aggs, meter.stats("aggregate")
            )
            out = out.drop_column("__distinct")
            return [out] if out.length else []
        if isinstance(plan, Sort):
            child = self._run_batches(plan.child, meter)
            meter.charge(costs.sort_cost_ms(sum(b.length for b in child)))
            out = sort_batches(child, plan.keys, plan.descending, meter.stats("sort"))
            return [out] if out.length else []
        if isinstance(plan, Limit):
            child = self._run_batches(plan.child, meter)
            remaining = plan.count
            limited: List[ColumnBatch] = []
            for batch in child:
                if remaining <= 0:
                    break
                head = batch.head(remaining)
                limited.append(head)
                remaining -= head.length
            return limited
        if isinstance(plan, PhysHashJoin):
            probe = self._run_batches(plan.probe, meter)
            build = self._run_batches(plan.build, meter)
            meter.charge(
                sum(b.length for b in build) * costs.HASH_BUILD_MS_PER_ROW
                + sum(b.length for b in probe) * costs.HASH_PROBE_MS_PER_ROW
            )
            return list(
                hash_join_batches(
                    probe,
                    build,
                    plan.probe_column,
                    plan.build_column,
                    meter.stats("hash_join"),
                )
            )
        if isinstance(plan, PhysIndexedJoin):
            outer = rows_from_batches(self._run_batches(plan.outer, meter))
            joined = self._indexed_join_rows(plan, outer, meter)
            stats = meter.stats("indexed_join")
            stats.rows_in += len(outer)
            stats.rows_out += len(joined)
            out = list(batches_from_rows(joined, self.batch_size))
            stats.batches_out += len(out)
            return out
        if isinstance(plan, Join):
            raise TypeError("logical Join reached the interpreter; run a planner first")
        raise TypeError(f"cannot execute {plan!r}")

    def _run(self, plan: PhysicalPlan, meter: _CostMeter) -> List[Row]:
        if isinstance(plan, ScanView):
            return self._view_rows(plan.view, meter)
        if isinstance(plan, Filter):
            child = self._run(plan.child, meter)
            meter.charge(len(child) * costs.FILTER_CPU_MS_PER_ROW)
            out = [r for r in child if plan.predicate.matches(r)]
            stats = meter.stats("filter")
            stats.rows_in += len(child)
            stats.rows_out += len(out)
            return out
        if isinstance(plan, Project):
            child = self._run(plan.child, meter)
            meter.charge(len(child) * costs.PROJECT_CPU_MS_PER_ROW)
            stats = meter.stats("project")
            stats.rows_in += len(child)
            stats.rows_out += len(child)
            return [{c: r.get(c) for c in plan.columns} for r in child]
        if isinstance(plan, Aggregate):
            child = self._run(plan.child, meter)
            meter.charge(len(child) * costs.AGG_MS_PER_ROW)
            rows = group_aggregate(
                child, plan.group_by, plan.aggs, meter.stats("aggregate")
            )
            return [
                {k: v for k, v in row.items() if k != "__distinct"} for row in rows
            ]
        if isinstance(plan, Sort):
            child = self._run(plan.child, meter)
            meter.charge(costs.sort_cost_ms(len(child)))
            return sort_rows(child, plan.keys, plan.descending, meter.stats("sort"))
        if isinstance(plan, Limit):
            child = self._run(plan.child, meter)
            return child[: plan.count]
        if isinstance(plan, PhysHashJoin):
            probe = self._run(plan.probe, meter)
            build = self._run(plan.build, meter)
            meter.charge(
                len(build) * costs.HASH_BUILD_MS_PER_ROW
                + len(probe) * costs.HASH_PROBE_MS_PER_ROW
            )
            return list(
                hash_join(
                    probe,
                    build,
                    plan.probe_column,
                    plan.build_column,
                    meter.stats("hash_join"),
                )
            )
        if isinstance(plan, PhysIndexedJoin):
            outer = self._run(plan.outer, meter)
            joined = self._indexed_join_rows(plan, outer, meter)
            stats = meter.stats("indexed_join")
            stats.rows_in += len(outer)
            stats.rows_out += len(joined)
            return joined
        if isinstance(plan, Join):
            raise TypeError("logical Join reached the interpreter; run a planner first")
        raise TypeError(f"cannot execute {plan!r}")

    def _probe_index(self, path, key):
        """Value-index probe, memoized through the cache hierarchy's
        probe tier when one is wired (docs/CACHING.md)."""
        cache = self._active_cache()
        if cache is not None:
            return cache.probes.lookup(
                path,
                key,
                lambda: self.repository.indexes.values.docs_with_value(path, key),
            )
        return self.repository.indexes.values.docs_with_value(path, key)

    def _indexed_join_rows(
        self, plan: PhysIndexedJoin, outer: List[Row], meter: _CostMeter
    ) -> List[Row]:
        """Indexed-NL join body shared by both interpreters (probes are
        inherently row-at-a-time: one index lookup per outer row)."""
        if meter.adaptive:
            view = self.repository.views.get(plan.inner_view)
            path = self._column_path(view, plan.inner_column)
            return self._run_adaptive_indexed_join(plan, outer, view, path, meter)
        return self._probe_join_rows(plan, outer, meter)

    def _probe_join_rows(
        self, plan: PhysIndexedJoin, outer: List[Row], meter: _CostMeter
    ) -> List[Row]:
        """Plain probe loop: one (penalty-priced) index probe per
        non-null outer row."""
        view = self.repository.views.get(plan.inner_view)
        path = self._column_path(view, plan.inner_column)
        results: List[Row] = []
        for row in outer:
            key = row.get(plan.outer_column)
            if key is None:
                continue
            meter.charge(meter.probe_cost_ms)
            doc_ids = self._probe_index(path, key)
            for doc_id in sorted(doc_ids):
                document = self.repository.lookup(doc_id)
                if document is None or not view.matches(document):
                    continue
                inner_row = view.project(document, self.repository.lookup)
                if inner_row is None:
                    continue
                if plan.inner_predicate is not None and not plan.inner_predicate.matches(inner_row):
                    continue
                results.append(merge_joined_row(dict(row), inner_row))
        return results

    def _indexed_join_stage(
        self, plan: PhysIndexedJoin, outer: List[Row], ctx: PipelineContext
    ) -> List[Row]:
        """Compiled indexed-join breaker: the outer side just materialized.

        With a re-optimizer armed this is a checkpoint — the observed
        outer cardinality (and any degraded-node probe penalty) is handed
        to the cost-based optimizer, and an approved re-plan splices in a
        hash strategy over the same materialized outer.  Otherwise the
        stage behaves exactly like the interpreters (plain probes, or the
        budgeted migration under estimate-free adaptive mode).
        """
        meter = ctx.meter
        reoptimizer = ctx.reoptimizer
        if reoptimizer is None:
            return self._indexed_join_rows(plan, outer, meter)
        outer_logical = to_logical(plan.outer)
        inner_logical: LogicalPlan = ScanView(plan.inner_view)
        if plan.inner_predicate is not None and not plan.inner_predicate.is_empty:
            inner_logical = Filter(inner_logical, plan.inner_predicate)
        replacement = reoptimizer.checkpoint_indexed_join(
            stage=(
                f"indexed_join({plan.outer_column}->"
                f"{plan.inner_view}.{plan.inner_column})"
            ),
            observed_outer=len(outer),
            estimated_outer=plan.outer.estimated_rows,
            outer_logical=outer_logical,
            inner_logical=inner_logical,
            outer_column=plan.outer_column,
            inner_column=plan.inner_column,
        )
        if replacement is not None:
            return self._hash_migrate_indexed(plan, outer, meter)
        return self._probe_join_rows(plan, outer, meter)

    def _hash_migrate_indexed(
        self, plan: PhysIndexedJoin, outer: List[Row], meter: _CostMeter
    ) -> List[Row]:
        """Re-plan splice: hash-join the materialized outer against a
        one-shot inner scan, at local (un-penalized) hash costs."""
        from repro.query.adaptive import AdaptiveJoinReport, hash_probe_rows

        before_ms = meter.ms
        scan_meter = _CostMeter()
        inner_rows = self._view_rows(plan.inner_view, scan_meter)
        meter.charge(scan_meter.ms)
        if plan.inner_predicate is not None:
            inner_rows = [r for r in inner_rows if plan.inner_predicate.matches(r)]
        meter.charge(len(inner_rows) * costs.HASH_BUILD_MS_PER_ROW)
        results, probed = hash_probe_rows(
            outer, plan.outer_column, inner_rows, plan.inner_column
        )
        meter.charge(probed * costs.HASH_PROBE_MS_PER_ROW)
        meter.adaptive_reports.append(
            AdaptiveJoinReport(
                probes_done=0,
                switched=True,
                hash_build_rows=len(inner_rows),
                rows_out=len(results),
                sim_ms=meter.ms - before_ms,
            )
        )
        return results

    def _run_adaptive_indexed_join(
        self, plan: PhysIndexedJoin, outer: List[Row], view, path, meter: _CostMeter
    ) -> List[Row]:
        """Indexed-NL with mid-flight migration (Section 3.3)."""
        from repro.query.adaptive import adaptive_indexed_join

        def probe(key) -> List[Row]:
            matches: List[Row] = []
            for doc_id in sorted(self._probe_index(path, key)):
                document = self.repository.lookup(doc_id)
                if document is None or not view.matches(document):
                    continue
                inner_row = view.project(document, self.repository.lookup)
                if inner_row is None:
                    continue
                if plan.inner_predicate is not None and not plan.inner_predicate.matches(inner_row):
                    continue
                matches.append(inner_row)
            return matches

        def inner_scan() -> List[Row]:
            scan_meter = _CostMeter()
            rows = self._view_rows(plan.inner_view, scan_meter)
            meter.charge(scan_meter.ms)
            if plan.inner_predicate is not None:
                rows = [r for r in rows if plan.inner_predicate.matches(r)]
            return rows

        results, report = adaptive_indexed_join(
            outer,
            plan.outer_column,
            probe,
            inner_scan,
            plan.inner_column,
            probe_budget=self.adaptive_config.probe_budget,
            probe_cost_ms=meter.probe_cost_ms,
        )
        meter.charge(report.sim_ms)
        meter.adaptive_reports.append(report)
        return results

    # ------------------------------------------------------------------
    def collect_statistics(self, view_names: Sequence[str]):
        """Scan views and build fresh :class:`Statistics` (charging the
        collection cost the paper's simple planner avoids)."""
        from repro.query.stats import Statistics

        statistics = Statistics()
        meter = _CostMeter()
        statistics.collect({name: self._view_rows(name, meter) for name in view_names})
        return statistics


def _describe_physical(plan: PhysicalPlan, indent: int = 0) -> str:
    pad = "  " * indent
    if isinstance(plan, PhysHashJoin):
        return (
            f"{pad}HashJoin(probe.{plan.probe_column} = build.{plan.build_column})\n"
            + _describe_physical(plan.probe, indent + 1)
            + "\n"
            + _describe_physical(plan.build, indent + 1)
        )
    if isinstance(plan, PhysIndexedJoin):
        header = (
            f"{pad}IndexedNLJoin(outer.{plan.outer_column} -> "
            f"{plan.inner_view}.{plan.inner_column})"
        )
        return header + "\n" + _describe_physical(plan.outer, indent + 1)
    if isinstance(plan, ScanView):
        return f"{pad}Scan({plan.view})"
    if isinstance(plan, Filter):
        return f"{pad}Filter({plan.predicate})\n" + _describe_physical(plan.child, indent + 1)
    if isinstance(plan, Project):
        return f"{pad}Project({', '.join(plan.columns)})\n" + _describe_physical(plan.child, indent + 1)
    if isinstance(plan, Aggregate):
        # Group keys and output names are part of the identity — this
        # string doubles as the result-cache fingerprint, and two queries
        # differing only in GROUP BY must not collide.
        aggs = ", ".join(f"{a.func}({a.column or '*'}) AS {a.name}" for a in plan.aggs)
        group = ", ".join(plan.group_by) or "-"
        return f"{pad}Aggregate(group={group}; {aggs})\n" + _describe_physical(plan.child, indent + 1)
    if isinstance(plan, Sort):
        return f"{pad}Sort({', '.join(plan.keys)})\n" + _describe_physical(plan.child, indent + 1)
    if isinstance(plan, Limit):
        return f"{pad}Limit({plan.count})\n" + _describe_physical(plan.child, indent + 1)
    return f"{pad}{plan!r}"
