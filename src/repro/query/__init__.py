"""Query layer: SQL subset, keyword/faceted/graph interfaces, planners.

Implements the two query interfaces of Section 3.2.1 (keyword/faceted
out of the box, graph-based for applications), the SQL mapping of Figure
2, and Section 3.3's simple planner with a conventional cost-based
optimizer as its experimental baseline.
"""

from repro.query.plans import (
    Aggregate,
    CompareOp,
    Comparison,
    Conjunction,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    ScanView,
    Sort,
    base_views,
    describe,
)
from repro.query.sql import SqlError, parse_sql
from repro.query.stats import ColumnStatistics, Statistics, ViewStatistics
from repro.query.planner import (
    CostBasedOptimizer,
    INDEXED_NL_OUTER_THRESHOLD,
    PhysHashJoin,
    PhysicalPlan,
    PhysIndexedJoin,
    SimplePlanner,
)
from repro.query.engine import (
    LocalRepository,
    QueryEngine,
    QueryResult,
    Repository,
)
from repro.query.keyword import KeywordHit, KeywordSearch
from repro.query.faceted import DrillStep, FacetedSession
from repro.query.graph import ConnectionResult, GraphQuery
from repro.query.adaptive import (
    AdaptiveConfig,
    AdaptiveJoinReport,
    DEFAULT_PROBE_BUDGET,
    ReOptimizer,
    ReplanReport,
    adaptive_indexed_join,
)
from repro.query.compile import CompiledPipeline, compile_plan, plan_fingerprint
from repro.query.hybrid import HybridQuery, HybridSearch
from repro.query.materialized import (
    MaterializationManager,
    MaterializationStats,
    MaterializedQuery,
)
from repro.query.snapshot import SnapshotRepository

__all__ = [
    "Aggregate",
    "CompareOp",
    "Comparison",
    "Conjunction",
    "Filter",
    "Join",
    "Limit",
    "LogicalPlan",
    "Project",
    "ScanView",
    "Sort",
    "base_views",
    "describe",
    "SqlError",
    "parse_sql",
    "ColumnStatistics",
    "Statistics",
    "ViewStatistics",
    "CostBasedOptimizer",
    "INDEXED_NL_OUTER_THRESHOLD",
    "PhysHashJoin",
    "PhysicalPlan",
    "PhysIndexedJoin",
    "SimplePlanner",
    "LocalRepository",
    "QueryEngine",
    "QueryResult",
    "Repository",
    "KeywordHit",
    "KeywordSearch",
    "DrillStep",
    "FacetedSession",
    "ConnectionResult",
    "GraphQuery",
    "AdaptiveConfig",
    "AdaptiveJoinReport",
    "DEFAULT_PROBE_BUDGET",
    "ReOptimizer",
    "ReplanReport",
    "adaptive_indexed_join",
    "CompiledPipeline",
    "compile_plan",
    "plan_fingerprint",
    "HybridQuery",
    "HybridSearch",
    "MaterializationManager",
    "MaterializationStats",
    "MaterializedQuery",
    "SnapshotRepository",
]
