"""The simple planner and the cost-based optimizer baseline (Section 3.3).

"Instead of implementing a full-fledged cost-based optimizer as a
conventional database system does, we propose to build a simple planner
that allows only a few limited choices of the underlying physical
operators.  Such a planner is desirable because it offers predictable
performance (as opposed to optimal performance) and obviates the need
for maintaining complex statistics."

* :class:`SimplePlanner` — no statistics, fixed rules, join order as
  written.  Indexed nested-loop joins whenever the inner side is probe-
  able (the paper: with a top-k interface they "may always be the
  preferred join method"); hash join otherwise.
* :class:`CostBasedOptimizer` — the conventional baseline: consults
  :class:`~repro.query.stats.Statistics` to reorder joins and pick
  methods.  Optimal when statistics are fresh; with stale statistics it
  confidently picks wrong, which is the PLAN experiment's point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, Union

from repro.exec import costs
from repro.query.plans import (
    Aggregate,
    Conjunction,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    ScanView,
    Sort,
)
from repro.query.stats import Statistics

#: Historical fixed cut-over (kept for reference/compat): estimated outer
#: cardinality below which the optimizer preferred indexed-NL probes.
#: The optimizer now derives the break-even from the cost model instead —
#: see :func:`repro.exec.costs.indexed_nl_break_even` — so the planner
#: and the runtime escape hatch (:mod:`repro.query.adaptive`) agree on
#: one set of constants.
INDEXED_NL_OUTER_THRESHOLD = 64.0


def _estimate_field() -> Optional[float]:
    return field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class PhysHashJoin:
    """Hash join: build on *build*, probe with *probe*."""

    probe: "PhysicalPlan"
    build: "PhysicalPlan"
    probe_column: str
    build_column: str
    estimated_rows: Optional[float] = _estimate_field()


@dataclass(frozen=True)
class PhysIndexedJoin:
    """Indexed nested-loop join: for each outer row, probe the inner
    view's value index on *inner_column*."""

    outer: "PhysicalPlan"
    outer_column: str
    inner_view: str
    inner_column: str
    inner_predicate: Optional[Conjunction] = None
    estimated_rows: Optional[float] = _estimate_field()
    #: Estimated inner-side cardinality, the other half of the break-even
    #: the re-optimizer re-checks at the outer's materialization checkpoint.
    estimated_inner_rows: Optional[float] = _estimate_field()


PhysicalPlan = Union[
    ScanView, Filter, Join, Project, Aggregate, Sort, Limit,
    PhysHashJoin, PhysIndexedJoin,
]

#: Callable telling planners whether (view, column) can be index-probed.
IndexProbeCheck = Callable[[str, str], bool]

#: Callable returning the output column names of a view.
ViewColumns = Callable[[str], frozenset]


def push_filters(plan: LogicalPlan, columns_of: Optional[ViewColumns]) -> LogicalPlan:
    """Push filter terms below joins when they reference one side only.

    A semantically safe rewrite both planners apply — the experimental
    contrast between them is join order/method, not filter placement.
    Terms that cannot be attributed to a single side stay above the join.
    Without *columns_of* (no catalog knowledge) the plan is unchanged.
    """
    if columns_of is None:
        return plan
    if isinstance(plan, Filter):
        child = push_filters(plan.child, columns_of)
        if isinstance(child, Join):
            rewritten = _split_filter_over_join(plan.predicate, child, columns_of)
            if rewritten is not None:
                return rewritten
        return Filter(child, plan.predicate)
    if isinstance(plan, Join):
        return Join(
            push_filters(plan.left, columns_of),
            push_filters(plan.right, columns_of),
            plan.left_column,
            plan.right_column,
        )
    if isinstance(plan, Project):
        return Project(push_filters(plan.child, columns_of), plan.columns)
    if isinstance(plan, Aggregate):
        return Aggregate(push_filters(plan.child, columns_of), plan.group_by, plan.aggs)
    if isinstance(plan, Sort):
        return Sort(push_filters(plan.child, columns_of), plan.keys, plan.descending)
    if isinstance(plan, Limit):
        return Limit(push_filters(plan.child, columns_of), plan.count)
    return plan


def _subtree_columns(plan: LogicalPlan, columns_of: ViewColumns) -> frozenset:
    if isinstance(plan, ScanView):
        return columns_of(plan.view)
    if isinstance(plan, Join):
        return _subtree_columns(plan.left, columns_of) | _subtree_columns(
            plan.right, columns_of
        )
    if isinstance(plan, (Filter, Sort, Limit)):
        return _subtree_columns(plan.child, columns_of)
    if isinstance(plan, Project):
        return frozenset(plan.columns)
    if isinstance(plan, Aggregate):
        return frozenset(plan.group_by) | frozenset(a.name for a in plan.aggs)
    return frozenset()


def _split_filter_over_join(
    predicate: Conjunction, join: Join, columns_of: ViewColumns
) -> Optional[LogicalPlan]:
    left_cols = _subtree_columns(join.left, columns_of)
    right_cols = _subtree_columns(join.right, columns_of)
    left_terms, right_terms, residual = [], [], []
    for term in predicate.terms:
        in_left = term.column in left_cols
        in_right = term.column in right_cols
        if in_left and not in_right:
            left_terms.append(term)
        elif in_right and not in_left:
            right_terms.append(term)
        else:
            residual.append(term)
    if not left_terms and not right_terms:
        return None
    left: LogicalPlan = join.left
    right: LogicalPlan = join.right
    if left_terms:
        left = Filter(left, Conjunction(tuple(left_terms)))
    if right_terms:
        right = Filter(right, Conjunction(tuple(right_terms)))
    rewritten: LogicalPlan = Join(left, right, join.left_column, join.right_column)
    if residual:
        rewritten = Filter(rewritten, Conjunction(tuple(residual)))
    return push_filters(rewritten, columns_of)


def _scan_with_filter(plan: LogicalPlan) -> Optional[Tuple[ScanView, Optional[Conjunction]]]:
    """Match ``ScanView`` or ``Filter(ScanView)`` — the inner shapes an
    indexed join can serve."""
    if isinstance(plan, ScanView):
        return plan, None
    if isinstance(plan, Filter) and isinstance(plan.child, ScanView):
        return plan.child, plan.predicate
    return None


class SimplePlanner:
    """Few operators, no statistics, predictable plans."""

    def __init__(
        self,
        can_probe: Optional[IndexProbeCheck] = None,
        columns_of: Optional[ViewColumns] = None,
    ) -> None:
        self._can_probe = can_probe if can_probe is not None else (lambda v, c: True)
        self._columns_of = columns_of

    def plan(self, logical: LogicalPlan) -> PhysicalPlan:
        logical = push_filters(logical, self._columns_of)
        return self._plan(logical)

    def _plan(self, logical: LogicalPlan) -> PhysicalPlan:
        if isinstance(logical, ScanView):
            return logical
        if isinstance(logical, Filter):
            return Filter(self._plan(logical.child), logical.predicate)
        if isinstance(logical, Project):
            return Project(self._plan(logical.child), logical.columns)
        if isinstance(logical, Aggregate):
            return Aggregate(self._plan(logical.child), logical.group_by, logical.aggs)
        if isinstance(logical, Sort):
            return Sort(self._plan(logical.child), logical.keys, logical.descending)
        if isinstance(logical, Limit):
            return Limit(self._plan(logical.child), logical.count)
        if isinstance(logical, Join):
            return self._plan_join(logical)
        raise TypeError(f"cannot plan {logical!r}")

    def _plan_join(self, join: Join) -> PhysicalPlan:
        inner = _scan_with_filter(join.right)
        if inner is not None:
            scan, predicate = inner
            if self._can_probe(scan.view, join.right_column):
                return PhysIndexedJoin(
                    outer=self._plan(join.left),
                    outer_column=join.left_column,
                    inner_view=scan.view,
                    inner_column=join.right_column,
                    inner_predicate=predicate,
                )
        # Fixed fallback: hash join, build on the right side as written.
        return PhysHashJoin(
            probe=self._plan(join.left),
            build=self._plan(join.right),
            probe_column=join.left_column,
            build_column=join.right_column,
        )


class CostBasedOptimizer:
    """Conventional optimizer: statistics-driven join order and method.

    Every physical node it emits carries an ``estimated_rows`` annotation
    (``PhysIndexedJoin`` additionally ``estimated_inner_rows``) — the
    baseline the re-optimizer's materialization checkpoints compare
    observed cardinalities against.  ``probe_cost_ms`` lets the caller
    inflate index-probe cost when the probed data node is degraded; the
    break-even then shifts toward hash joins automatically.
    """

    def __init__(
        self,
        statistics: Statistics,
        can_probe: Optional[IndexProbeCheck] = None,
        columns_of: Optional[ViewColumns] = None,
        probe_cost_ms: float = costs.INDEX_PROBE_MS,
    ) -> None:
        self.statistics = statistics
        self._can_probe = can_probe if can_probe is not None else (lambda v, c: True)
        self._columns_of = columns_of
        self.probe_cost_ms = probe_cost_ms

    def plan(self, logical: LogicalPlan) -> PhysicalPlan:
        logical = push_filters(logical, self._columns_of)
        return self._plan(logical)

    def _plan(self, logical: LogicalPlan) -> PhysicalPlan:
        physical = self._lower(logical)
        try:
            estimate = self.statistics.estimate(logical)
        except TypeError:
            estimate = None
        if estimate is not None:
            # Annotation only — estimated_rows is compare=False, so plan
            # equality/caching stay structural.
            object.__setattr__(physical, "estimated_rows", float(estimate))
        return physical

    def _lower(self, logical: LogicalPlan) -> PhysicalPlan:
        if isinstance(logical, ScanView):
            # Fresh copy: the logical node may be shared (plan cache),
            # and annotations must stay local to this planned tree.
            return ScanView(logical.view, logical.alias)
        if isinstance(logical, Filter):
            return Filter(self._plan(logical.child), logical.predicate)
        if isinstance(logical, Project):
            return Project(self._plan(logical.child), logical.columns)
        if isinstance(logical, Aggregate):
            return Aggregate(self._plan(logical.child), logical.group_by, logical.aggs)
        if isinstance(logical, Sort):
            return Sort(self._plan(logical.child), logical.keys, logical.descending)
        if isinstance(logical, Limit):
            return Limit(self._plan(logical.child), logical.count)
        if isinstance(logical, Join):
            return self._plan_join(logical)
        raise TypeError(f"cannot plan {logical!r}")

    def _plan_join(self, join: Join) -> PhysicalPlan:
        left_rows = self.statistics.estimate(join.left)
        right_rows = self.statistics.estimate(join.right)

        # Consider indexed-NL with either side as outer, if the other
        # side is a probe-able base scan and the outer is below the
        # cost-model break-even against building a hash table over the
        # inner (satellite of docs/ADAPTIVE.md: planner and runtime
        # migration share one cost model).
        candidates = [
            (left_rows, join.left, join.left_column, join.right, join.right_column, right_rows),
            (right_rows, join.right, join.right_column, join.left, join.left_column, left_rows),
        ]
        candidates.sort(key=lambda c: c[0])
        for outer_est, outer, outer_col, inner, inner_col, inner_est in candidates:
            if outer_est > costs.indexed_nl_break_even(inner_est, self.probe_cost_ms):
                continue
            matched = _scan_with_filter(inner)
            if matched is None:
                continue
            scan, predicate = matched
            if self._can_probe(scan.view, inner_col):
                node = PhysIndexedJoin(
                    outer=self._plan(outer),
                    outer_column=outer_col,
                    inner_view=scan.view,
                    inner_column=inner_col,
                    inner_predicate=predicate,
                )
                object.__setattr__(node, "estimated_inner_rows", float(inner_est))
                return node

        # Hash join, building on the (estimated) smaller side.
        if right_rows <= left_rows:
            return PhysHashJoin(
                probe=self._plan(join.left),
                build=self._plan(join.right),
                probe_column=join.left_column,
                build_column=join.right_column,
            )
        return PhysHashJoin(
            probe=self._plan(join.right),
            build=self._plan(join.left),
            probe_column=join.right_column,
            build_column=join.left_column,
        )


def to_logical(plan: PhysicalPlan) -> LogicalPlan:
    """Logical image of a physical plan.

    The re-optimizer hands the *remaining* subtree back to the optimizer
    as logical algebra; this strips physical join choices (and any
    estimate annotations — rebuilt nodes are clean) so the re-plan is a
    fresh decision under the observed statistics.
    """
    if isinstance(plan, PhysHashJoin):
        return Join(
            to_logical(plan.probe),
            to_logical(plan.build),
            plan.probe_column,
            plan.build_column,
        )
    if isinstance(plan, PhysIndexedJoin):
        inner: LogicalPlan = ScanView(plan.inner_view)
        if plan.inner_predicate is not None and not plan.inner_predicate.is_empty:
            inner = Filter(inner, plan.inner_predicate)
        return Join(to_logical(plan.outer), inner, plan.outer_column, plan.inner_column)
    if isinstance(plan, ScanView):
        return ScanView(plan.view, plan.alias)
    if isinstance(plan, Filter):
        return Filter(to_logical(plan.child), plan.predicate)
    if isinstance(plan, Join):
        return Join(
            to_logical(plan.left), to_logical(plan.right),
            plan.left_column, plan.right_column,
        )
    if isinstance(plan, Project):
        return Project(to_logical(plan.child), plan.columns)
    if isinstance(plan, Aggregate):
        return Aggregate(to_logical(plan.child), plan.group_by, plan.aggs)
    if isinstance(plan, Sort):
        return Sort(to_logical(plan.child), plan.keys, plan.descending)
    if isinstance(plan, Limit):
        return Limit(to_logical(plan.child), plan.count)
    raise TypeError(f"cannot convert {plan!r}")
