"""SQL subset: enough of SELECT for legacy applications over views.

Figure 2's promise is that relational applications keep working: rows go
in, views come out, and "traditional structured query languages such as
SQL ... can be mapped to this new query interface".  This module parses

    SELECT [DISTINCT] cols | agg(col) [AS name], ...
    FROM view [alias] [JOIN view [alias] ON a = b]...
    [WHERE col op literal [AND ...]]
    [GROUP BY cols] [HAVING name op literal [AND ...]]
    [ORDER BY col [ASC|DESC]] [LIMIT n]

into the logical algebra of :mod:`repro.query.plans`.  Qualified column
names (``alias.col``) are accepted and resolved by suffix.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.exec.operators import AggSpec
from repro.query.plans import (
    Aggregate,
    CompareOp,
    Comparison,
    Conjunction,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    ScanView,
    Sort,
)


class SqlError(ValueError):
    """Raised on any syntax or semantic error in the SQL text."""


_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<string>'(?:[^']|'')*')
      | (?P<number>-?\d+\.\d+|-?\d+)
      | (?P<op><=|>=|!=|<>|=|<|>)
      | (?P<punct>[(),.*])
      | (?P<word>[A-Za-z_][A-Za-z0-9_]*)
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "distinct", "from", "join", "on", "where", "and", "group",
    "by", "having", "order", "limit", "as", "asc", "desc", "contains",
    "count", "sum", "avg", "min", "max", "true", "false", "null",
}

_AGG_FUNCS = {"count", "sum", "avg", "min", "max"}


@dataclass
class _Token:
    kind: str  # string | number | op | punct | word
    text: str


def _tokenize(sql: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            remainder = sql[pos:].strip()
            if not remainder:
                break
            raise SqlError(f"cannot tokenize near: {remainder[:30]!r}")
        pos = match.end()
        for kind in ("string", "number", "op", "punct", "word"):
            text = match.group(kind)
            if text is not None:
                tokens.append(_Token(kind, text))
                break
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    def _peek(self) -> Optional[_Token]:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise SqlError("unexpected end of query")
        self._pos += 1
        return token

    def _accept_word(self, word: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "word" and token.text.lower() == word:
            self._pos += 1
            return True
        return False

    def _expect_word(self, word: str) -> None:
        if not self._accept_word(word):
            found = self._peek().text if self._peek() else "end of query"
            raise SqlError(f"expected {word.upper()}, found {found!r}")

    def _accept_punct(self, punct: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "punct" and token.text == punct:
            self._pos += 1
            return True
        return False

    def _expect_punct(self, punct: str) -> None:
        if not self._accept_punct(punct):
            found = self._peek().text if self._peek() else "end of query"
            raise SqlError(f"expected {punct!r}, found {found!r}")

    def _identifier(self) -> str:
        token = self._next()
        if token.kind != "word":
            raise SqlError(f"expected identifier, found {token.text!r}")
        if token.text.lower() in _KEYWORDS:
            raise SqlError(f"unexpected keyword {token.text!r}")
        return token.text

    def _column_ref(self) -> str:
        """ident[.ident] — qualified names keep only the column part."""
        name = self._identifier()
        if self._accept_punct("."):
            name = self._identifier()
        return name

    def _literal(self) -> Any:
        token = self._next()
        if token.kind == "string":
            return token.text[1:-1].replace("''", "'")
        if token.kind == "number":
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == "word":
            lowered = token.text.lower()
            if lowered == "true":
                return True
            if lowered == "false":
                return False
            if lowered == "null":
                return None
        raise SqlError(f"expected literal, found {token.text!r}")

    # ------------------------------------------------------------------
    def parse(self) -> LogicalPlan:
        self._expect_word("select")
        distinct = self._accept_word("distinct")
        select_items = self._select_list()
        self._expect_word("from")
        plan = self._table_expression()
        predicate = self._where_clause()
        if predicate is not None:
            plan = Filter(plan, predicate)
        group_by = self._group_by_clause()
        plan = self._apply_select(plan, select_items, group_by, distinct)
        having = self._having_clause()
        if having is not None:
            if group_by == () and not any(s for _, s in select_items if s):
                raise SqlError("HAVING requires GROUP BY or aggregates")
            plan = Filter(plan, having)
        plan = self._order_by_clause(plan)
        plan = self._limit_clause(plan)
        if self._peek() is not None:
            raise SqlError(f"trailing tokens starting at {self._peek().text!r}")
        return plan

    # ------------------------------------------------------------------
    def _select_list(self) -> List[Tuple[str, Optional[AggSpec]]]:
        """Returns [(output_name, agg_or_None)]; '*' yields [('*', None)]."""
        items: List[Tuple[str, Optional[AggSpec]]] = []
        while True:
            token = self._peek()
            if token is None:
                raise SqlError("unexpected end in select list")
            if token.kind == "punct" and token.text == "*":
                self._next()
                items.append(("*", None))
            elif token.kind == "word" and token.text.lower() in _AGG_FUNCS:
                func = self._next().text.lower()
                self._expect_punct("(")
                if self._accept_punct("*"):
                    column: Optional[str] = None
                    if func != "count":
                        raise SqlError(f"{func}(*) is not valid")
                else:
                    column = self._column_ref()
                self._expect_punct(")")
                name = f"{func}_{column or 'all'}"
                if self._accept_word("as"):
                    name = self._identifier()
                items.append((name, AggSpec(name, func, column)))
            else:
                column = self._column_ref()
                name = column
                if self._accept_word("as"):
                    name = self._identifier()
                items.append((name if name != column else column, None))
            if not self._accept_punct(","):
                break
        return items

    def _table_expression(self) -> LogicalPlan:
        plan: LogicalPlan = self._table_ref()
        while self._accept_word("join"):
            right = self._table_ref()
            self._expect_word("on")
            left_col = self._column_ref()
            op = self._next()
            if op.kind != "op" or op.text != "=":
                raise SqlError("JOIN ... ON only supports equality")
            right_col = self._column_ref()
            plan = Join(plan, right, left_col, right_col)
        return plan

    def _table_ref(self) -> ScanView:
        view = self._identifier()
        alias: Optional[str] = None
        token = self._peek()
        if self._accept_word("as"):
            alias = self._identifier()
        elif (
            token is not None
            and token.kind == "word"
            and token.text.lower() not in _KEYWORDS
        ):
            alias = self._identifier()
        return ScanView(view, alias)

    def _where_clause(self) -> Optional[Conjunction]:
        if not self._accept_word("where"):
            return None
        terms: List[Comparison] = [self._condition()]
        while self._accept_word("and"):
            terms.append(self._condition())
        return Conjunction(tuple(terms))

    def _condition(self) -> Comparison:
        column = self._column_ref()
        token = self._next()
        if token.kind == "word" and token.text.lower() == "contains":
            value = self._literal()
            return Comparison(column, CompareOp.CONTAINS, value)
        if token.kind != "op":
            raise SqlError(f"expected comparison operator, found {token.text!r}")
        op_text = "!=" if token.text == "<>" else token.text
        try:
            op = CompareOp(op_text)
        except ValueError:
            raise SqlError(f"unsupported operator {token.text!r}") from None
        return Comparison(column, op, self._literal())

    def _group_by_clause(self) -> Tuple[str, ...]:
        if not self._accept_word("group"):
            return ()
        self._expect_word("by")
        columns = [self._column_ref()]
        while self._accept_punct(","):
            columns.append(self._column_ref())
        return tuple(columns)

    def _having_clause(self) -> Optional[Conjunction]:
        """HAVING is a filter over the aggregate's output columns (use
        the aggregate aliases, e.g. HAVING total > 100)."""
        if not self._accept_word("having"):
            return None
        terms: List[Comparison] = [self._condition()]
        while self._accept_word("and"):
            terms.append(self._condition())
        return Conjunction(tuple(terms))

    def _apply_select(
        self,
        plan: LogicalPlan,
        items: List[Tuple[str, Optional[AggSpec]]],
        group_by: Tuple[str, ...],
        distinct: bool,
    ) -> LogicalPlan:
        aggs = [spec for _, spec in items if spec is not None]
        plain = [name for name, spec in items if spec is None and name != "*"]
        has_star = any(name == "*" for name, spec in items if spec is None)

        if aggs:
            unexpected = [c for c in plain if c not in group_by]
            if unexpected:
                raise SqlError(
                    f"non-aggregated columns {unexpected} must appear in GROUP BY"
                )
            return Aggregate(plan, group_by, tuple(aggs))
        if group_by:
            raise SqlError("GROUP BY requires at least one aggregate in SELECT")
        if distinct:
            # DISTINCT over plain columns is a group-by with no aggregates;
            # model it as count-discarded aggregation.
            if has_star or not plain:
                raise SqlError("DISTINCT requires explicit columns")
            return Aggregate(plan, tuple(plain), (AggSpec("__distinct", "count"),))
        if has_star:
            return plan
        return Project(plan, tuple(plain))

    def _order_by_clause(self, plan: LogicalPlan) -> LogicalPlan:
        if not self._accept_word("order"):
            return plan
        self._expect_word("by")
        keys = [self._column_ref()]
        while self._accept_punct(","):
            keys.append(self._column_ref())
        descending = False
        if self._accept_word("desc"):
            descending = True
        else:
            self._accept_word("asc")
        return Sort(plan, tuple(keys), descending)

    def _limit_clause(self, plan: LogicalPlan) -> LogicalPlan:
        if not self._accept_word("limit"):
            return plan
        token = self._next()
        if token.kind != "number" or "." in token.text:
            raise SqlError(f"LIMIT expects an integer, found {token.text!r}")
        return Limit(plan, int(token.text))


def parse_sql(sql: str) -> LogicalPlan:
    """Parse *sql* into a logical plan (raises :class:`SqlError`)."""
    tokens = _tokenize(sql)
    if not tokens:
        raise SqlError("empty query")
    return _Parser(tokens).parse()
