"""Standing (continuous) queries over the invalidation bus.

``Session.subscribe(sql_or_search)`` registers a query whose **result
deltas** are pushed as writes commit: every invalidation epoch that can
change the result produces at most one :class:`SubscriptionDelta` —
per-epoch coalescing falls straight out of the bus, which publishes one
change set per ``ingest_many``/``ingest_stream`` group commit.  This is
the paper's Fig. 2 views story made real-time: dashboards and alerting
over the call-center / e-discovery corpora watch a query instead of
polling it.

Mechanics:

* **SQL subscriptions** reuse the incremental machinery materialized
  views use (:mod:`repro.query.ivm`): maintainable plans fold each
  change set in O(changed documents); joins and other non-maintainable
  shapes re-evaluate through the engine, gated on the dependency tables
  the change set touches.  The pushed delta is the multiset difference
  between the last delivered result and the current one.
* **Search subscriptions** keep the matching doc-id set.  Each upserted
  document is tested against the query terms via its fused
  :class:`~repro.model.projection.DocumentProjection` (the same
  tokenization the text index uses), deletes drop ids — O(delta) with no
  index probe at all.
* **Delivery** flows through the serving scheduler as ``discovery``-tier
  work by default: under overload the notification is shed, the
  subscription keeps its last-delivered snapshot, and the next epoch's
  delta covers both — a lagging subscriber coalesces instead of losing
  changes.  Replaying every delivered delta from empty always
  reconstructs the current result (the property
  ``tests/test_ivm_properties.py`` proves).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.cache.bus import ChangeSet
from repro.exec.operators import Row
from repro.index.text import tokenize
from repro.query.ivm import NonMaintainable, ViewMaintainer, analyze
from repro.query.plans import base_views
from repro.query.sql import SqlError, parse_sql
from repro.serving.scheduler import Request, RequestShed

#: Virtual service demand charged per delivered notification.
NOTIFY_COST_MS = 0.5


def _row_key(row: Row) -> str:
    return json.dumps(row, sort_keys=True, default=str)


@dataclass(frozen=True)
class SubscriptionDelta:
    """One epoch's result change.  For SQL subscriptions ``added`` /
    ``removed`` are rows (multiset semantics); for search subscriptions
    they are doc ids."""

    epoch: int
    added: Tuple[Any, ...]
    removed: Tuple[Any, ...]

    def __bool__(self) -> bool:
        return bool(self.added or self.removed)


@dataclass
class SubscriptionStats:
    notifications: int = 0   #: deltas delivered (incl. the initial snapshot)
    empty_epochs: int = 0    #: evaluations whose diff was empty (suppressed)
    shed: int = 0            #: notifications shed by the scheduler
    rebuilds: int = 0        #: full re-evaluations (fallback path)
    incremental_applies: int = 0


class Subscription:
    """A standing query; deltas accumulate in :meth:`poll` order.

    Created through :meth:`SubscriptionManager.subscribe` (or
    ``Session.subscribe``).  ``on_delta`` — when given — is invoked with
    each :class:`SubscriptionDelta` at delivery time; :meth:`poll` drains
    the same deltas for pull-style consumers.
    """

    def __init__(
        self,
        manager: "SubscriptionManager",
        sub_id: int,
        query: str,
        kind: str,
        *,
        tenant: str,
        qos: str,
        on_delta: Optional[Callable[[SubscriptionDelta], None]] = None,
    ) -> None:
        self.manager = manager
        self.sub_id = sub_id
        self.query = query
        self.kind = kind  # "sql" | "search"
        self.tenant = tenant
        self.qos = qos
        self.on_delta = on_delta
        self.closed = False
        self.stats = SubscriptionStats()
        self._outbox: List[SubscriptionDelta] = []
        # -- sql state ---------------------------------------------------
        self._maintainer: Optional[ViewMaintainer] = None
        self._dependencies: frozenset = frozenset()
        self._needs_rebuild = True
        #: Last *delivered* result (multiset of canonical row keys, plus a
        #: sample row per key so removals can be materialized).
        self._delivered: Counter = Counter()
        self._delivered_rows: Dict[str, Row] = {}
        # -- search state ------------------------------------------------
        self._terms: Tuple[str, ...] = ()
        self._matched: Set[str] = set()
        self._delivered_ids: Set[str] = set()
        #: True when an epoch touched this subscription but its
        #: notification has not been delivered yet (shed, or pending).
        self._lagging = False

    # ------------------------------------------------------------------
    def poll(self) -> List[SubscriptionDelta]:
        """Drain every delta delivered since the last poll."""
        drained, self._outbox = self._outbox, []
        return drained

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self.manager._detach(self)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"Subscription(#{self.sub_id} {self.kind} {self.query!r} "
            f"tenant={self.tenant!r})"
        )


class SubscriptionManager:
    """All standing queries of one appliance, fed by the bus delta stream."""

    def __init__(self, appliance) -> None:
        self.appliance = appliance
        self._subscriptions: Dict[int, Subscription] = {}
        self._next_id = 0
        self._bus = None

    # ------------------------------------------------------------------
    def attach_to_bus(self, bus) -> None:
        self._bus = bus
        bus.subscribe_deltas(self.on_changes)
        bus.subscribe_node_events(self.on_node_event)

    @property
    def epoch(self) -> int:
        return self._bus.epoch if self._bus is not None else 0

    @property
    def active(self) -> int:
        return len(self._subscriptions)

    def _inc(self, counter: str, value: int = 1) -> None:
        telemetry = getattr(self.appliance, "telemetry", None)
        if telemetry is not None:
            telemetry.inc(counter, value)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def subscribe(
        self,
        query: str,
        *,
        tenant: str = "default",
        qos: str = "discovery",
        on_delta: Optional[Callable[[SubscriptionDelta], None]] = None,
    ) -> Subscription:
        """Register a standing query (SQL if it parses as one, keyword
        search otherwise) and deliver its current result as the initial
        delta — so replaying deltas from empty reconstructs state."""
        kind = "sql"
        plan = None
        stripped = query.strip()
        if stripped[:6].lower() == "select":
            plan = parse_sql(stripped)  # surface SqlError at subscribe time
        else:
            try:
                plan = parse_sql(stripped)
            except SqlError:
                kind = "search"
        self._next_id += 1
        subscription = Subscription(
            self,
            self._next_id,
            query,
            kind,
            tenant=tenant,
            qos=qos,
            on_delta=on_delta,
        )
        if kind == "sql":
            subscription._dependencies = frozenset(base_views(plan))
            maintenance = analyze(plan)
            repository = getattr(self.appliance.engine, "repository", None)
            if maintenance is not None and repository is not None:
                subscription._maintainer = ViewMaintainer(maintenance, repository)
        else:
            subscription._terms = tuple(dict.fromkeys(tokenize(query)))
        self._subscriptions[subscription.sub_id] = subscription
        self._inc("sub.created")
        # Initial snapshot, delivered synchronously (not scheduler-gated:
        # the subscribe call itself was already admitted as a request).
        self._evaluate_and_deliver(subscription, self.epoch)
        return subscription

    def _detach(self, subscription: Subscription) -> None:
        self._subscriptions.pop(subscription.sub_id, None)
        self._inc("sub.closed")

    # ------------------------------------------------------------------
    # bus reactions
    # ------------------------------------------------------------------
    def on_changes(self, changeset: ChangeSet) -> None:
        """One ingest epoch: update cheap incremental state eagerly, then
        push at most one notification per affected subscription through
        the serving scheduler as discovery-tier work."""
        for subscription in list(self._subscriptions.values()):
            if subscription.kind == "search":
                if self._apply_search(subscription, changeset):
                    self._schedule(subscription, changeset.epoch)
            else:
                if self._apply_sql(subscription, changeset):
                    self._schedule(subscription, changeset.epoch)

    def on_node_event(self, node_id: str, kind: str) -> None:
        """Topology/chaos/catalog change: every result is suspect — force
        a rebuild and diff against the last delivered state."""
        epoch = self.epoch
        for subscription in list(self._subscriptions.values()):
            subscription._needs_rebuild = True
            self._schedule(subscription, epoch)

    # -- per-kind incremental state ------------------------------------
    def _apply_sql(self, subscription: Subscription, changeset: ChangeSet) -> bool:
        maintainer = subscription._maintainer
        if maintainer is None or not maintainer.built or subscription._needs_rebuild:
            if subscription._needs_rebuild or maintainer is None:
                touched = any(
                    change.table in subscription._dependencies
                    for change in changeset.changes
                )
                if touched:
                    subscription._needs_rebuild = True
                return touched or subscription._lagging
            subscription._needs_rebuild = True
            return True
        relevant = maintainer.relevant(changeset.changes)
        if not relevant:
            return subscription._lagging
        try:
            maintainer.apply(relevant)
            subscription.stats.incremental_applies += 1
        except NonMaintainable:
            subscription._needs_rebuild = True
        return True

    def _apply_search(self, subscription: Subscription, changeset: ChangeSet) -> bool:
        if not subscription._terms:
            return False
        touched = False
        for change in changeset.changes:
            if change.is_delete:
                if change.doc_id in subscription._matched:
                    subscription._matched.discard(change.doc_id)
                    touched = True
                continue
            projection = _projection_terms(change.document)
            matches = all(term in projection for term in subscription._terms)
            if matches and change.doc_id not in subscription._matched:
                subscription._matched.add(change.doc_id)
                touched = True
            elif not matches and change.doc_id in subscription._matched:
                subscription._matched.discard(change.doc_id)
                touched = True
        return touched or subscription._lagging

    # ------------------------------------------------------------------
    # delivery
    # ------------------------------------------------------------------
    def _schedule(self, subscription: Subscription, epoch: int) -> None:
        """Push one notification through the scheduler; a shed leaves the
        subscription lagging, to be coalesced into the next epoch."""
        subscription._lagging = True
        scheduler = getattr(self.appliance, "serving", None)
        if scheduler is None:
            self._evaluate_and_deliver(subscription, epoch)
            return
        request = Request(
            tenant=subscription.tenant,
            qos=subscription.qos,
            kind="notify",
            fn=lambda: self._evaluate_and_deliver(subscription, epoch),
            cost_ms=NOTIFY_COST_MS,
        )
        try:
            scheduler.execute_inline(request)
        except RequestShed:
            subscription.stats.shed += 1
            self._inc("sub.notify.shed")
        except Exception:
            # A broken standing query must never fail the write that
            # triggered it; the subscription stays lagging and will retry
            # on the next epoch.
            self._inc("sub.notify.error")

    def _evaluate_and_deliver(self, subscription: Subscription, epoch: int) -> None:
        if subscription.closed:
            return
        if subscription.kind == "search":
            if subscription._needs_rebuild:
                subscription._matched = self.appliance.indexes.text.match_all(
                    subscription.query
                )
                subscription._needs_rebuild = False
                subscription.stats.rebuilds += 1
            added = tuple(sorted(subscription._matched - subscription._delivered_ids))
            removed = tuple(sorted(subscription._delivered_ids - subscription._matched))
            delta = SubscriptionDelta(epoch, added, removed)
            subscription._delivered_ids = set(subscription._matched)
        else:
            rows = self._sql_rows(subscription)
            current = Counter(_row_key(row) for row in rows)
            current_rows: Dict[str, Row] = {}
            for row in rows:
                current_rows.setdefault(_row_key(row), row)
            added: List[Row] = []
            removed: List[Row] = []
            for key in sorted(set(current) | set(subscription._delivered)):
                gained = current[key] - subscription._delivered[key]
                if gained > 0:
                    added.extend([dict(current_rows[key])] * gained)
                elif gained < 0:
                    removed.extend(
                        [dict(subscription._delivered_rows[key])] * (-gained)
                    )
            delta = SubscriptionDelta(epoch, tuple(added), tuple(removed))
            subscription._delivered = current
            subscription._delivered_rows = current_rows
        subscription._lagging = False
        if not delta and subscription.stats.notifications > 0:
            subscription.stats.empty_epochs += 1
            self._inc("sub.notify.empty")
            return
        subscription._outbox.append(delta)
        subscription.stats.notifications += 1
        self._inc("sub.notify.delivered")
        if subscription.on_delta is not None:
            subscription.on_delta(delta)

    def _sql_rows(self, subscription: Subscription) -> List[Row]:
        maintainer = subscription._maintainer
        if maintainer is not None:
            if subscription._needs_rebuild or not maintainer.built:
                try:
                    maintainer.rebuild()
                    subscription._needs_rebuild = False
                    subscription.stats.rebuilds += 1
                except NonMaintainable:
                    subscription._maintainer = None
                    return self._engine_rows(subscription)
            return maintainer.evaluate()
        return self._engine_rows(subscription)

    def _engine_rows(self, subscription: Subscription) -> List[Row]:
        subscription._needs_rebuild = False
        subscription.stats.rebuilds += 1
        return list(self.appliance.engine.sql(subscription.query).rows)


def _projection_terms(document) -> Set[str]:
    from repro.model.projection import projection_of

    return set(projection_of(document).term_positions)
