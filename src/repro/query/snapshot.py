"""Time-travel queries: the repository as of a logical timestamp (§4).

Versioning "obviates the need to update all replicas of a document
consistently and synchronously" and keeps every state auditable; this
module makes those retained states *queryable*: a
:class:`SnapshotRepository` serves exactly the document versions visible
at a pinned logical time, so SQL, keyword-over-scan, and views all run
against history unchanged.

Indexes track head state only, so the snapshot exposes an *empty* index
manager: planners see nothing probe-able and fall back to scan-based
plans — slower, but correct against history, which is what an audit
wants. (Maintaining historical indexes is the classic space/time trade
the paper leaves open.)
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.index.manager import IndexManager
from repro.model.document import Document
from repro.model.views import ViewCatalog
from repro.query.engine import QueryEngine, QueryResult


class SnapshotRepository:
    """Engine-protocol repository pinned at a logical timestamp.

    Works over anything exposing per-data-node stores (an
    :class:`~repro.cluster.topology.ImplianceCluster` or the appliance)
    or a single :class:`~repro.storage.store.DocumentStore`.
    """

    def __init__(self, source, ts: int, views: Optional[ViewCatalog] = None) -> None:
        self.ts = ts
        self._stores = self._resolve_stores(source)
        self.views = views if views is not None else getattr(source, "views", ViewCatalog())
        # Head-only indexes must not leak future state into the past:
        # the snapshot advertises empty indexes instead.
        self.indexes = IndexManager()

    @staticmethod
    def _resolve_stores(source) -> List:
        if hasattr(source, "cluster"):  # the appliance facade
            source = source.cluster
        if hasattr(source, "data_nodes"):  # a cluster
            return [node.store for node in source.data_nodes if node.store]
        return [source]  # a bare DocumentStore

    # ------------------------------------------------------------------
    def documents(self) -> Iterator[Document]:
        """Every document version visible at the pinned time."""
        for store in self._stores:
            for doc_id in store.versions.doc_ids():
                visible = store.versions.as_of(doc_id, self.ts)
                if visible is not None:
                    yield visible

    def lookup(self, doc_id: str) -> Optional[Document]:
        """Latest version of *doc_id* visible at the pinned time, across
        every store.

        A re-homed replica means one document's chain may live (in part)
        on several stores: stopping at the first store that ``contains``
        the id would miss a visible version held elsewhere whenever that
        store's copy of the chain starts after the pinned time.  All
        stores are consulted and the highest visible version wins.
        """
        best: Optional[Document] = None
        for store in self._stores:
            if not store.contains(doc_id):
                continue
            visible = store.versions.as_of(doc_id, self.ts)
            if visible is None:
                continue
            if best is None or visible.version > best.version:
                best = visible
        return best

    # ------------------------------------------------------------------
    def sql(self, query: str) -> QueryResult:
        """SQL against the snapshot (scan-based plans only)."""
        return QueryEngine(self).sql(query)

    def doc_count(self) -> int:
        return sum(1 for _ in self.documents())
