"""Incremental view maintenance over bus change sets.

PR 4's invalidation bus could only say *"something changed — recompute"*;
the bus now carries :class:`~repro.cache.bus.ChangeSet`s (doc ids plus
the stored documents, whose fused projections the ingest pipeline already
computed once per document).  This module turns those deltas into O(delta)
materialized-view maintenance:

* :func:`analyze` decides whether a logical plan is *maintainable* —
  a single-view pipeline of scan → filter → project/aggregate → having →
  sort.  Joins, LIMIT (whose contents depend on an engine scan order no
  delta can reconstruct), and subject-widened annotation views (whose
  rows change when a *different* document changes) are not, and fall
  back to full refresh.
* :class:`ViewMaintainer` keeps one post-filter base row per contributing
  document (``doc_id → row``).  An upsert re-projects just the changed
  document; a delete drops its row.  Results are evaluated lazily from
  the maintained base in **canonical doc-id order**, so the incremental
  path and a from-scratch rebuild produce byte-identical rows — the
  property the differential harness in ``tests/test_ivm_properties.py``
  proves under arbitrary interleavings.  (Engine scans stream in
  shard-dependent order; aggregation over floats is order-sensitive, so
  determinism has to come from the maintainer, not the cluster.)

Aggregates are maintained at **group granularity**: the base rows are
bucketed by group key, each group's aggregate row is cached, and a delta
only re-aggregates the groups it touched — O(changed groups), not O(all
rows).  Re-aggregating a whole group (rather than keeping running
accumulators) keeps deletions and the non-distributive avg/min/max exact
without per-group multiset bookkeeping, and because each group's fold
runs over the *same* doc-id-ordered row sequence a full rebuild would
feed it, byte-identity survives even order-sensitive float summation.
Group output order is the sorted key order :func:`group_aggregate` uses,
so assembling cached group rows reproduces the engine's ordering too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cache.bus import DocumentChange
from repro.exec.operators import AggSpec, Row, _orderable, group_aggregate, sort_rows
from repro.model.views import RelationalView
from repro.query.plans import (
    Aggregate,
    Conjunction,
    Filter,
    LogicalPlan,
    Project,
    ScanView,
    Sort,
)


class NonMaintainable(Exception):
    """Raised when a delta cannot be applied incrementally (the caller
    falls back to a full refresh)."""


@dataclass(frozen=True)
class MaintenancePlan:
    """The maintainable normal form of a logical plan.

    ``[Sort]? → [Filter(having)]? → [Project | Aggregate]? → [Filter]? →
    ScanView`` — everything the SQL subset produces except joins and
    limits.
    """

    view_name: str
    predicate: Optional[Conjunction] = None
    project: Optional[Tuple[str, ...]] = None
    group_by: Optional[Tuple[str, ...]] = None
    aggs: Optional[Tuple[AggSpec, ...]] = None
    having: Optional[Conjunction] = None
    sort_keys: Optional[Tuple[str, ...]] = None
    sort_descending: bool = False


def analyze(plan: LogicalPlan) -> Optional[MaintenancePlan]:
    """Normalize *plan* into a :class:`MaintenancePlan`, or None when the
    shape is not incrementally maintainable (Join, Limit)."""
    sort_keys: Optional[Tuple[str, ...]] = None
    sort_descending = False
    having: Optional[Conjunction] = None
    project: Optional[Tuple[str, ...]] = None
    group_by: Optional[Tuple[str, ...]] = None
    aggs: Optional[Tuple[AggSpec, ...]] = None
    predicate: Optional[Conjunction] = None

    node = plan
    if isinstance(node, Sort):
        sort_keys, sort_descending = node.keys, node.descending
        node = node.child
    if isinstance(node, Filter) and isinstance(node.child, Aggregate):
        having = node.predicate
        node = node.child
    if isinstance(node, Project):
        project = node.columns
        node = node.child
    elif isinstance(node, Aggregate):
        group_by, aggs = node.group_by, node.aggs
        node = node.child
    if isinstance(node, Filter):
        predicate = node.predicate
        node = node.child
    if not isinstance(node, ScanView):
        return None  # Join, Limit, or a shape the parser never emits
    return MaintenancePlan(
        view_name=node.view,
        predicate=predicate,
        project=project,
        group_by=group_by,
        aggs=aggs,
        having=having,
        sort_keys=sort_keys,
        sort_descending=sort_descending,
    )


def maintainable_view(view: RelationalView) -> bool:
    """Subject-widened views are not maintainable: their rows read a
    *different* document (the annotation's subject), so a change to the
    subject would not arrive as a delta for the rows it affects."""
    return not view.needs_subject


@dataclass
class MaintainerStats:
    rebuilds: int = 0
    deltas_applied: int = 0
    delta_documents: int = 0
    evaluations: int = 0


class ViewMaintainer:
    """Incrementally maintained result of one :class:`MaintenancePlan`.

    ``repository`` is anything exposing the query-engine repository
    protocol (``views``, ``documents()``, ``lookup``).  The maintainer is
    driven by its owner: :meth:`rebuild` for a full refresh,
    :meth:`apply` for a change set, :meth:`evaluate` to produce rows.
    """

    def __init__(self, plan: MaintenancePlan, repository) -> None:
        self.plan = plan
        self.repository = repository
        self.stats = MaintainerStats()
        #: One post-filter base row per contributing document.
        self._doc_rows: Dict[str, Row] = {}
        #: Aggregate plans only: base rows bucketed by group key, the
        #: cached aggregate row per group, and the groups a delta touched
        #: since the last evaluation.
        self._group_rows: Dict[Tuple, Dict[str, Row]] = {}
        self._group_agg: Dict[Tuple, Row] = {}
        self._stale_groups: set = set()
        self._view: Optional[RelationalView] = None
        self._built = False
        self._result: Optional[List[Row]] = None

    # ------------------------------------------------------------------
    @property
    def built(self) -> bool:
        return self._built

    @property
    def pending(self) -> bool:
        """True when applied deltas have not been folded into the cached
        result yet (the next :meth:`evaluate` re-derives it)."""
        return self._result is None

    def _resolve_view(self) -> RelationalView:
        views = self.repository.views
        if self.plan.view_name not in views:
            raise NonMaintainable(f"view {self.plan.view_name!r} not defined")
        view = views.get(self.plan.view_name)
        if not maintainable_view(view):
            raise NonMaintainable(
                f"view {self.plan.view_name!r} widens rows from subject documents"
            )
        return view

    def _current_view(self) -> RelationalView:
        """The catalog's current definition — compared with the build-time
        snapshot so a replaced (auto-grown) view forces a rebuild instead
        of serving rows projected through the stale definition."""
        view = self._resolve_view()
        if self._view is not None and view is not self._view:
            raise NonMaintainable(f"view {self.plan.view_name!r} was redefined")
        return view

    # ------------------------------------------------------------------
    def _project(self, view: RelationalView, document) -> Optional[Row]:
        """Project one document into its base row (None when it does not
        contribute: wrong table/kind, view predicate, WHERE filter)."""
        if document.is_tombstone or not view.matches(document):
            return None
        row = view.project(document, self.repository.lookup)
        if row is None:
            return None
        if self.plan.predicate is not None and not self.plan.predicate.matches(row):
            return None
        return row

    def _group_key(self, row: Row) -> Tuple:
        return tuple(row.get(c) for c in (self.plan.group_by or ()))

    def rebuild(self) -> None:
        """Full refresh of the maintained base from a repository scan."""
        view = self._resolve_view()
        doc_rows: Dict[str, Row] = {}
        for document in self.repository.documents():
            row = self._project(view, document)
            if row is not None:
                doc_rows[document.doc_id] = row
        self._view = view
        self._doc_rows = doc_rows
        if self.plan.aggs is not None:
            group_rows: Dict[Tuple, Dict[str, Row]] = {}
            for doc_id, row in doc_rows.items():
                group_rows.setdefault(self._group_key(row), {})[doc_id] = row
            self._group_rows = group_rows
            self._group_agg = {}
            self._stale_groups = set(group_rows)
        self._built = True
        self._result = None
        self.stats.rebuilds += 1

    def relevant(self, changes: Sequence[DocumentChange]) -> List[DocumentChange]:
        """The subset of *changes* that can alter this result: documents
        feeding the view, plus previously contributing doc ids (whose new
        version may have stopped matching, or been tombstoned)."""
        if not self._built:
            return list(changes)
        view = self._view
        assert view is not None
        return [
            change
            for change in changes
            if change.doc_id in self._doc_rows
            or (not change.is_delete and view.matches(change.document))
        ]

    def apply(self, changes: Sequence[DocumentChange]) -> int:
        """Fold *changes* into the maintained base — O(len(changes)).

        Raises :class:`NonMaintainable` when the base was never built or
        the view definition moved underneath us; the owner falls back to
        :meth:`rebuild`.
        """
        if not self._built:
            raise NonMaintainable("base not built yet")
        view = self._current_view()
        grouped = self.plan.aggs is not None
        touched = 0
        for change in changes:
            row = None if change.is_delete else self._project(view, change.document)
            old_row = self._doc_rows.get(change.doc_id)
            if row is None:
                if old_row is None:
                    continue  # never contributed; nothing to undo
                del self._doc_rows[change.doc_id]
            else:
                self._doc_rows[change.doc_id] = row
            if grouped:
                if old_row is not None:
                    old_key = self._group_key(old_row)
                    members = self._group_rows.get(old_key)
                    if members is not None:
                        members.pop(change.doc_id, None)
                    self._stale_groups.add(old_key)
                if row is not None:
                    new_key = self._group_key(row)
                    self._group_rows.setdefault(new_key, {})[change.doc_id] = row
                    self._stale_groups.add(new_key)
            touched += 1
        if touched:
            self._result = None
            self.stats.deltas_applied += 1
            self.stats.delta_documents += touched
        return touched

    # ------------------------------------------------------------------
    def _evaluate_groups(self) -> List[Row]:
        """Re-aggregate only the groups deltas touched, then assemble the
        cached group rows in :func:`group_aggregate`'s sorted-key order.
        Each group's fold runs over its rows in doc-id order — exactly
        the subsequence a full rebuild would feed it — so cached and
        recomputed groups are byte-identical by construction."""
        plan = self.plan
        for key in self._stale_groups:
            members = self._group_rows.get(key)
            if not members:
                self._group_rows.pop(key, None)
                self._group_agg.pop(key, None)
                continue
            group = group_aggregate(
                [members[doc_id] for doc_id in sorted(members)],
                plan.group_by or (),
                plan.aggs,
            )
            self._group_agg[key] = {
                k: v for k, v in group[0].items() if k != "__distinct"
            }
        self._stale_groups = set()
        ordered = sorted(
            self._group_agg, key=lambda k: tuple(_orderable(v) for v in k)
        )
        return [dict(self._group_agg[key]) for key in ordered]

    def evaluate(self) -> List[Row]:
        """Rows of the maintained query, derived from the base rows in
        canonical doc-id order (deterministic across incremental and
        rebuilt states — see module docstring)."""
        if self._result is not None:
            return [dict(row) for row in self._result]
        if not self._built:
            raise NonMaintainable("base not built yet")
        plan = self.plan
        if plan.aggs is not None:
            rows = self._evaluate_groups()
            if plan.having is not None:
                rows = [row for row in rows if plan.having.matches(row)]
            if plan.sort_keys is not None:
                rows = sort_rows(rows, plan.sort_keys, plan.sort_descending)
            self._result = rows
            self.stats.evaluations += 1
            return [dict(row) for row in rows]
        rows: List[Row] = [self._doc_rows[doc_id] for doc_id in sorted(self._doc_rows)]
        if plan.project is not None:
            rows = [{name: row.get(name) for name in plan.project} for row in rows]
        else:
            rows = [dict(row) for row in rows]
        if plan.having is not None:
            rows = [row for row in rows if plan.having.matches(row)]
        if plan.sort_keys is not None:
            rows = sort_rows(rows, plan.sort_keys, plan.sort_descending)
        self._result = rows
        self.stats.evaluations += 1
        return [dict(row) for row in rows]
