"""Materialized query results as derived data (paper Sections 3.2 / 3.4).

Section 3.2: base data "may subsequently be transformed into different
formats or combined with other documents ... and stored in one or more
transformed states that are easier to process."  Section 3.4 lists
"materialized views, indexes, and replicas" as the re-creatable derived
data the storage manager may replicate cheaply (BRONZE class).

A :class:`MaterializedQuery` caches the result of one SQL query.  Puts
against the repository invalidate it (listeners mark it dirty); reads
either serve the cache, refresh on demand, or — the Impliance twist —
persist the cached rows as a DERIVED document so the transformed state is
itself searchable, versioned, and replicated like everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cache.bus import InvalidationBus
from repro.exec.operators import Row
from repro.model.document import Document, DocumentKind
from repro.query.engine import QueryEngine
from repro.query.plans import base_views
from repro.query.sql import parse_sql


@dataclass
class MaterializationStats:
    refreshes: int = 0
    cache_hits: int = 0
    invalidations: int = 0


class MaterializedQuery:
    """One cached SQL result with dependency-based invalidation.

    Parameters
    ----------
    name:
        Identity of the materialization (also used for persisted state).
    sql:
        The SELECT this caches.
    engine:
        Engine to (re)compute through.
    """

    def __init__(self, name: str, sql: str, engine: QueryEngine) -> None:
        if not name:
            raise ValueError("materialization needs a name")
        self.name = name
        self.sql = sql
        self.engine = engine
        self._dependencies = frozenset(base_views(parse_sql(sql)))
        self._cache: Optional[List[Row]] = None
        self._dirty = True
        self.stats = MaterializationStats()

    @property
    def dependencies(self) -> frozenset:
        """The views whose base tables invalidate this cache."""
        return self._dependencies

    @property
    def is_fresh(self) -> bool:
        return self._cache is not None and not self._dirty

    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        self._dirty = True
        self.stats.invalidations += 1

    def on_put(self, document: Document, address=None) -> None:
        """Put-listener: a write to a dependency table marks us dirty.

        Writes to unrelated tables leave the cache valid — dependency
        tracking is what makes materialization cheap under mixed load.
        Persisting *this* materialization's own state is exempt: an MV
        whose SQL reads an ``mv_`` view would otherwise self-invalidate
        on every :meth:`to_document` put, staying dirty forever.
        """
        if document.metadata.get("materialization") == self.name:
            return
        table = document.metadata.get("table")
        if table in self._dependencies:
            self.invalidate()

    def refresh(self) -> List[Row]:
        # Clear the dirty flag *before* recomputing: an invalidation that
        # fires mid-refresh (a discovery put piggybacked on the refresh
        # scan, a concurrent ingest) must re-mark the cache dirty rather
        # than be erased by a post-recompute clear — the classic lost
        # invalidation.  If the flag is set again by the time the SQL
        # returns, the fresh rows are served but stay flagged stale.
        self._dirty = False
        result = self.engine.sql(self.sql)
        self._cache = list(result.rows)
        self.stats.refreshes += 1
        return list(self._cache)

    def rows(self) -> List[Row]:
        """Serve from cache; refresh first when dirty."""
        if self._cache is None or self._dirty:
            return self.refresh()
        self.stats.cache_hits += 1
        return list(self._cache)

    # ------------------------------------------------------------------
    def to_document(self, doc_id: str) -> Document:
        """Persist the current state as a DERIVED (BRONZE-class) document.

        The storage manager replicates derived data at the lowest class
        because this document is exactly re-creatable from its SQL.
        """
        rows = self.rows()
        return Document(
            doc_id=doc_id,
            content={"materialized": {"name": self.name, "sql": self.sql, "rows": rows}},
            kind=DocumentKind.DERIVED,
            source_format="materialized",
            metadata={"table": f"mv_{self.name}", "materialization": self.name},
        )


class MaterializationManager:
    """Registry riding the appliance invalidation bus.

    Pre-cache-hierarchy this class kept a private fan-out hooked straight
    into ``DocumentStore.put_listeners``; it now subscribes to the shared
    :class:`~repro.cache.bus.InvalidationBus` like every other cache tier
    (:meth:`attach_to_store` remains as a shim that builds a private bus
    for standalone use).  Node events — chaos crash/corrupt/partition —
    dirty every materialization, because a refresh may now read different
    replicas than the cached rows did.
    """

    def __init__(self, engine: QueryEngine) -> None:
        self.engine = engine
        self._materializations: Dict[str, MaterializedQuery] = {}

    def define(self, name: str, sql: str) -> MaterializedQuery:
        if name in self._materializations:
            raise ValueError(f"materialization {name!r} already defined")
        materialized = MaterializedQuery(name, sql, self.engine)
        self._materializations[name] = materialized
        return materialized

    def get(self, name: str) -> MaterializedQuery:
        try:
            return self._materializations[name]
        except KeyError:
            raise KeyError(f"no materialization named {name!r}") from None

    def names(self) -> List[str]:
        return sorted(self._materializations)

    def on_put(self, document: Document, address=None) -> None:
        """Fan a put event out to every materialization's tracker."""
        for materialized in self._materializations.values():
            materialized.on_put(document, address)

    def on_node_event(self, node_id: str, kind: str) -> None:
        """Chaos/topology change: all cached rows are suspect."""
        self.invalidate_all()

    def invalidate_all(self) -> None:
        for materialized in self._materializations.values():
            materialized.invalidate()

    def attach_to_bus(self, bus: InvalidationBus) -> None:
        """Subscribe to the shared invalidation bus (the appliance way)."""
        bus.subscribe_puts(self.on_put)
        bus.subscribe_node_events(self.on_node_event)

    def attach_to_store(self, store) -> None:
        """Standalone shim: bridge one store through a private bus."""
        bus = InvalidationBus()
        bus.attach_store(store)
        self.attach_to_bus(bus)

    def refresh_all(self) -> int:
        refreshed = 0
        for materialized in self._materializations.values():
            if not materialized.is_fresh:
                materialized.refresh()
                refreshed += 1
        return refreshed
