"""Materialized query results as derived data (paper Sections 3.2 / 3.4).

Section 3.2: base data "may subsequently be transformed into different
formats or combined with other documents ... and stored in one or more
transformed states that are easier to process."  Section 3.4 lists
"materialized views, indexes, and replicas" as the re-creatable derived
data the storage manager may replicate cheaply (BRONZE class).

A :class:`MaterializedQuery` caches the result of one SQL query.  Puts
against the repository invalidate it (listeners mark it dirty); reads
either serve the cache, refresh on demand, or — the Impliance twist —
persist the cached rows as a DERIVED document so the transformed state is
itself searchable, versioned, and replicated like everything else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.exec.operators import Row
from repro.model.document import Document, DocumentKind
from repro.query.engine import QueryEngine, QueryResult
from repro.query.plans import base_views
from repro.query.sql import parse_sql


@dataclass
class MaterializationStats:
    refreshes: int = 0
    cache_hits: int = 0
    invalidations: int = 0


class MaterializedQuery:
    """One cached SQL result with dependency-based invalidation.

    Parameters
    ----------
    name:
        Identity of the materialization (also used for persisted state).
    sql:
        The SELECT this caches.
    engine:
        Engine to (re)compute through.
    """

    def __init__(self, name: str, sql: str, engine: QueryEngine) -> None:
        if not name:
            raise ValueError("materialization needs a name")
        self.name = name
        self.sql = sql
        self.engine = engine
        self._dependencies = frozenset(base_views(parse_sql(sql)))
        self._cache: Optional[List[Row]] = None
        self._dirty = True
        self.stats = MaterializationStats()

    @property
    def dependencies(self) -> frozenset:
        """The views whose base tables invalidate this cache."""
        return self._dependencies

    @property
    def is_fresh(self) -> bool:
        return self._cache is not None and not self._dirty

    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        self._dirty = True
        self.stats.invalidations += 1

    def on_put(self, document: Document, address=None) -> None:
        """Put-listener: a write to a dependency table marks us dirty.

        Writes to unrelated tables leave the cache valid — dependency
        tracking is what makes materialization cheap under mixed load.
        """
        table = document.metadata.get("table")
        if table in self._dependencies:
            self.invalidate()

    def refresh(self) -> List[Row]:
        result = self.engine.sql(self.sql)
        self._cache = list(result.rows)
        self._dirty = False
        self.stats.refreshes += 1
        return list(self._cache)

    def rows(self) -> List[Row]:
        """Serve from cache; refresh first when dirty."""
        if self._cache is None or self._dirty:
            return self.refresh()
        self.stats.cache_hits += 1
        return list(self._cache)

    # ------------------------------------------------------------------
    def to_document(self, doc_id: str) -> Document:
        """Persist the current state as a DERIVED (BRONZE-class) document.

        The storage manager replicates derived data at the lowest class
        because this document is exactly re-creatable from its SQL.
        """
        rows = self.rows()
        return Document(
            doc_id=doc_id,
            content={"materialized": {"name": self.name, "sql": self.sql, "rows": rows}},
            kind=DocumentKind.DERIVED,
            source_format="materialized",
            metadata={"table": f"mv_{self.name}", "materialization": self.name},
        )


class MaterializationManager:
    """Registry wiring materializations to a repository's put streams."""

    def __init__(self, engine: QueryEngine) -> None:
        self.engine = engine
        self._materializations: Dict[str, MaterializedQuery] = {}
        self._put_hooks: List[Callable[[Document], None]] = []

    def define(self, name: str, sql: str) -> MaterializedQuery:
        if name in self._materializations:
            raise ValueError(f"materialization {name!r} already defined")
        materialized = MaterializedQuery(name, sql, self.engine)
        self._materializations[name] = materialized
        return materialized

    def get(self, name: str) -> MaterializedQuery:
        try:
            return self._materializations[name]
        except KeyError:
            raise KeyError(f"no materialization named {name!r}") from None

    def names(self) -> List[str]:
        return sorted(self._materializations)

    def on_put(self, document: Document, address=None) -> None:
        """Fan a put event out to every materialization's tracker."""
        for materialized in self._materializations.values():
            materialized.on_put(document, address)

    def attach_to_store(self, store) -> None:
        store.put_listeners.append(self.on_put)

    def refresh_all(self) -> int:
        refreshed = 0
        for materialized in self._materializations.values():
            if not materialized.is_fresh:
                materialized.refresh()
                refreshed += 1
        return refreshed
