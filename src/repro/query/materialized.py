"""Materialized query results as derived data (paper Sections 3.2 / 3.4).

Section 3.2: base data "may subsequently be transformed into different
formats or combined with other documents ... and stored in one or more
transformed states that are easier to process."  Section 3.4 lists
"materialized views, indexes, and replicas" as the re-creatable derived
data the storage manager may replicate cheaply (BRONZE class).

A :class:`MaterializedQuery` caches the result of one SQL query.  Change
sets from the invalidation bus maintain it **incrementally** when the
query's shape allows (see :mod:`repro.query.ivm`): an upsert or delete
touches only the changed documents' contribution, and reads re-derive the
result from the maintained base instead of rescanning the cluster.  When
a delta is not maintainable — joins, LIMIT, subject-widened views, a
change arriving mid-refresh, chaos corruption announced as a node event —
the view **falls back to a full refresh**, which is exactly the PR 4
behavior.  Reads either serve the cache, fold pending deltas, refresh on
demand, or — the Impliance twist — persist the rows as a DERIVED document
so the transformed state is itself searchable, versioned, and replicated
like everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.cache.bus import ChangeSet, InvalidationBus
from repro.exec.operators import Row
from repro.model.document import Document, DocumentKind
from repro.query.engine import QueryEngine
from repro.query.ivm import NonMaintainable, ViewMaintainer, analyze
from repro.query.plans import base_views
from repro.query.sql import parse_sql


@dataclass
class MaterializationStats:
    refreshes: int = 0
    cache_hits: int = 0
    invalidations: int = 0
    #: Change sets applied incrementally (each O(changed documents)).
    deltas_applied: int = 0
    #: Documents those change sets carried for this view.
    delta_documents: int = 0
    #: Reads served by folding pending deltas instead of a full refresh.
    incremental_serves: int = 0
    #: Full refreshes forced on an incrementally maintained view
    #: (non-maintainable delta, node event, mid-refresh change).
    fallbacks: int = 0


class MaterializedQuery:
    """One cached SQL result with delta-driven maintenance.

    Parameters
    ----------
    name:
        Identity of the materialization (also used for persisted state).
    sql:
        The SELECT this caches.
    engine:
        Engine to (re)compute through.
    incremental:
        When True (default) and the query's plan is maintainable, bus
        change sets are applied incrementally; False pins the PR 4
        refresh-only behavior (used by the differential harness as its
        from-scratch oracle, and by benchmarks as the baseline).
    epoch_source:
        Callable returning the current bus epoch; the refresh race guard
        compares it before/after a recompute.  The manager wires this to
        its bus; standalone views default to a constant.
    """

    def __init__(
        self,
        name: str,
        sql: str,
        engine: QueryEngine,
        *,
        incremental: bool = True,
        epoch_source: Optional[Callable[[], int]] = None,
    ) -> None:
        if not name:
            raise ValueError("materialization needs a name")
        self.name = name
        self.sql = sql
        self.engine = engine
        self.incremental = incremental
        self.epoch_source = epoch_source if epoch_source is not None else (lambda: 0)
        self._logical = parse_sql(sql)
        self._dependencies = frozenset(base_views(self._logical))
        self._cache: Optional[List[Row]] = None
        self._dirty = True
        self._refreshing = False
        self._maintainer: Optional[ViewMaintainer] = None
        self._maintainer_resolved = False
        self.stats = MaterializationStats()
        self._telemetry = getattr(engine, "telemetry", None)

    # ------------------------------------------------------------------
    @property
    def dependencies(self) -> frozenset:
        """The views whose base tables invalidate this cache."""
        return self._dependencies

    @property
    def is_fresh(self) -> bool:
        """True when :meth:`rows` serves without any recomputation —
        neither a full refresh nor folding pending deltas."""
        return self._cache is not None and not self._dirty

    @property
    def is_maintainable(self) -> bool:
        """True when change sets are applied incrementally (resolved at
        first refresh, when the catalog knows the scanned view)."""
        return self._maintainer is not None

    def _inc(self, counter: str, value: int = 1) -> None:
        if self._telemetry is not None:
            self._telemetry.inc(counter, value)

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        self._dirty = True
        self.stats.invalidations += 1

    def on_put(self, document: Document, address=None) -> None:
        """Legacy per-document listener: a write to a dependency table
        marks us dirty (no incremental application).

        Writes to unrelated tables leave the cache valid — dependency
        tracking is what makes materialization cheap under mixed load.
        Persisting *this* materialization's own state is exempt: an MV
        whose SQL reads an ``mv_`` view would otherwise self-invalidate
        on every :meth:`to_document` put, staying dirty forever.
        """
        if document.metadata.get("materialization") == self.name:
            return
        table = document.metadata.get("table")
        if table in self._dependencies:
            self.invalidate()

    def on_node_event(self, node_id: str, kind: str) -> None:
        """Chaos/topology/catalog change: the maintained base may no
        longer reflect what a scan would see (corruption, re-homing, a
        redefined view) — fall back to a full refresh on next read."""
        if self._maintainer is not None and self._maintainer.built:
            self.stats.fallbacks += 1
            self._inc(f"mv.fallback.{kind}")
        self.invalidate()

    def apply_changes(self, changeset: ChangeSet) -> None:
        """Bus delta: apply incrementally when possible, else invalidate.

        The non-incremental paths reproduce :meth:`on_put`'s dependency
        semantics exactly; the incremental path narrows further (a
        dependency-table write that cannot change this result — filtered
        out, wrong view — leaves the cache untouched entirely).
        """
        changes = [
            change
            for change in changeset.changes
            if change.document.metadata.get("materialization") != self.name
        ]
        if not changes:
            return
        maintainer = self._maintainer if self.incremental else None
        if maintainer is None:
            if any(change.table in self._dependencies for change in changes):
                self.invalidate()
            return
        relevant = maintainer.relevant(changes)
        if not relevant:
            return
        if self._refreshing or self._dirty or not maintainer.built:
            # Mid-refresh or already stale: the pending full refresh (or
            # its epoch guard) covers these documents.
            self.invalidate()
            return
        try:
            touched = maintainer.apply(relevant)
        except NonMaintainable:
            self.stats.fallbacks += 1
            self._inc("mv.fallback.delta")
            self.invalidate()
            return
        if touched:
            self._cache = None  # pending: next read folds the delta
            self.stats.deltas_applied += 1
            self.stats.delta_documents += touched
            self._inc("mv.delta.applied")
            self._inc("mv.delta.docs", touched)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def _ensure_maintainer(self) -> Optional[ViewMaintainer]:
        """Resolve the incremental maintainer lazily, at first refresh —
        the scanned view may be auto-defined by ingest after the MV."""
        if not self.incremental:
            return None
        if self._maintainer is None and not self._maintainer_resolved:
            plan = analyze(self._logical)
            repository = getattr(self.engine, "repository", None)
            if plan is not None and repository is not None:
                maintainer = ViewMaintainer(plan, repository)
                try:
                    maintainer._resolve_view()
                except NonMaintainable:
                    maintainer = None
                self._maintainer = maintainer
            if self._maintainer is not None or plan is None:
                # A missing view may appear later; retry until it does.
                self._maintainer_resolved = True
        return self._maintainer

    def refresh(self) -> List[Row]:
        # Clear the dirty flag *before* recomputing, and snapshot the bus
        # epoch: an invalidation or delta that fires mid-refresh (a
        # discovery put piggybacked on the refresh scan, a concurrent
        # ingest) must re-mark the cache dirty rather than be erased by a
        # post-recompute clear — the classic lost invalidation.  The
        # epoch comparison mirrors the result cache's admission guard in
        # ``QueryEngine._sql_cached``.
        self._dirty = False
        epoch_before = self.epoch_source()
        self._refreshing = True
        try:
            maintainer = self._ensure_maintainer()
            if maintainer is not None:
                maintainer.rebuild()
                self._cache = maintainer.evaluate()
            else:
                result = self.engine.sql(self.sql)
                self._cache = list(result.rows)
        finally:
            self._refreshing = False
        if self.epoch_source() != epoch_before:
            # Something changed while we recomputed: serve these rows but
            # leave the view flagged stale.
            self._dirty = True
        self.stats.refreshes += 1
        self._inc("mv.refresh.full")
        return list(self._cache)

    def rows(self) -> List[Row]:
        """Serve from cache; fold pending deltas or refresh when needed."""
        if self._dirty:
            return self.refresh()
        if self._cache is None:
            maintainer = self._maintainer
            if maintainer is not None and maintainer.built:
                self._cache = maintainer.evaluate()
                self.stats.incremental_serves += 1
                self._inc("mv.serve.incremental")
                return list(self._cache)
            return self.refresh()
        self.stats.cache_hits += 1
        return list(self._cache)

    # ------------------------------------------------------------------
    def to_document(self, doc_id: str) -> Document:
        """Persist the current state as a DERIVED (BRONZE-class) document.

        The storage manager replicates derived data at the lowest class
        because this document is exactly re-creatable from its SQL.
        """
        rows = self.rows()
        return Document(
            doc_id=doc_id,
            content={"materialized": {"name": self.name, "sql": self.sql, "rows": rows}},
            kind=DocumentKind.DERIVED,
            source_format="materialized",
            metadata={"table": f"mv_{self.name}", "materialization": self.name},
        )


class MaterializationManager:
    """Registry riding the appliance invalidation bus.

    Pre-cache-hierarchy this class kept a private fan-out hooked straight
    into ``DocumentStore.put_listeners``; it now subscribes to the shared
    :class:`~repro.cache.bus.InvalidationBus` like every other cache tier
    (:meth:`attach_to_store` remains as a shim that builds a private bus
    for standalone use), consuming the bus's delta stream so maintainable
    views update in O(changed documents).  Node events — chaos
    crash/corrupt/partition — dirty every materialization, because a
    refresh may now read different replicas than the cached rows did.
    """

    def __init__(self, engine: QueryEngine, *, incremental: bool = True) -> None:
        self.engine = engine
        #: Default for newly defined views; flip off to pin the PR 4
        #: refresh-only behavior appliance-wide (benchmark baseline).
        self.incremental = incremental
        self._materializations: Dict[str, MaterializedQuery] = {}
        self._bus: Optional[InvalidationBus] = None

    @property
    def epoch(self) -> int:
        return self._bus.epoch if self._bus is not None else 0

    def define(
        self, name: str, sql: str, *, incremental: Optional[bool] = None
    ) -> MaterializedQuery:
        if name in self._materializations:
            raise ValueError(f"materialization {name!r} already defined")
        materialized = MaterializedQuery(
            name,
            sql,
            self.engine,
            incremental=self.incremental if incremental is None else incremental,
            epoch_source=lambda: self.epoch,
        )
        self._materializations[name] = materialized
        return materialized

    def get(self, name: str) -> MaterializedQuery:
        try:
            return self._materializations[name]
        except KeyError:
            raise KeyError(f"no materialization named {name!r}") from None

    def names(self) -> List[str]:
        return sorted(self._materializations)

    def on_changes(self, changeset: ChangeSet) -> None:
        """Fan one bus change set out to every materialization."""
        for materialized in self._materializations.values():
            materialized.apply_changes(changeset)

    def on_put(self, document: Document, address=None) -> None:
        """Legacy fan-out of a single put (dependency invalidation only)."""
        for materialized in self._materializations.values():
            materialized.on_put(document, address)

    def on_node_event(self, node_id: str, kind: str) -> None:
        """Chaos/topology change: all cached rows are suspect."""
        for materialized in self._materializations.values():
            materialized.on_node_event(node_id, kind)

    def invalidate_all(self) -> None:
        for materialized in self._materializations.values():
            materialized.invalidate()

    def attach_to_bus(self, bus: InvalidationBus) -> None:
        """Subscribe to the shared invalidation bus (the appliance way)."""
        self._bus = bus
        bus.subscribe_deltas(self.on_changes)
        bus.subscribe_node_events(self.on_node_event)

    def attach_to_store(self, store) -> None:
        """Standalone shim: bridge one store through a private bus."""
        bus = InvalidationBus()
        bus.attach_store(store)
        self.attach_to_bus(bus)

    def refresh_all(self) -> int:
        """Bring every stale view current (full refresh or delta fold);
        returns how many were stale."""
        refreshed = 0
        for materialized in self._materializations.values():
            if not materialized.is_fresh:
                materialized.rows()
                refreshed += 1
        return refreshed
