"""Graph query interface (paper Section 3.2.1).

"Our preliminary study suggests that it will be a graph-based, web
semantics-oriented query interface ... For example, given two pieces of
data, we should be able to ask how they are connected."

Queries run over the association graph the discovery engine built into
the join index: connection paths, neighborhoods, and transitive closure
with relation filters — the latter powering the legal-discovery use case
(Section 2.1.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.model.document import Document
from repro.obs.telemetry import DISABLED
from repro.query.result import QueryResult


@dataclass
class ConnectionResult:
    """An answer to "how are these two connected?"."""

    path: List[str]                       # doc-ids, inclusive
    edges: List[Tuple[str, str, str]]     # (from, relation, to) per hop

    @property
    def hops(self) -> int:
        return len(self.path) - 1

    def render(self) -> str:
        if not self.edges:
            return self.path[0] if self.path else "(no path)"
        pieces = [self.edges[0][0]]
        for from_doc, relation, to_doc in self.edges:
            pieces.append(f"--[{relation}]--> {to_doc}")
        return " ".join(pieces)


class GraphQuery:
    """Association-graph queries over a repository."""

    def __init__(self, repository, telemetry=None) -> None:
        self.repository = repository
        self.telemetry = telemetry if telemetry is not None else DISABLED

    @property
    def _joins(self):
        return self.repository.indexes.joins

    # ------------------------------------------------------------------
    def how_connected(
        self,
        source: str,
        target: str,
        max_hops: int = 4,
        relations: Optional[Set[str]] = None,
    ) -> Optional[ConnectionResult]:
        """Shortest association path between two documents."""
        path = self._joins.connection(source, target, max_hops, relations)
        if path is None:
            return None
        edges: List[Tuple[str, str, str]] = []
        for from_doc, to_doc in zip(path, path[1:]):
            relation = self._edge_relation(from_doc, to_doc, relations)
            edges.append((from_doc, relation, to_doc))
        return ConnectionResult(path=path, edges=edges)

    def connected(
        self,
        source: str,
        target: str,
        max_hops: int = 4,
        relations: Optional[Set[str]] = None,
    ) -> QueryResult:
        """:meth:`how_connected` through the unified result surface.

        Always returns a :class:`QueryResult`: falsy (no rows, no
        connection) when no path exists, otherwise ``result.connection``
        is the :class:`ConnectionResult` and each row is one hop
        (``{"from", "relation", "to"}``).
        """
        with self.telemetry.span(
            "query.graph", source=source, target=target
        ) as span:
            connection = self.how_connected(source, target, max_hops, relations)
            span.tag("hops", connection.hops if connection else -1)
        self.telemetry.inc("query.graph")
        if connection is None:
            return QueryResult(trace=span.record())
        return QueryResult.from_connection(connection, trace=span.record())

    def _edge_relation(
        self, a: str, b: str, relations: Optional[Set[str]]
    ) -> str:
        for relation in self._joins.relations():
            if relations is not None and relation not in relations:
                continue
            if b in self._joins.targets(relation, a) or a in self._joins.targets(relation, b):
                return relation
        return "related"

    # ------------------------------------------------------------------
    def related(
        self,
        doc_id: str,
        relation: Optional[str] = None,
        fetch: bool = False,
    ) -> Dict[str, Optional[Document]]:
        """One-hop neighborhood, optionally restricted to a relation."""
        relations = {relation} if relation else None
        neighbors = self._joins.neighbors(doc_id, relations)
        return {
            n: (self.repository.lookup(n) if fetch else None)
            for n in sorted(neighbors)
        }

    def closure(
        self,
        seed: str,
        relations: Optional[Set[str]] = None,
        max_hops: Optional[int] = None,
    ) -> Set[str]:
        """Transitive closure of associations from *seed* — the
        e-discovery "everything pertinent" query."""
        return self._joins.transitive_closure(seed, relations, max_hops)

    def hubs(self, top: int = 10) -> List[Tuple[str, int]]:
        """Most-connected documents (degree ranking)."""
        degrees: Dict[str, int] = {}
        for relation in self._joins.relations():
            for edge in self._joins.edges_of(relation):
                degrees[edge.from_doc] = degrees.get(edge.from_doc, 0) + 1
                degrees[edge.to_doc] = degrees.get(edge.to_doc, 0) + 1
        ranked = sorted(degrees.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:top]
