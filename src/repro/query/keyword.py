"""Keyword search interface: works "out of the box" (Section 3.2.1).

The simplest of Impliance's two query interfaces: BM25-ranked keyword
retrieval over everything ever infused, regardless of format.  Results
can be *enriched*: hits on annotation documents are folded back onto
their subjects, so a query matching a discovered product mention
surfaces the transcript it was found in (the Figure 1 story).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.model.annotations import is_annotation_document, subject_of
from repro.model.document import Document


@dataclass
class KeywordHit:
    """One retrieval result: the document and how it was reached."""

    doc_id: str
    score: float
    document: Optional[Document] = None
    via_annotation: Optional[str] = None  # annotation doc id, when folded


class KeywordSearch:
    """Keyword retrieval over a repository (engine-protocol object)."""

    def __init__(self, repository) -> None:
        self.repository = repository

    def search(
        self,
        query: str,
        top_k: int = 10,
        fetch: bool = True,
        fold_annotations: bool = True,
        within: Optional[Set[str]] = None,
    ) -> List[KeywordHit]:
        """Ranked search.

        With *fold_annotations* (the default), a hit on an annotation
        document is replaced by a hit on its subject (keeping the best
        score per subject) — users asked for their data, not the system's
        bookkeeping; the annotation id is retained for provenance.
        """
        raw = self.repository.indexes.text.search(query, top_k=top_k * 3, candidates=within)
        best: Dict[str, KeywordHit] = {}
        for hit in raw:
            document = self.repository.lookup(hit.doc_id)
            target_id = hit.doc_id
            via = None
            if (
                fold_annotations
                and document is not None
                and is_annotation_document(document)
            ):
                target_id = subject_of(document)
                via = hit.doc_id
            existing = best.get(target_id)
            if existing is None or hit.score > existing.score:
                best[target_id] = KeywordHit(
                    doc_id=target_id, score=hit.score, via_annotation=via
                )
        ranked = sorted(best.values(), key=lambda h: (-h.score, h.doc_id))[:top_k]
        if fetch:
            for hit in ranked:
                hit.document = self.repository.lookup(hit.doc_id)
        return ranked

    def phrase(self, phrase: str) -> Set[str]:
        """Exact-phrase match (doc-id set)."""
        return self.repository.indexes.text.match_phrase(phrase)

    def all_terms(self, query: str) -> Set[str]:
        """Boolean-AND match (doc-id set)."""
        return self.repository.indexes.text.match_all(query)
