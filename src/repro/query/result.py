"""The one result shape every query interface returns.

Pre-unification, the appliance's four query entry points each returned a
different ad-hoc shape (hit lists, row lists + cost, sessions, optional
connection objects).  A :class:`QueryResult` now carries all of them:

- ``rows``    — relational form (always populated; hits/edges are
  projected into dicts so downstream tooling can treat any result
  uniformly),
- ``hits``    — ranked retrieval form (keyword/hybrid/faceted results),
- ``sim_ms``  — the simulated cost of producing the answer (``cost`` is
  an alias),
- ``trace``   — the telemetry span that produced it (None when
  telemetry is disabled),
- ``connection`` — the graph answer, when the query was a graph query,
- ``degraded`` / ``missing_segments`` — graceful-degradation flags: when
  replicas are unreachable the appliance still answers, but marks the
  result partial and says how many storage segments had no live copy at
  answer time (see docs/CHAOS.md),
- ``batches`` / ``operator_stats`` — the vectorized engine's columnar
  output and per-operator row/batch counters (see docs/EXECUTION.md).

For compatibility the object still *behaves* like the old shapes:
iterating, indexing, ``len()``, truthiness, and equality against plain
lists all operate on the primary payload (hits when present, rows
otherwise), so ``app.search(q)[0].doc_id`` and ``result.rows`` both keep
working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

Row = Dict[str, Any]


@dataclass(eq=False)
class QueryResult:
    """Rows, hits, cost, and trace of one query — any interface."""

    rows: List[Row] = field(default_factory=list)
    hits: List[Any] = field(default_factory=list)
    sim_ms: float = 0.0
    plan_text: str = ""
    adaptive_reports: List[Any] = field(default_factory=list)
    trace: Optional[Any] = None
    connection: Optional[Any] = None
    #: True when the answer is partial because replicas were unreachable.
    degraded: bool = False
    #: Storage segments with zero live replicas at answer time.
    missing_segments: int = 0
    #: Columnar result batches, when the vectorized engine produced the
    #: answer (``rows`` is their flattened adapter view); None otherwise.
    batches: Optional[List[Any]] = None
    #: Per-operator row/batch statistics from execution, keyed by
    #: operator name (scan, filter, hash_join, ...).
    operator_stats: Dict[str, Any] = field(default_factory=dict)
    #: True when the rows were served from the appliance result cache
    #: instead of being recomputed (see docs/CACHING.md); ``sim_ms`` is
    #: then the cache-lookup cost, not the execution cost.
    cached: bool = False

    def mark_degraded(self, missing_segments: int) -> "QueryResult":
        """Flag this result as partial (chained by the facade)."""
        if missing_segments > 0:
            self.degraded = True
            self.missing_segments = missing_segments
        return self

    # ------------------------------------------------------------------
    @property
    def cost(self) -> float:
        """Alias for ``sim_ms`` — the unified cost field."""
        return self.sim_ms

    def _payload(self) -> List[Any]:
        return self.hits if self.hits else self.rows

    def __iter__(self) -> Iterator[Any]:
        return iter(self._payload())

    def __len__(self) -> int:
        return len(self._payload())

    def __getitem__(self, index: Any) -> Any:
        return self._payload()[index]

    def __bool__(self) -> bool:
        return bool(self._payload()) or self.connection is not None

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, QueryResult):
            return (
                self.rows == other.rows
                and self.hits == other.hits
                and self.sim_ms == other.sim_ms
                and self.connection == other.connection
            )
        if isinstance(other, (list, tuple)):
            return self._payload() == list(other)
        return NotImplemented

    # ------------------------------------------------------------------
    # constructors for each interface family
    # ------------------------------------------------------------------
    @classmethod
    def from_hits(
        cls,
        hits: List[Any],
        sim_ms: float = 0.0,
        trace: Optional[Any] = None,
    ) -> "QueryResult":
        """Wrap ranked hits; rows become ``{doc_id, score}`` projections."""
        rows = [
            {
                "doc_id": getattr(h, "doc_id", None),
                "score": getattr(h, "score", None),
            }
            for h in hits
        ]
        return cls(rows=rows, hits=list(hits), sim_ms=sim_ms, trace=trace)

    @classmethod
    def from_rows(
        cls,
        rows: List[Row],
        sim_ms: float = 0.0,
        plan_text: str = "",
        trace: Optional[Any] = None,
    ) -> "QueryResult":
        return cls(rows=list(rows), sim_ms=sim_ms, plan_text=plan_text, trace=trace)

    @classmethod
    def from_connection(
        cls,
        connection: Optional[Any],
        sim_ms: float = 0.0,
        trace: Optional[Any] = None,
    ) -> "QueryResult":
        """Wrap a graph answer; rows become one dict per hop."""
        rows: List[Row] = []
        if connection is not None:
            rows = [
                {"from": a, "relation": rel, "to": b}
                for a, rel, b in connection.edges
            ]
        return cls(rows=rows, sim_ms=sim_ms, trace=trace, connection=connection)
