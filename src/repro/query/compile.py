"""Compiled operator pipelines (docs/ADAPTIVE.md).

Instead of re-walking the physical plan tree on every execution, the
engine lowers a plan *once* into fused per-batch closures and caches the
result keyed by :func:`plan_fingerprint` — compilation cost amortizes
across the cached-plan hot path.  Pipeline breakers (hash-join builds,
indexed-join outer materialization, full aggregation, sorts) bound the
fused stages and double as the re-optimizer's materialization
checkpoints (:class:`repro.query.adaptive.ReOptimizer`).

Fusion is not just dispatch removal — it changes the data movement:

* **filter→project** takes only the *projected* columns through the
  gather (``select_columns`` is zero-copy, so ``take`` never touches
  columns the query drops);
* **filter→aggregate** feeds surviving row indices straight into
  :class:`~repro.exec.operators.GroupAggregator`, skipping the
  intermediate ``take()`` copy entirely;
* predicate selectors are pre-bound once per pipeline (the compiled
  value predicates of :meth:`Conjunction.selector`, including the
  :class:`~repro.storage.encoding.EncodedColumn` dictionary-code fast
  path), not once per batch.

Everything observable is preserved: output batches are byte-identical to
the interpreted batch engine, per-operator statistics count the same
logical batches, and simulated charges accrue per batch in the same
per-row amounts (the property suite pins all three).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.exec import costs
from repro.exec.batch import ColumnBatch
from repro.exec.operators import (
    GroupAggregator,
    hash_join_batches,
    hash_join_swapped_batches,
    sort_batches,
)
from repro.query.planner import (
    PhysHashJoin,
    PhysicalPlan,
    PhysIndexedJoin,
    to_logical,
)
from repro.query.plans import (
    Aggregate,
    Comparison,
    Conjunction,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    ScanView,
    Sort,
)
from repro.storage.encoding import EncodedColumn


class PipelineContext:
    """Per-execution state threaded through compiled stages.

    The *engine* supplies scans and index probes, the *meter* takes the
    simulated charges and operator statistics, and *reoptimizer* (only on
    adaptive runs with statistics) arms the materialization checkpoints.
    """

    __slots__ = ("engine", "meter", "reoptimizer")

    def __init__(self, engine: Any, meter: Any, reoptimizer: Optional[Any] = None) -> None:
        self.engine = engine
        self.meter = meter
        self.reoptimizer = reoptimizer


#: A compiled stage: context → fully materialized output batches.
StageFn = Callable[[PipelineContext], List[ColumnBatch]]


class CompiledPipeline:
    """One physical plan lowered to fused stage closures."""

    __slots__ = ("fingerprint", "stages", "_run")

    def __init__(self, fingerprint: str, stages: Tuple[str, ...], run: StageFn) -> None:
        self.fingerprint = fingerprint
        #: Human-readable stage labels, root last (tests/EXPLAIN aid).
        self.stages = stages
        self._run = run

    def execute(self, ctx: PipelineContext) -> List[ColumnBatch]:
        return self._run(ctx)


def compile_plan(plan: PhysicalPlan) -> CompiledPipeline:
    """Lower *plan* into a :class:`CompiledPipeline`."""
    stages: List[str] = []
    run = _compile(plan, stages)
    return CompiledPipeline(plan_fingerprint(plan), tuple(stages), run)


# ----------------------------------------------------------------------
# fingerprinting
# ----------------------------------------------------------------------
def plan_fingerprint(plan: PhysicalPlan) -> str:
    """Deterministic structural identity of a physical plan.

    The compiled-pipeline cache key.  Purely a function of the plan (no
    epoch: recompiling after a data change would produce the same
    closures), but it *does* include the optimizer's estimate
    annotations — checkpoint closures bake estimates in, so cost-based
    plans that differ only in estimates must compile separately.  The
    simple planner never annotates, keeping the cached hot path's
    fingerprint stable.
    """
    if isinstance(plan, ScanView):
        return f"scan({plan.view}|{plan.alias or ''}{_est(plan)})"
    if isinstance(plan, Filter):
        return f"filter({plan.predicate}{_est(plan)})<-{plan_fingerprint(plan.child)}"
    if isinstance(plan, Project):
        return f"project({','.join(plan.columns)}{_est(plan)})<-{plan_fingerprint(plan.child)}"
    if isinstance(plan, Aggregate):
        aggs = ";".join(f"{a.name}:{a.func}:{a.column or '*'}" for a in plan.aggs)
        group = ",".join(plan.group_by)
        return f"agg([{group}][{aggs}]{_est(plan)})<-{plan_fingerprint(plan.child)}"
    if isinstance(plan, Sort):
        direction = "desc" if plan.descending else "asc"
        return f"sort({','.join(plan.keys)} {direction}{_est(plan)})<-{plan_fingerprint(plan.child)}"
    if isinstance(plan, Limit):
        return f"limit({plan.count}{_est(plan)})<-{plan_fingerprint(plan.child)}"
    if isinstance(plan, PhysHashJoin):
        return (
            f"hash_join({plan.probe_column}={plan.build_column}{_est(plan)})"
            f"<-[{plan_fingerprint(plan.probe)}|{plan_fingerprint(plan.build)}]"
        )
    if isinstance(plan, PhysIndexedJoin):
        inner_est = plan.estimated_inner_rows
        inner = "" if inner_est is None else f"~i{inner_est:g}"
        predicate = "" if plan.inner_predicate is None else f" where {plan.inner_predicate}"
        return (
            f"indexed_join({plan.outer_column}->{plan.inner_view}.{plan.inner_column}"
            f"{predicate}{_est(plan)}{inner})<-[{plan_fingerprint(plan.outer)}]"
        )
    raise TypeError(f"cannot fingerprint {plan!r}")


def _est(plan: Any) -> str:
    estimate = getattr(plan, "estimated_rows", None)
    return "" if estimate is None else f"~{estimate:g}"


# ----------------------------------------------------------------------
# selectors
# ----------------------------------------------------------------------
def compile_selector(
    predicate: Conjunction,
) -> Callable[[ColumnBatch, Optional[Sequence[int]]], List[int]]:
    """Pre-bound equivalent of :meth:`Conjunction.selector`.

    The per-term compiled value predicates are built once at pipeline
    compile time instead of once per batch, and the selector optionally
    narrows an existing candidate index set (chained fused filters).
    Semantics — including the dictionary-code fast path, which memoizes
    ``matching_codes`` per (dictionary, term) — are identical to the
    interpreted selector by construction.
    """
    compiled: List[Tuple[Comparison, Callable[[Any], bool]]] = [
        (term, term.value_predicate()) for term in predicate.terms
    ]

    def select(batch: ColumnBatch, candidates: Optional[Sequence[int]] = None) -> List[int]:
        indices: Sequence[int] = range(batch.length) if candidates is None else candidates
        for term, value_predicate in compiled:
            if not indices:
                break
            raw = batch.columns.get(term.column)
            if isinstance(raw, EncodedColumn):
                codes = raw.codes()
                matching = raw.dictionary.matching_codes(term, value_predicate)
                indices = [i for i in indices if codes[i] in matching]
                continue
            values = batch.column(term.column)
            indices = [i for i in indices if value_predicate(values[i])]
        return list(indices)

    return select


# ----------------------------------------------------------------------
# lowering
# ----------------------------------------------------------------------
def _compile(plan: PhysicalPlan, stages: List[str]) -> StageFn:
    if isinstance(plan, Aggregate):
        return _compile_aggregate(plan, stages)
    if isinstance(plan, (Filter, Project)):
        return _compile_chain(plan, stages)
    if isinstance(plan, ScanView):
        return _compile_scan(plan, stages)
    if isinstance(plan, Sort):
        return _compile_sort(plan, stages)
    if isinstance(plan, Limit):
        return _compile_limit(plan, stages)
    if isinstance(plan, PhysHashJoin):
        return _compile_hash_join(plan, stages)
    if isinstance(plan, PhysIndexedJoin):
        return _compile_indexed_join(plan, stages)
    if isinstance(plan, Join):
        raise TypeError("logical Join reached the compiler; run a planner first")
    raise TypeError(f"cannot compile {plan!r}")


def _peel_chain(plan: PhysicalPlan) -> Tuple[PhysicalPlan, List[PhysicalPlan]]:
    """Split a Filter/Project chain off its source.

    Returns ``(source, nodes)`` with *nodes* in application order
    (innermost first) — the maximal fusable pipeline segment above a
    breaker or scan.
    """
    nodes: List[PhysicalPlan] = []
    while isinstance(plan, (Filter, Project)):
        nodes.append(plan)
        plan = plan.child
    nodes.reverse()
    return plan, nodes


def _chain_label(nodes: Sequence[PhysicalPlan]) -> str:
    parts = []
    for node in nodes:
        parts.append("filter" if isinstance(node, Filter) else "project")
    return "+".join(parts)


def _compile_scan(plan: ScanView, stages: List[str]) -> StageFn:
    view = plan.view
    stages.append(f"scan({view})")

    def run(ctx: PipelineContext) -> List[ColumnBatch]:
        return ctx.engine._view_batches(view, ctx.meter)

    return run


def _compile_chain(plan: PhysicalPlan, stages: List[str]) -> StageFn:
    """Fused scan→filter→project segment.

    One pass per batch: filters narrow an index set without copying,
    projection prunes columns *before* the gather, and the final
    ``take`` happens at most once per batch.  Charges and statistics
    are accounted per original operator so the meter is identical to
    the interpreter's.
    """
    source, nodes = _peel_chain(plan)
    source_fn = _compile(source, stages)
    ops: List[Tuple[str, Any]] = []
    for node in nodes:
        if isinstance(node, Filter):
            ops.append(("filter", compile_selector(node.predicate)))
        else:
            ops.append(("project", list(node.columns)))
    stages.append(f"fused:{_chain_label(nodes)}")

    def run(ctx: PipelineContext) -> List[ColumnBatch]:
        meter = ctx.meter
        charge = meter.charge
        # Register the operator counters even for zero batches — the
        # interpreter creates them at operator setup, and the two paths
        # must expose identical ``operator_stats``.
        for kind, _ in ops:
            meter.stats(kind)
        out: List[ColumnBatch] = []
        for batch in source_fn(ctx):
            indices: Optional[List[int]] = None
            alive = True
            for kind, op in ops:
                length = batch.length if indices is None else len(indices)
                if kind == "filter":
                    charge(length * costs.FILTER_CPU_MS_PER_ROW)
                    stats = meter.stats("filter")
                    stats.batches_in += 1
                    stats.rows_in += length
                    indices = op(batch, indices)
                    if not indices:
                        alive = False
                        break
                    stats.batches_out += 1
                    stats.rows_out += len(indices)
                    if len(indices) == batch.length:
                        indices = None
                else:  # project
                    charge(length * costs.PROJECT_CPU_MS_PER_ROW)
                    stats = meter.stats("project")
                    stats.batches_in += 1
                    stats.rows_in += length
                    # Prune columns before any gather: take() then only
                    # ever copies the projected columns.
                    batch = batch.select_columns(op)
                    stats.batches_out += 1
                    stats.rows_out += length
            if not alive:
                continue
            if indices is not None:
                batch = batch.take(indices)
            out.append(batch)
        return out

    return run


def _compile_aggregate(plan: Aggregate, stages: List[str]) -> StageFn:
    source, nodes = _peel_chain(plan.child)
    fuse_filters = all(isinstance(node, Filter) for node in nodes)
    if not fuse_filters:
        # A Project below the Aggregate (planners don't emit this shape,
        # but stay general): run the chain un-fused, then aggregate.
        source_fn = _compile_chain(plan.child, stages)
        selectors: List[Any] = []
    else:
        source_fn = _compile(source, stages)
        selectors = [compile_selector(node.predicate) for node in nodes]
    label = f"{_chain_label(nodes)}+aggregate" if (nodes and fuse_filters) else "aggregate"
    stages.append(f"fused:{label}" if selectors else label)
    group_by = list(plan.group_by)
    aggs = list(plan.aggs)

    def run(ctx: PipelineContext) -> List[ColumnBatch]:
        meter = ctx.meter
        charge = meter.charge
        agg_stats = meter.stats("aggregate")
        if selectors:
            meter.stats("filter")
        aggregator = GroupAggregator(group_by, aggs)
        for batch in source_fn(ctx):
            indices: Optional[List[int]] = None
            alive = True
            for select in selectors:
                length = batch.length if indices is None else len(indices)
                charge(length * costs.FILTER_CPU_MS_PER_ROW)
                stats = meter.stats("filter")
                stats.batches_in += 1
                stats.rows_in += length
                indices = select(batch, indices)
                if not indices:
                    alive = False
                    break
                stats.batches_out += 1
                stats.rows_out += len(indices)
                if len(indices) == batch.length:
                    indices = None
            if not alive:
                continue
            length = batch.length if indices is None else len(indices)
            charge(length * costs.AGG_MS_PER_ROW)
            agg_stats.batches_in += 1
            agg_stats.rows_in += length
            # Surviving indices feed the aggregator directly — no take().
            aggregator.add_batch(batch, indices)
        out = aggregator.finish()
        agg_stats.batches_out += 1
        agg_stats.rows_out += out.length
        out = out.drop_column("__distinct")
        return [out] if out.length else []

    return run


def _compile_sort(plan: Sort, stages: List[str]) -> StageFn:
    child_fn = _compile(plan.child, stages)
    keys, descending = list(plan.keys), plan.descending
    stages.append(f"sort({','.join(keys)})")

    def run(ctx: PipelineContext) -> List[ColumnBatch]:
        child = child_fn(ctx)
        ctx.meter.charge(costs.sort_cost_ms(sum(b.length for b in child)))
        out = sort_batches(child, keys, descending, ctx.meter.stats("sort"))
        return [out] if out.length else []

    return run


def _compile_limit(plan: Limit, stages: List[str]) -> StageFn:
    child_fn = _compile(plan.child, stages)
    count = plan.count
    stages.append(f"limit({count})")

    def run(ctx: PipelineContext) -> List[ColumnBatch]:
        remaining = count
        limited: List[ColumnBatch] = []
        for batch in child_fn(ctx):
            if remaining <= 0:
                break
            head = batch.head(remaining)
            limited.append(head)
            remaining -= head.length
        return limited

    return run


def _compile_hash_join(plan: PhysHashJoin, stages: List[str]) -> StageFn:
    probe_fn = _compile(plan.probe, stages)
    build_fn = _compile(plan.build, stages)
    stage_label = f"hash_join({plan.probe_column}={plan.build_column})"
    stages.append(stage_label)
    probe_column, build_column = plan.probe_column, plan.build_column
    estimated_probe = plan.probe.estimated_rows
    estimated_build = plan.build.estimated_rows
    probe_logical: LogicalPlan = to_logical(plan.probe)

    def run(ctx: PipelineContext) -> List[ColumnBatch]:
        probe = probe_fn(ctx)
        probe_rows = sum(b.length for b in probe)
        # Materialization checkpoint: the probe side is fully known
        # before the build side runs — divergence here can still flip
        # the build side at zero sunk cost.
        swap = False
        if ctx.reoptimizer is not None:
            swap = ctx.reoptimizer.checkpoint_hash_join(
                stage=stage_label,
                observed_probe=probe_rows,
                estimated_probe=estimated_probe,
                estimated_build=estimated_build,
                probe_logical=probe_logical,
            )
        build = build_fn(ctx)
        build_rows = sum(b.length for b in build)
        meter = ctx.meter
        if swap:
            meter.charge(
                probe_rows * costs.HASH_BUILD_MS_PER_ROW
                + build_rows * costs.HASH_PROBE_MS_PER_ROW
            )
            return list(
                hash_join_swapped_batches(
                    probe, build, probe_column, build_column, meter.stats("hash_join")
                )
            )
        meter.charge(
            build_rows * costs.HASH_BUILD_MS_PER_ROW
            + probe_rows * costs.HASH_PROBE_MS_PER_ROW
        )
        return list(
            hash_join_batches(
                probe, build, probe_column, build_column, meter.stats("hash_join")
            )
        )

    return run


def _compile_indexed_join(plan: PhysIndexedJoin, stages: List[str]) -> StageFn:
    outer_fn = _compile(plan.outer, stages)
    stages.append(
        f"indexed_join({plan.outer_column}->{plan.inner_view}.{plan.inner_column})"
    )

    def run(ctx: PipelineContext) -> List[ColumnBatch]:
        from repro.exec.batch import batches_from_rows, rows_from_batches

        outer = rows_from_batches(outer_fn(ctx))
        joined = ctx.engine._indexed_join_stage(plan, outer, ctx)
        stats = ctx.meter.stats("indexed_join")
        stats.rows_in += len(outer)
        stats.rows_out += len(joined)
        out = list(batches_from_rows(joined, ctx.engine.batch_size))
        stats.batches_out += len(out)
        return out

    return run
