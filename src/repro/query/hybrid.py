"""Hybrid search: one query over content, structure, and values.

Section 3.2: "Impliance unifies the management of all data under one
umbrella, providing interfaces to search structured and unstructured
content and metadata alike."  A :class:`HybridQuery` conjoins

* keyword terms (full-text index),
* an exact phrase (positional index),
* structural constraints — paths or path suffixes that must exist,
* value constraints — path = value, or numeric path ranges,
* facet constraints,
* annotation constraints — the document must carry an annotation label,

and intersects the candidate sets index-side before any document is
fetched, then BM25-ranks the survivors when keyword terms are present.
This is the query shape the insurance use case needs: *text* mentions a
procedure AND *structure* has /claims/amount AND *value* amount > 2000.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Set, Tuple

from repro.index.structural import RangeQuery
from repro.model.annotations import subject_of
from repro.model.values import Path
from repro.query.keyword import KeywordHit


@dataclass
class HybridQuery:
    """A conjunctive query across all index families.

    Every populated constraint narrows the candidate set; an empty query
    is rejected (it would mean "everything").
    """

    text: Optional[str] = None
    phrase: Optional[str] = None
    has_path: Sequence[Path] = ()
    has_path_suffix: Sequence[Path] = ()
    value_equals: Sequence[Tuple[Path, Any]] = ()
    value_ranges: Sequence[RangeQuery] = ()
    facets: Sequence[Tuple[str, Any]] = ()
    annotated_with: Sequence[str] = ()  # annotation labels on the doc

    def __post_init__(self) -> None:
        object.__setattr__(self, "has_path", [tuple(p) for p in self.has_path])
        object.__setattr__(
            self, "has_path_suffix", [tuple(p) for p in self.has_path_suffix]
        )
        object.__setattr__(
            self, "value_equals", [(tuple(p), v) for p, v in self.value_equals]
        )
        if not any(
            (
                self.text,
                self.phrase,
                self.has_path,
                self.has_path_suffix,
                self.value_equals,
                self.value_ranges,
                self.facets,
                self.annotated_with,
            )
        ):
            raise ValueError("hybrid query needs at least one constraint")


class HybridSearch:
    """Executes hybrid queries against a repository's index families."""

    def __init__(self, repository) -> None:
        self.repository = repository

    # ------------------------------------------------------------------
    def candidates(self, query: HybridQuery) -> Set[str]:
        """Index-side conjunction; ``None`` never appears (empty set is
        the no-match result)."""
        indexes = self.repository.indexes
        result: Optional[Set[str]] = None

        def narrow(doc_ids: Set[str]) -> None:
            nonlocal result
            result = doc_ids if result is None else result & doc_ids

        if query.text:
            narrow(indexes.text.match_all(query.text))
        if query.phrase:
            narrow(indexes.text.match_phrase(query.phrase))
        for path in query.has_path:
            narrow(indexes.structure.docs_with_path(path))
        for suffix in query.has_path_suffix:
            narrow(indexes.structure.docs_with_suffix(suffix))
        for path, value in query.value_equals:
            narrow(indexes.values.docs_with_value(path, value))
        for range_query in query.value_ranges:
            narrow(indexes.values.docs_in_range(range_query))
        for facet, value in query.facets:
            narrow(indexes.facets.docs_with(facet, value))
        for label in query.annotated_with:
            # Annotation documents carry their label at /annotation/label;
            # the value index finds them, and refs point at the subjects.
            annotated: Set[str] = set()
            for ann_id in indexes.values.docs_with_value(("annotation", "label"), label):
                document = self.repository.lookup(ann_id)
                if document is not None:
                    annotated.add(subject_of(document))
            narrow(annotated)
        return result if result is not None else set()

    def search(self, query: HybridQuery, top_k: int = 10) -> List[KeywordHit]:
        """Rank candidates (BM25 when text terms exist, id order else)."""
        candidate_ids = self.candidates(query)
        if not candidate_ids:
            return []
        if query.text:
            ranked = self.repository.indexes.text.search(
                query.text, top_k=top_k, candidates=candidate_ids
            )
            hits = [KeywordHit(h.doc_id, h.score) for h in ranked]
        else:
            hits = [KeywordHit(d, 0.0) for d in sorted(candidate_ids)[:top_k]]
        for hit in hits:
            hit.document = self.repository.lookup(hit.doc_id)
        return hits

    def count(self, query: HybridQuery) -> int:
        return len(self.candidates(query))
