"""Statistics for the cost-based optimizer baseline.

The paper argues *against* maintaining these: a simple planner "obviates
the need for maintaining complex statistics".  The reproduction needs
them anyway — the PLAN experiment compares the simple planner against a
conventional cost-based optimizer whose statistics may be stale, which is
exactly how the predictability-vs-optimality trade-off shows up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.model.values import classify_value, coerce_numeric
from repro.query.plans import (
    Aggregate,
    CompareOp,
    Comparison,
    Conjunction,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    ScanView,
    Sort,
)

#: Fallback selectivity for predicates we cannot estimate.
DEFAULT_SELECTIVITY = 0.1
#: Fallback join selectivity when neither side has column stats.
DEFAULT_JOIN_SELECTIVITY = 0.05


@dataclass
class ColumnStatistics:
    """Distinct count and numeric range of one column."""

    n_distinct: int = 0
    minimum: Optional[float] = None
    maximum: Optional[float] = None

    def eq_selectivity(self) -> float:
        if self.n_distinct <= 0:
            return DEFAULT_SELECTIVITY
        return 1.0 / self.n_distinct

    def range_selectivity(self, op: CompareOp, value: Any) -> float:
        if (
            self.minimum is None
            or self.maximum is None
            or self.maximum <= self.minimum
        ):
            return DEFAULT_SELECTIVITY
        try:
            point = coerce_numeric(value)
        except (TypeError, ValueError):
            return DEFAULT_SELECTIVITY
        span = self.maximum - self.minimum
        fraction = (point - self.minimum) / span
        fraction = min(1.0, max(0.0, fraction))
        if op in (CompareOp.LT, CompareOp.LE):
            return max(fraction, 1e-4)
        if op in (CompareOp.GT, CompareOp.GE):
            return max(1.0 - fraction, 1e-4)
        return DEFAULT_SELECTIVITY


@dataclass
class ViewStatistics:
    """Row count and per-column stats of one view."""

    row_count: int = 0
    columns: Dict[str, ColumnStatistics] = field(default_factory=dict)


class Statistics:
    """Collected statistics over a set of views.

    :meth:`collect` scans the views through the engine's row source —
    the maintenance cost the simple planner avoids (and which the PLAN
    experiment charges to the optimizer's side of the ledger).  Once
    collected, statistics do NOT track later data changes; staleness is
    the experiment's independent variable.
    """

    def __init__(self) -> None:
        self._views: Dict[str, ViewStatistics] = {}
        self.collect_row_count = 0
        # Observed-cardinality overlay (plan node -> actual rows), fed by
        # the re-optimizer at materialization checkpoints.  Checked before
        # any model-based estimate, so a re-plan of the remaining subtree
        # sees runtime truth for everything already executed.
        self._observed: Dict[LogicalPlan, float] = {}

    def collect(self, view_rows: Dict[str, Iterable[dict]]) -> None:
        """(Re-)collect from {view name: row iterable}."""
        for view, rows in view_rows.items():
            distinct: Dict[str, set] = {}
            minmax: Dict[str, Tuple[float, float]] = {}
            count = 0
            for row in rows:
                count += 1
                self.collect_row_count += 1
                for column, value in row.items():
                    if value is None:
                        continue
                    distinct.setdefault(column, set()).add(
                        value if not isinstance(value, dict) else str(value)
                    )
                    if classify_value(value).is_numeric:
                        try:
                            number = coerce_numeric(value)
                        except (TypeError, ValueError):
                            continue
                        low, high = minmax.get(column, (number, number))
                        minmax[column] = (min(low, number), max(high, number))
            stats = ViewStatistics(row_count=count)
            for column, values in distinct.items():
                col_stats = ColumnStatistics(n_distinct=len(values))
                if column in minmax:
                    col_stats.minimum, col_stats.maximum = minmax[column]
                stats.columns[column] = col_stats
            self._views[view] = stats

    # ------------------------------------------------------------------
    # runtime feedback (docs/ADAPTIVE.md)
    # ------------------------------------------------------------------
    def observe(self, plan: LogicalPlan, rows: float) -> None:
        """Record the *actual* output cardinality of an executed subtree.

        Keys are the (structurally hashable) plan nodes themselves;
        ``estimated_rows`` annotations are ``compare=False`` so annotated
        and clean copies of the same subtree hit the same entry.
        """
        try:
            self._observed[plan] = float(rows)
        except TypeError:  # unhashable literal inside a predicate
            pass

    def overlay(self) -> "Statistics":
        """A child Statistics sharing the collected view stats but with an
        independent observation set — runtime feedback must not mutate the
        caller's (possibly reused) statistics object.
        """
        child = Statistics()
        child._views = self._views
        child.collect_row_count = self.collect_row_count
        child._observed = dict(self._observed)
        return child

    # ------------------------------------------------------------------
    def view(self, name: str) -> Optional[ViewStatistics]:
        return self._views.get(name)

    def has_view(self, name: str) -> bool:
        return name in self._views

    def column(self, view: str, column: str) -> Optional[ColumnStatistics]:
        stats = self._views.get(view)
        return stats.columns.get(column) if stats else None

    # ------------------------------------------------------------------
    # cardinality estimation
    # ------------------------------------------------------------------
    def selectivity(self, view: Optional[str], predicate: Conjunction) -> float:
        result = 1.0
        for term in predicate.terms:
            result *= self._term_selectivity(view, term)
        return result

    def _term_selectivity(self, view: Optional[str], term: Comparison) -> float:
        col_stats = self.column(view, term.column) if view else None
        if col_stats is None:
            # search all views for the column (post-join predicates)
            for stats in self._views.values():
                if term.column in stats.columns:
                    col_stats = stats.columns[term.column]
                    break
        if col_stats is None:
            return DEFAULT_SELECTIVITY
        if term.op is CompareOp.EQ:
            return col_stats.eq_selectivity()
        if term.op is CompareOp.NE:
            return max(0.0, 1.0 - col_stats.eq_selectivity())
        if term.op is CompareOp.CONTAINS:
            return DEFAULT_SELECTIVITY
        return col_stats.range_selectivity(term.op, term.value)

    def estimate(self, plan: LogicalPlan) -> float:
        """Estimated output cardinality of *plan*.

        Accepts physical join nodes (:class:`~repro.query.planner.PhysHashJoin`,
        :class:`~repro.query.planner.PhysIndexedJoin`) as well as the logical
        algebra — the re-optimizer estimates remaining physical subtrees
        directly.  An observed cardinality recorded via :meth:`observe`
        always wins over the model.
        """
        if self._observed:
            try:
                observed = self._observed.get(plan)
            except TypeError:
                observed = None
            if observed is not None:
                return observed
        if isinstance(plan, ScanView):
            stats = self._views.get(plan.view)
            return float(stats.row_count) if stats else 1000.0
        if isinstance(plan, Filter):
            view = self._single_view(plan.child)
            return self.estimate(plan.child) * self.selectivity(view, plan.predicate)
        if isinstance(plan, Join):
            left = self.estimate(plan.left)
            right = self.estimate(plan.right)
            right_view = self._single_view(plan.right)
            col = self.column(right_view, plan.right_column) if right_view else None
            if col is not None and col.n_distinct > 0:
                return left * right / col.n_distinct
            return left * right * DEFAULT_JOIN_SELECTIVITY
        if isinstance(plan, Aggregate):
            child = self.estimate(plan.child)
            if not plan.group_by:
                return 1.0
            distinct = 1.0
            view_names = self._all_views(plan.child)
            for column in plan.group_by:
                best = None
                for view in view_names:
                    col = self.column(view, column)
                    if col is not None:
                        best = col.n_distinct if best is None else max(best, col.n_distinct)
                distinct *= best if best else 10.0
            return min(child, distinct)
        if isinstance(plan, Limit):
            return min(self.estimate(plan.child), float(plan.count))
        if isinstance(plan, (Project, Sort)):
            return self.estimate(plan.child)
        # Physical join operators.  Imported lazily: planner.py imports
        # this module at load time.
        from repro.query.planner import PhysHashJoin, PhysIndexedJoin

        if isinstance(plan, PhysHashJoin):
            probe = self.estimate(plan.probe)
            build = self.estimate(plan.build)
            build_view = self._single_view(plan.build)
            col = self.column(build_view, plan.build_column) if build_view else None
            if col is not None and col.n_distinct > 0:
                return probe * build / col.n_distinct
            return probe * build * DEFAULT_JOIN_SELECTIVITY
        if isinstance(plan, PhysIndexedJoin):
            outer = self.estimate(plan.outer)
            inner_scan: LogicalPlan = ScanView(plan.inner_view)
            if plan.inner_predicate is not None and not plan.inner_predicate.is_empty:
                inner_scan = Filter(inner_scan, plan.inner_predicate)
            inner = self.estimate(inner_scan)
            col = self.column(plan.inner_view, plan.inner_column)
            if col is not None and col.n_distinct > 0:
                return outer * inner / col.n_distinct
            return outer * inner * DEFAULT_JOIN_SELECTIVITY
        raise TypeError(f"cannot estimate {plan!r}")

    @staticmethod
    def _single_view(plan: LogicalPlan) -> Optional[str]:
        if isinstance(plan, ScanView):
            return plan.view
        if isinstance(plan, (Filter, Project, Sort, Limit)):
            return Statistics._single_view(plan.child)
        return None

    @staticmethod
    def _all_views(plan: LogicalPlan) -> List[str]:
        from repro.query.plans import base_views

        return base_views(plan)
