"""Relational DBMS / BI-appliance baseline (Sections 1, 3.2, 5).

Excellent at structured queries, joins, and aggregation — once an
administrator has designed and declared every table schema up front.
Non-relational content is "relegated to unsearchable binary large
objects (BLOBs)", and every new table, index, or statistics refresh is
another administrator action on the ledger.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Sequence

from repro.baselines.base import (
    AdminActionKind,
    CapabilityNotSupported,
    InformationSystem,
    Item,
)


class SchemaViolation(Exception):
    """A row does not match its table's declared schema."""


class RelationalDBMS(InformationSystem):
    """Tables with declared schemas; BLOBs for everything else."""

    name = "relational-dbms"

    def __init__(self) -> None:
        super().__init__()
        self._schemas: Dict[str, Sequence[str]] = {}
        self._tables: Dict[str, List[Dict[str, Any]]] = {}
        self._blobs: Dict[str, str] = {}

    def deploy(self) -> None:
        self.ledger.record(AdminActionKind.DEPLOY, "install database server")
        self.ledger.record(AdminActionKind.DEPLOY, "create database and tablespaces")
        self.ledger.record(AdminActionKind.TUNING, "size buffer pools and logs")

    # ------------------------------------------------------------------
    def create_table(self, table: str, columns: Sequence[str]) -> None:
        """DDL — a schema-design action every time."""
        if table in self._schemas:
            raise ValueError(f"table {table!r} already exists")
        self._schemas[table] = tuple(columns)
        self._tables[table] = []
        self.ledger.record(
            AdminActionKind.SCHEMA_DESIGN, f"design and create table {table}"
        )

    def store(self, item: Item) -> None:
        if item.fmt == "relational" and item.table:
            row = dict(item.content)
            schema = self._schemas.get(item.table)
            if schema is None:
                # The administrator has to notice and define the table.
                self.create_table(item.table, sorted(row))
                schema = self._schemas[item.table]
            unexpected = set(row) - set(schema)
            if unexpected:
                raise SchemaViolation(
                    f"row has columns {sorted(unexpected)} not in {item.table} schema"
                )
            row["__id"] = item.item_id
            self._tables[item.table].append(row)
        else:
            # Anything non-relational lands in an unsearchable BLOB.
            payload = (
                item.content
                if isinstance(item.content, str)
                else json.dumps(item.content, sort_keys=True, default=str)
            )
            self._blobs[item.item_id] = payload

    def retrieve(self, item_id: str) -> Any:
        for rows in self._tables.values():
            for row in rows:
                if row.get("__id") == item_id:
                    return {k: v for k, v in row.items() if k != "__id"}
        if item_id in self._blobs:
            return self._blobs[item_id]
        raise LookupError(f"no item {item_id!r}")

    # ------------------------------------------------------------------
    def structured_query(self, table: str, column: str, value: Any) -> List[Mapping[str, Any]]:
        rows = self._tables.get(table)
        if rows is None:
            raise CapabilityNotSupported(f"{self.name}: no table {table!r} declared")
        return [
            {k: v for k, v in row.items() if k != "__id"}
            for row in rows
            if row.get(column) == value
        ]

    def join(
        self, left_table: str, right_table: str, left_col: str, right_col: str
    ) -> List[Mapping[str, Any]]:
        left = self._tables.get(left_table)
        right = self._tables.get(right_table)
        if left is None or right is None:
            raise CapabilityNotSupported(f"{self.name}: undeclared table in join")
        index: Dict[Any, List[Dict[str, Any]]] = {}
        for row in right:
            index.setdefault(row.get(right_col), []).append(row)
        joined = []
        for row in left:
            for match in index.get(row.get(left_col), ()):
                merged = {k: v for k, v in row.items() if k != "__id"}
                merged.update({k: v for k, v in match.items() if k != "__id"})
                joined.append(merged)
        return joined

    def aggregate(self, table: str, group_by: str, measure: str) -> List[Mapping[str, Any]]:
        rows = self._tables.get(table)
        if rows is None:
            raise CapabilityNotSupported(f"{self.name}: no table {table!r} declared")
        sums: Dict[Any, float] = {}
        for row in rows:
            value = row.get(measure)
            if value is None:
                continue
            sums[row.get(group_by)] = sums.get(row.get(group_by), 0.0) + float(value)
        return [
            {group_by: key, f"sum_{measure}": total}
            for key, total in sorted(sums.items(), key=lambda kv: repr(kv[0]))
        ]

    # ------------------------------------------------------------------
    def keyword_search(self, query: str) -> List[str]:
        raise CapabilityNotSupported(
            f"{self.name}: keyword search requires a separate text-index product"
        )

    def content_search(self, query: str) -> List[str]:
        raise CapabilityNotSupported(f"{self.name}: BLOB content is unsearchable")

    def max_practical_nodes(self) -> int:
        # "Today even the largest deployments rarely exceed a few
        # hundred nodes" (Section 1).
        return 256

    @property
    def table_count(self) -> int:
        return len(self._schemas)
