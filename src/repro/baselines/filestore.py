"""File-server baseline: the "repository of last resort" (Section 3.2).

"The ultra-simple 'bag of bytes' model of file systems provides a
repository of last resort that can manage unstructured as well as
structured data, but without the powerful querying capability (e.g.,
joins and aggregations) we take for granted in databases."

Stores anything, greps everything, queries nothing.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List

from repro.baselines.base import AdminActionKind, InformationSystem, Item


class FileStore(InformationSystem):
    """Bag-of-bytes storage with exhaustive grep search."""

    name = "file-server"

    def __init__(self) -> None:
        super().__init__()
        self._files: Dict[str, str] = {}
        self.bytes_scanned = 0

    def deploy(self) -> None:
        self.ledger.record(AdminActionKind.DEPLOY, "mount file share")

    # ------------------------------------------------------------------
    def store(self, item: Item) -> None:
        if isinstance(item.content, str):
            payload = item.content
        else:
            payload = json.dumps(item.content, sort_keys=True, default=str)
        self._files[item.item_id] = payload

    def retrieve(self, item_id: str) -> str:
        try:
            return self._files[item_id]
        except KeyError:
            raise LookupError(f"no file {item_id!r}") from None

    # ------------------------------------------------------------------
    def keyword_search(self, query: str) -> List[str]:
        """grep -l: scan every byte of every file, every time."""
        terms = [t.lower() for t in re.findall(r"\w+", query)]
        if not terms:
            return []
        matches = []
        for item_id in sorted(self._files):
            payload = self._files[item_id].lower()
            self.bytes_scanned += len(payload)
            if all(t in payload for t in terms):
                matches.append(item_id)
        return matches

    def content_search(self, query: str) -> List[str]:
        # grep reads content, so content search "works" — exhaustively.
        return self.keyword_search(query)

    def max_practical_nodes(self) -> int:
        # Filer appliances scale capacity well (paper cites 500 TB
        # filers) but every query is still a full grep.
        return 64

    @property
    def file_count(self) -> int:
        return len(self._files)
