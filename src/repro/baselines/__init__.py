"""Figure-4 comparator systems and the measured comparison battery.

Simplified but functional implementations of the archetypes the paper
positions Impliance against — a file server, a content manager, a
relational DBMS, an enterprise search engine — plus an adapter putting
Impliance itself behind the same task protocol, and the battery/scorer
that regenerates Figure 4's axes from measurements.
"""

from repro.baselines.base import (
    AdminAction,
    AdminActionKind,
    AdminLedger,
    CapabilityNotSupported,
    InformationSystem,
    Item,
)
from repro.baselines.filestore import FileStore
from repro.baselines.contentmgr import ContentManager
from repro.baselines.rdbms import RelationalDBMS, SchemaViolation
from repro.baselines.searchengine import SearchEngine
from repro.baselines.impliance_adapter import ImplianceSystem
from repro.baselines.battery import (
    BatteryReport,
    TaskOutcome,
    comparison_table,
    run_battery,
    standard_corpus,
)

__all__ = [
    "AdminAction",
    "AdminActionKind",
    "AdminLedger",
    "CapabilityNotSupported",
    "InformationSystem",
    "Item",
    "FileStore",
    "ContentManager",
    "RelationalDBMS",
    "SchemaViolation",
    "SearchEngine",
    "ImplianceSystem",
    "BatteryReport",
    "TaskOutcome",
    "comparison_table",
    "run_battery",
    "standard_corpus",
]
