"""The common task protocol Figure 4's comparison is measured against.

Figure 4 positions Impliance against file servers, content managers,
relational DBMSs/BI appliances, and enterprise search along scalability,
TCO, and "modeling and querying power".  To make that figure measurable,
every system implements (or refuses) the same task battery:

  deploy, store (any format), retrieve, keyword search, content search,
  structured query, join, aggregate, annotate/discover, connection query.

A refusal raises :class:`CapabilityNotSupported`; every manual setup
step a system demands is logged to its :class:`AdminLedger`.  The FIG4
benchmark runs the battery and scores each dimension from what actually
happened — measured, not asserted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, List, Mapping, Optional


class CapabilityNotSupported(Exception):
    """The system archetype cannot perform the requested task."""


class AdminActionKind(enum.Enum):
    """Categories of human intervention, for TCO accounting."""

    DEPLOY = "deploy"                # install, provision, initial config
    SCHEMA_DESIGN = "schema_design"  # model data before storing it
    TUNING = "tuning"                # indexes, knobs, statistics
    INTEGRATION = "integration"      # glue between separate products
    RECOVERY = "recovery"            # manual failure handling


@dataclass
class AdminAction:
    kind: AdminActionKind
    description: str


class AdminLedger:
    """Every human action a system required, in order."""

    def __init__(self) -> None:
        self._actions: List[AdminAction] = []

    def record(self, kind: AdminActionKind, description: str) -> None:
        self._actions.append(AdminAction(kind, description))

    def count(self, kind: Optional[AdminActionKind] = None) -> int:
        if kind is None:
            return len(self._actions)
        return sum(1 for a in self._actions if a.kind is kind)

    def actions(self) -> List[AdminAction]:
        return list(self._actions)


@dataclass(frozen=True)
class Item:
    """One unit of the battery's mixed-format corpus."""

    item_id: str
    fmt: str                      # "relational" | "text" | "email" | "xml"
    content: Any                  # row mapping, or raw string
    table: Optional[str] = None   # for relational rows


class InformationSystem:
    """Base class for the Figure 4 comparators.

    Subclasses override the capabilities their archetype has and leave
    the rest raising :class:`CapabilityNotSupported`.
    """

    #: Display name used in the comparison table.
    name: str = "abstract"

    def __init__(self) -> None:
        self.ledger = AdminLedger()

    # -- lifecycle -----------------------------------------------------
    def deploy(self) -> None:
        """Make the system ready to accept data."""
        raise NotImplementedError

    # -- storage -------------------------------------------------------
    def store(self, item: Item) -> None:
        raise NotImplementedError

    def retrieve(self, item_id: str) -> Any:
        raise NotImplementedError

    # -- retrieval -----------------------------------------------------
    def keyword_search(self, query: str) -> List[str]:
        """Item ids whose content matches the keywords."""
        raise CapabilityNotSupported(f"{self.name}: keyword search")

    def content_search(self, query: str) -> List[str]:
        """Search *inside* non-structured content (not just metadata)."""
        raise CapabilityNotSupported(f"{self.name}: content search")

    # -- structured query ----------------------------------------------
    def structured_query(
        self, table: str, column: str, value: Any
    ) -> List[Mapping[str, Any]]:
        raise CapabilityNotSupported(f"{self.name}: structured query")

    def join(
        self, left_table: str, right_table: str, left_col: str, right_col: str
    ) -> List[Mapping[str, Any]]:
        raise CapabilityNotSupported(f"{self.name}: join")

    def aggregate(
        self, table: str, group_by: str, measure: str
    ) -> List[Mapping[str, Any]]:
        """Group-by sum over a numeric column."""
        raise CapabilityNotSupported(f"{self.name}: aggregate")

    # -- discovery -----------------------------------------------------
    def annotate(self) -> int:
        """Run information discovery; returns annotations created."""
        raise CapabilityNotSupported(f"{self.name}: annotation/discovery")

    def connection_query(self, a: str, b: str) -> Optional[List[str]]:
        """How are two items connected?"""
        raise CapabilityNotSupported(f"{self.name}: connection query")

    # -- scale ---------------------------------------------------------
    def max_practical_nodes(self) -> int:
        """Archetypal scale-out ceiling (nodes) for the scalability axis.

        The paper's text pegs these: databases "rarely exceed a few
        hundred nodes"; file servers scale capacity but not query;
        Impliance targets thousands.
        """
        return 1
