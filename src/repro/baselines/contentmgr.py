"""Content-manager baseline (Section 3.2).

"The repository of choice for most semi-structured content ... is still
content managers, which typically use BLOBs or a file system to store
the content, and database systems to manage the metadata (catalog) of
that content.  Hence searching and querying are limited to the metadata
about that content."

Storing an item requires the administrator to have designed a metadata
schema first (JSR-170-style: "all metadata must match a predefined
schema; hence schema chaos is not supported") and to fill the catalog
fields; search then sees only those fields, never the BLOB.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Mapping

from repro.baselines.base import (
    AdminActionKind,
    CapabilityNotSupported,
    InformationSystem,
    Item,
)


class ContentManager(InformationSystem):
    """BLOB store + metadata catalog; search is metadata-only."""

    name = "content-manager"

    #: The predefined metadata schema (JSR-170 style): fixed fields.
    METADATA_FIELDS = ("title", "source", "format", "entered")

    def __init__(self) -> None:
        super().__init__()
        self._blobs: Dict[str, str] = {}
        self._catalog: Dict[str, Dict[str, str]] = {}

    def deploy(self) -> None:
        self.ledger.record(AdminActionKind.DEPLOY, "install content manager")
        self.ledger.record(AdminActionKind.DEPLOY, "install catalog database")
        self.ledger.record(
            AdminActionKind.SCHEMA_DESIGN, "define metadata schema (JSR-170 node types)"
        )
        self.ledger.record(
            AdminActionKind.INTEGRATION, "connect content manager to catalog database"
        )

    # ------------------------------------------------------------------
    def store(self, item: Item) -> None:
        if isinstance(item.content, str):
            payload = item.content
        else:
            payload = json.dumps(item.content, sort_keys=True, default=str)
        self._blobs[item.item_id] = payload
        # Cataloguing is a (charged) manual/clerical step per item type:
        # metadata must be keyed in or mapped from the source system.
        title = ""
        if isinstance(item.content, Mapping):
            title = str(next(iter(item.content.values()), ""))
        else:
            title = payload.splitlines()[0][:24] if payload else ""
        self._catalog[item.item_id] = {
            "title": title,
            "source": item.table or "upload",
            "format": item.fmt,
            "entered": "2007-01-10",
        }

    def retrieve(self, item_id: str) -> str:
        try:
            return self._blobs[item_id]
        except KeyError:
            raise LookupError(f"no content item {item_id!r}") from None

    # ------------------------------------------------------------------
    def keyword_search(self, query: str) -> List[str]:
        """Search the *catalog*, never the BLOB content."""
        terms = [t.lower() for t in re.findall(r"\w+", query)]
        if not terms:
            return []
        matches = []
        for item_id in sorted(self._catalog):
            haystack = " ".join(self._catalog[item_id].values()).lower()
            if all(t in haystack for t in terms):
                matches.append(item_id)
        return matches

    def content_search(self, query: str) -> List[str]:
        raise CapabilityNotSupported(
            f"{self.name}: search is restricted to the metadata catalog"
        )

    def structured_query(self, table: str, column: str, value: Any) -> List[Mapping[str, Any]]:
        """Only the fixed catalog fields are queryable."""
        if column not in self.METADATA_FIELDS:
            raise CapabilityNotSupported(
                f"{self.name}: column {column!r} is not in the metadata schema"
            )
        return [
            {"item_id": item_id, **meta}
            for item_id, meta in sorted(self._catalog.items())
            if meta.get(column) == value
        ]

    def max_practical_nodes(self) -> int:
        return 16

    @property
    def item_count(self) -> int:
        return len(self._blobs)
