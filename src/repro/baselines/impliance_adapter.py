"""Impliance behind the Figure-4 task protocol.

The adapter maps the battery's task vocabulary onto the appliance's
public API.  Deployment is one action — plug the appliance in (Section
3.1: "operational out of the box") — plus one optional configuration
action when a domain lexicon is supplied.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional, Sequence

from repro.baselines.base import AdminActionKind, InformationSystem, Item
from repro.core.appliance import Impliance
from repro.core.config import ApplianceConfig
from repro.discovery.relationships import RelationshipRule


class ImplianceSystem(InformationSystem):
    """The appliance, speaking the comparison battery's protocol."""

    name = "impliance"

    def __init__(self, products: Sequence[str] = ()) -> None:
        super().__init__()
        self._products = tuple(products)
        self.app: Optional[Impliance] = None

    def deploy(self) -> None:
        self.ledger.record(AdminActionKind.DEPLOY, "rack appliance and power on")
        config = ApplianceConfig(product_lexicon=self._products)
        self.app = Impliance(config)
        if self._products:
            self.ledger.record(
                AdminActionKind.DEPLOY, "load product lexicon into discovery"
            )
            self.app.add_relationship_rule(
                RelationshipRule(
                    "mentions", "product_mention", "product", ("products", "name")
                )
            )

    def _require_app(self) -> Impliance:
        if self.app is None:
            raise RuntimeError("deploy() first")
        return self.app

    # ------------------------------------------------------------------
    def store(self, item: Item) -> None:
        app = self._require_app()
        if item.fmt == "relational" and item.table:
            app.ingest(dict(item.content), "relational", table=item.table,
                       doc_id=item.item_id)
        elif item.fmt in ("email", "xml"):
            app.ingest(item.content, item.fmt, doc_id=item.item_id)
        else:
            app.ingest(str(item.content), "text", doc_id=item.item_id)

    def retrieve(self, item_id: str) -> Any:
        document = self._require_app().lookup(item_id)
        if document is None:
            raise LookupError(f"no document {item_id!r}")
        return document.content

    # ------------------------------------------------------------------
    def keyword_search(self, query: str) -> List[str]:
        return [h.doc_id for h in self._require_app().search(query, top_k=50)]

    def content_search(self, query: str) -> List[str]:
        return self.keyword_search(query)

    def structured_query(self, table: str, column: str, value: Any) -> List[Mapping[str, Any]]:
        rendered = f"'{value}'" if isinstance(value, str) else repr(value)
        result = self._require_app().sql(
            f"SELECT * FROM {table} WHERE {column} = {rendered}"
        )
        return result.rows

    def join(
        self, left_table: str, right_table: str, left_col: str, right_col: str
    ) -> List[Mapping[str, Any]]:
        result = self._require_app().sql(
            f"SELECT * FROM {left_table} JOIN {right_table} "
            f"ON {left_table}.{left_col} = {right_table}.{right_col}"
        )
        return result.rows

    def aggregate(self, table: str, group_by: str, measure: str) -> List[Mapping[str, Any]]:
        result = self._require_app().sql(
            f"SELECT {group_by}, sum({measure}) AS sum_{measure} "
            f"FROM {table} GROUP BY {group_by} ORDER BY {group_by}"
        )
        return result.rows

    # ------------------------------------------------------------------
    def annotate(self) -> int:
        app = self._require_app()
        before = app.discovery.stats.annotations_created
        app.discover()
        return app.discovery.stats.annotations_created - before

    def connection_query(self, a: str, b: str) -> Optional[List[str]]:
        result = self._require_app().graph().how_connected(a, b, max_hops=5)
        return result.path if result else None

    def max_practical_nodes(self) -> int:
        # Design target: thousands of nodes (Section 3.4).
        return 2048
