"""Enterprise-search baseline (Section 5).

Oracle SES / OmniFind-style: crawl everything, index the text, answer
keyword queries well — but "the interfaces that they support are not as
advanced as Impliance": no joins, no aggregation, no structured
predicates, no discovered relationships.
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.base import AdminActionKind, InformationSystem, Item
from repro.index.text import InvertedIndex


class SearchEngine(InformationSystem):
    """Crawler + inverted index; keyword retrieval only."""

    name = "enterprise-search"

    def __init__(self) -> None:
        super().__init__()
        self._documents: Dict[str, str] = {}
        self._index = InvertedIndex()

    def deploy(self) -> None:
        self.ledger.record(AdminActionKind.DEPLOY, "install search appliance")
        self.ledger.record(
            AdminActionKind.INTEGRATION, "configure crawlers for each source repository"
        )

    # ------------------------------------------------------------------
    def store(self, item: Item) -> None:
        """The crawl: flatten whatever arrives into indexed text."""
        if isinstance(item.content, str):
            payload = item.content
        else:
            payload = " ".join(
                f"{k} {v}" for k, v in sorted(item.content.items(), key=lambda kv: kv[0])
            )
        self._documents[item.item_id] = payload
        self._index.add(item.item_id, payload)

    def retrieve(self, item_id: str) -> str:
        try:
            return self._documents[item_id]
        except KeyError:
            raise LookupError(f"no crawled document {item_id!r}") from None

    # ------------------------------------------------------------------
    def keyword_search(self, query: str) -> List[str]:
        return [hit.doc_id for hit in self._index.search(query, top_k=50)]

    def content_search(self, query: str) -> List[str]:
        # Crawled content is indexed, so content search works.
        return self.keyword_search(query)

    def max_practical_nodes(self) -> int:
        return 128

    @property
    def document_count(self) -> int:
        return len(self._documents)
