"""The Figure-4 task battery and its scorer.

Runs an identical mixed-format workload and task list against every
system, recording which tasks each archetype can perform, whether the
answers are right, and how many administrator actions the run consumed.
The scorer then places each system on Figure 4's three axes —
*measured*, not asserted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, List, Mapping, Optional, Sequence

from repro.baselines.base import (
    CapabilityNotSupported,
    InformationSystem,
    Item,
)


def standard_corpus() -> List[Item]:
    """The battery's mixed-format corpus (deterministic)."""
    items: List[Item] = [
        Item("cust-1", "relational", {"cid": 1, "name": "Acme Corp", "segment": "enterprise"}, "customers"),
        Item("cust-2", "relational", {"cid": 2, "name": "Beta LLC", "segment": "smb"}, "customers"),
        Item("cust-3", "relational", {"cid": 3, "name": "Gamma Inc", "segment": "smb"}, "customers"),
        Item("ord-1", "relational", {"oid": 1, "cid": 1, "amount": 1200.0, "region": "east"}, "orders"),
        Item("ord-2", "relational", {"oid": 2, "cid": 2, "amount": 300.0, "region": "west"}, "orders"),
        Item("ord-3", "relational", {"oid": 3, "cid": 1, "amount": 450.0, "region": "east"}, "orders"),
        Item("ord-4", "relational", {"oid": 4, "cid": 3, "amount": 75.0, "region": "west"}, "orders"),
        Item("prod-1", "relational", {"pid": 1, "name": "WidgetPro"}, "products"),
        Item("prod-2", "relational", {"pid": 2, "name": "GadgetMax"}, "products"),
        Item(
            "call-1",
            "text",
            "Transcript: Ms. Alice Johnson called about the WidgetPro. "
            "She is pleased, the WidgetPro is excellent and reliable.",
        ),
        Item(
            "call-2",
            "text",
            "Transcript: Alice Johnson called again, furious that her "
            "GadgetMax arrived broken. Terrible experience, wants refund.",
        ),
        Item(
            "mail-1",
            "email",
            "From: bob@acme.example\nTo: support@vendor.example\n"
            "Subject: WidgetPro invoice\n\nPlease resend the invoice for "
            "the WidgetPro shipment, total $1,200.00. Regards, Bob Smith",
        ),
    ]
    return items


@dataclass
class TaskOutcome:
    task: str
    supported: bool
    correct: Optional[bool] = None  # None when unsupported
    detail: str = ""


@dataclass
class BatteryReport:
    """Everything the battery observed about one system."""

    system: str
    outcomes: List[TaskOutcome] = field(default_factory=list)
    admin_actions: int = 0
    max_nodes: int = 1

    def outcome(self, task: str) -> TaskOutcome:
        for outcome in self.outcomes:
            if outcome.task == task:
                return outcome
        raise KeyError(f"no task {task!r} in report")

    # -- Figure 4 axes --------------------------------------------------
    @property
    def power_score(self) -> float:
        """Modeling-and-querying power: fraction of tasks done correctly."""
        if not self.outcomes:
            return 0.0
        passed = sum(1 for o in self.outcomes if o.supported and o.correct)
        return passed / len(self.outcomes)

    @property
    def tco_score(self) -> float:
        """Higher is cheaper to own: 1 / (1 + admin actions)."""
        return 1.0 / (1.0 + self.admin_actions)

    @property
    def scalability_score(self) -> float:
        """log10 of the practical node ceiling, normalized to [0, 1]
        against a 10^4-node yardstick."""
        return min(1.0, math.log10(max(1, self.max_nodes)) / 4.0)


def run_battery(system: InformationSystem, corpus: Optional[Sequence[Item]] = None) -> BatteryReport:
    """Deploy *system*, load the corpus, run every task, score it."""
    items = list(corpus) if corpus is not None else standard_corpus()
    system.deploy()
    stored = 0
    for item in items:
        try:
            system.store(item)
            stored += 1
        except Exception:
            pass
    report = BatteryReport(system=system.name, max_nodes=system.max_practical_nodes())

    def attempt(task: str, fn, check) -> None:
        try:
            result = fn()
        except CapabilityNotSupported as exc:
            report.outcomes.append(TaskOutcome(task, False, None, str(exc)))
            return
        except Exception as exc:  # a crash is a failed (not unsupported) task
            report.outcomes.append(TaskOutcome(task, True, False, f"error: {exc}"))
            return
        ok, detail = check(result)
        report.outcomes.append(TaskOutcome(task, True, ok, detail))

    # store-everything: did all formats land?
    report.outcomes.append(
        TaskOutcome("store_all_formats", True, stored == len(items), f"{stored}/{len(items)} stored")
    )

    attempt(
        "retrieve_unchanged",
        lambda: system.retrieve("cust-1"),
        lambda r: (_mentions(r, "Acme"), f"got {r!r}"[:60]),
    )
    attempt(
        "keyword_search",
        lambda: system.keyword_search("WidgetPro"),
        lambda ids: (any(i.startswith(("prod", "call", "mail")) for i in ids), f"{len(ids)} hits"),
    )
    attempt(
        "content_search",
        lambda: system.content_search("furious refund"),
        lambda ids: ("call-2" in ids, f"{ids}"),
    )
    attempt(
        "structured_query",
        lambda: system.structured_query("customers", "segment", "smb"),
        lambda rows: (len(rows) == 2, f"{len(rows)} rows"),
    )
    attempt(
        "join",
        lambda: system.join("orders", "customers", "cid", "cid"),
        lambda rows: (len(rows) == 4, f"{len(rows)} rows"),
    )
    attempt(
        "aggregate",
        lambda: system.aggregate("orders", "region", "amount"),
        lambda rows: (
            any(abs(_row_sum(r) - 1650.0) < 1e-6 for r in rows if r.get("region") == "east"),
            f"{rows}"[:60],
        ),
    )
    attempt(
        "annotate",
        lambda: system.annotate(),
        lambda n: (n > 0, f"{n} annotations"),
    )
    attempt(
        "connection_query",
        lambda: system.connection_query("call-1", "call-2"),
        lambda path: (path is not None, f"path={path}"),
    )

    report.admin_actions = system.ledger.count()
    return report


def _mentions(payload: Any, needle: str) -> bool:
    return needle.lower() in str(payload).lower()


def _row_sum(row: Mapping[str, Any]) -> float:
    for key, value in row.items():
        if key.startswith("sum"):
            try:
                return float(value)
            except (TypeError, ValueError):
                return float("nan")
    return float("nan")


def comparison_table(reports: Sequence[BatteryReport]) -> str:
    """Render the Figure 4 positioning as a text table."""
    header = f"{'system':<18} {'power':>6} {'tco':>6} {'scale':>6} {'admin':>6}"
    lines = [header, "-" * len(header)]
    for report in sorted(reports, key=lambda r: -r.power_score):
        lines.append(
            f"{report.system:<18} {report.power_score:>6.2f} "
            f"{report.tco_score:>6.2f} {report.scalability_score:>6.2f} "
            f"{report.admin_actions:>6d}"
        )
    return "\n".join(lines)
