"""The chaos controller: applies a seeded fault plan to a live cluster.

The controller is the bridge between a :class:`~repro.chaos.plan.FaultPlan`
(pure schedule) and the running system (cluster topology, network,
storage managers).  Callers interleave real work with
``controller.advance_to(sim_time)``; every event whose time has come is
applied, every autonomic repair it triggers is counted, and everything
lands in telemetry — so a benchmark can plot query success against
fault rate, and a property test can assert that the same seed produces
the same repair history down to the counter.

Safety guards: the controller never kills the last live data node or
the last live cluster node (a real appliance would refuse to shed its
final copy too); guarded-off events are recorded in ``skipped``.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaos.plan import FaultEvent, FaultKind, FaultPlan
from repro.chaos.retry import RetryPolicy
from repro.cluster.node import NodeKind, SimNode
from repro.cluster.topology import ImplianceCluster
from repro.obs.telemetry import DISABLED
from repro.util import stable_hash


class ChaosController:
    """Applies a fault plan against a cluster (and optional appliance).

    Parameters
    ----------
    cluster:
        The topology faults act on.
    plan:
        The seeded schedule to apply.
    appliance:
        When given, crashes route through ``Impliance.fail_node`` (which
        re-homes version chains) and the appliance's storage managers
        handle repair; the appliance's executor also adopts the plan's
        seeded retry policy, so backoff jitter replays with the plan.
    storage_managers:
        Explicit managers for standalone (no-appliance) use.
    """

    def __init__(
        self,
        cluster: ImplianceCluster,
        plan: FaultPlan,
        *,
        appliance=None,
        storage_managers: Optional[Sequence] = None,
        telemetry=None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.cluster = cluster
        self.plan = plan
        self.appliance = appliance
        if storage_managers is not None:
            self.storage_managers = list(storage_managers)
        elif appliance is not None:
            self.storage_managers = list(appliance._storage_managers)
        else:
            self.storage_managers = []
        if telemetry is not None:
            self.telemetry = telemetry
        elif appliance is not None:
            self.telemetry = appliance.telemetry
        else:
            self.telemetry = DISABLED
        self.retry_policy = retry_policy or plan.retry_policy()
        if appliance is not None:
            appliance.executor.retry_policy = self.retry_policy
            # The continuous replicator's shipment retries draw from the
            # same seeded policy, so a chaos run's full retry schedule —
            # queries and replication alike — replays with the plan.
            recovery = getattr(appliance, "recovery", None)
            if recovery is not None:
                recovery.retry_policy = self.retry_policy

        self.now_ms = 0.0
        self._cursor = 0
        self.applied: List[FaultEvent] = []
        self.skipped: List[FaultEvent] = []
        self.repair_actions = 0
        self.repair_latency_ms = 0.0
        #: (event time, repair actions, modeled re-replication latency).
        self.repair_log: List[Tuple[float, int, float]] = []

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def advance_to(self, sim_ms: float) -> List[FaultEvent]:
        """Apply every event scheduled at or before *sim_ms*."""
        fired: List[FaultEvent] = []
        while (
            self._cursor < len(self.plan.events)
            and self.plan.events[self._cursor].at_ms <= sim_ms
        ):
            event = self.plan.events[self._cursor]
            self._cursor += 1
            if self._apply(event):
                self.applied.append(event)
                fired.append(event)
            else:
                self.skipped.append(event)
                self.telemetry.inc("chaos.skipped")
        self.now_ms = max(self.now_ms, min(sim_ms, self.plan.duration_ms))
        return fired

    def run_all(self) -> List[FaultEvent]:
        """Apply the whole remaining schedule."""
        return self.advance_to(float("inf"))

    def settle(self) -> int:
        """Drain the plan, heal the network, restore speeds, and repair
        every outstanding replica deficit.  Returns the repairs made.

        Crashed nodes without a RECOVER event stay dead — the surviving
        replicas must carry the data, which is exactly what the
        no-data-loss assertions check.
        """
        self.run_all()
        self.cluster.network.heal_all()
        for node in self.cluster.nodes():
            node.restore_speed()
            self.cluster.network.restore_node(node.node_id)
        actions = 0
        for manager in self.storage_managers:
            actions += len(manager.repair_outstanding())
        if actions:
            self._count_repairs(self.now_ms, actions)
        return actions

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self.plan.events)

    # ------------------------------------------------------------------
    # event application
    # ------------------------------------------------------------------
    def _apply(self, event: FaultEvent) -> bool:
        handler = {
            FaultKind.CRASH: self._apply_crash,
            FaultKind.RECOVER: self._apply_recover,
            FaultKind.SLOW: self._apply_slow,
            FaultKind.RESTORE: self._apply_restore,
            FaultKind.PARTITION: self._apply_partition,
            FaultKind.HEAL: self._apply_heal,
            FaultKind.CORRUPT: self._apply_corrupt,
        }[event.kind]
        applied = handler(event)
        if applied:
            self.telemetry.inc("chaos.faults_injected")
            self.telemetry.inc(f"chaos.fault.{event.kind.value}")
        return applied

    def _node(self, node_id: str) -> Optional[SimNode]:
        try:
            return self.cluster.node(node_id)
        except LookupError:
            return None

    def _guard_crash(self, node: SimNode) -> bool:
        """Refuse to kill the last live data or cluster node."""
        if node.kind is NodeKind.DATA and len(self.cluster.data_nodes) <= 1:
            return False
        if node.kind is NodeKind.CLUSTER and len(self.cluster.cluster_nodes) <= 1:
            return False
        return True

    def _repair_snapshot(self) -> int:
        return sum(m.stats.repairs for m in self.storage_managers)

    def _publish_cache_event(self, target: str, kind: str) -> None:
        """Flush the appliance cache hierarchy for faults that do not
        route through ``fail_node``/``recover_node`` (which publish their
        own events): a partition, heal, or corruption changes which
        replicas answer, so cached results are suspect.  SLOW/RESTORE
        only change latency, never answers, and stay silent."""
        caches = getattr(self.appliance, "caches", None)
        if caches is not None:
            caches.bus.publish_node_event(target, kind)

    def _count_repairs(self, at_ms: float, actions: int) -> None:
        if actions <= 0:
            return
        self.repair_actions += actions
        latency = actions * self._per_repair_latency_ms()
        self.repair_latency_ms += latency
        self.repair_log.append((at_ms, actions, latency))
        self.telemetry.inc("chaos.repairs", actions)
        self.telemetry.observe("chaos.repair_latency_ms", latency)

    def _per_repair_latency_ms(self) -> float:
        """Modeled cost of copying one segment to its new replica home."""
        network = self.cluster.network
        seg_bytes = 4096 * 8  # fallback when no store is attached
        for manager in self.storage_managers:
            store = getattr(manager, "store", None)
            if store is not None:
                seg_bytes = store.page_bytes * store.segment_pages
                break
        return network.latency_ms + seg_bytes / network.bandwidth

    # -- individual fault kinds ----------------------------------------
    def _apply_crash(self, event: FaultEvent) -> bool:
        node = self._node(event.target)
        if node is None or not node.alive or not self._guard_crash(node):
            return False
        before = self._repair_snapshot()
        if self.appliance is not None:
            self.appliance.fail_node(event.target)
        else:
            self.cluster.fail_node(event.target)
            for manager in self.storage_managers:
                try:
                    manager.on_node_failure(event.target)
                except LookupError:
                    pass  # that manager's replica set never used the node
        self._count_repairs(event.at_ms, self._repair_snapshot() - before)
        return True

    def _apply_recover(self, event: FaultEvent) -> bool:
        node = self._node(event.target)
        if node is None or node.alive:
            return False
        before = self._repair_snapshot()
        if self.appliance is not None:
            self.appliance.recover_node(event.target)
        else:
            self.cluster.recover_node(event.target)
            if node.kind is NodeKind.DATA:
                for manager in self.storage_managers:
                    try:
                        manager.on_node_added(event.target)
                    except ValueError:
                        pass  # manager never saw this node fail
        self._count_repairs(event.at_ms, self._repair_snapshot() - before)
        return True

    def _apply_slow(self, event: FaultEvent) -> bool:
        node = self._node(event.target)
        if node is None or not node.alive:
            return False
        node.degrade(event.factor)
        self.cluster.network.degrade_node(event.target, event.factor)
        return True

    def _apply_restore(self, event: FaultEvent) -> bool:
        node = self._node(event.target)
        if node is None or not node.degraded:
            return False
        node.restore_speed()
        self.cluster.network.restore_node(event.target)
        return True

    def _apply_partition(self, event: FaultEvent) -> bool:
        assert event.peer is not None
        if self.cluster.network.is_partitioned(event.target, event.peer):
            return False
        self.cluster.network.partition(event.target, event.peer)
        self._publish_cache_event(event.target, "partition")
        return True

    def _apply_heal(self, event: FaultEvent) -> bool:
        assert event.peer is not None
        if not self.cluster.network.is_partitioned(event.target, event.peer):
            return False
        self.cluster.network.heal(event.target, event.peer)
        self._publish_cache_event(event.target, "heal")
        return True

    def _apply_corrupt(self, event: FaultEvent) -> bool:
        """Lose one segment replica held by the target node.

        The segment is picked deterministically from the event identity,
        so replays corrupt the same replica.  The storage manager reacts
        exactly as for a failed disk block: drop the copy, re-replicate.
        """
        node = self._node(event.target)
        if node is None:
            return False
        before = self._repair_snapshot()
        for manager in self.storage_managers:
            held = [
                r.segment_id
                for r in manager.replicas.placements()
                if event.target in r.node_ids
            ]
            if not held:
                continue
            pick = held[
                stable_hash(f"corrupt:{event.at_ms:.6f}:{event.target}", len(held))
            ]
            manager.on_replica_corrupted(pick, event.target)
            self._count_repairs(event.at_ms, self._repair_snapshot() - before)
            self._publish_cache_event(event.target, "corrupt")
            return True
        return False

    # ------------------------------------------------------------------
    # reporting / replay contract
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        by_kind: Dict[str, int] = {}
        for event in self.applied:
            by_kind[event.kind.value] = by_kind.get(event.kind.value, 0) + 1
        return {
            "faults_injected": len(self.applied),
            "by_kind": by_kind,
            "skipped": len(self.skipped),
            "repair_actions": self.repair_actions,
            "repair_latency_ms": round(self.repair_latency_ms, 6),
            "schedule_digest": self.plan.schedule_digest(),
        }

    def counters_digest(self) -> str:
        """Stable digest of what actually happened (for replay tests)."""
        summary = self.summary()
        payload = "|".join(
            [
                str(summary["faults_injected"]),
                ",".join(f"{k}={v}" for k, v in sorted(summary["by_kind"].items())),
                str(summary["skipped"]),
                str(summary["repair_actions"]),
                f"{self.repair_latency_ms:.6f}",
            ]
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()
