"""Deterministic chaos engineering for the simulated appliance.

Impliance's reliability story (Sections 3.1/3.4) is autonomic: nodes
fail, the appliance re-detects the topology, re-replicates, and keeps
serving without an administrator.  This package makes failure a
first-class, *seeded, replayable* input to the simulator so every one of
those claims can be regression-tested instead of demonstrated:

- :class:`FaultPlan` — a seeded, immutable schedule of fault events
  (crash, recover, slow node, partition, heal, segment corruption).
  Same seed ⇒ byte-identical schedule (``schedule_digest``).
- :class:`ChaosController` — applies a plan against a cluster (and,
  when bound to an appliance, its storage managers), counting every
  injected fault, autonomic repair, and skipped event in telemetry.
- :class:`RetryPolicy` — timeouts plus exponential backoff whose jitter
  is drawn from the seeded RNG, so retry schedules replay exactly.

See docs/CHAOS.md for the fault model and the seeding/replay contract.
"""

from repro.chaos.controller import ChaosController
from repro.chaos.plan import FaultEvent, FaultKind, FaultPlan
from repro.chaos.retry import RetryError, RetryPolicy, call_with_retries

__all__ = [
    "ChaosController",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "RetryError",
    "RetryPolicy",
    "call_with_retries",
]
