"""Timeouts and exponential backoff with seeded jitter.

In a simulated cluster, a retry does not sleep: each failed attempt
*charges simulated time* — its timeout plus a jittered backoff — to
whatever timeline the caller is building.  Jitter comes from an RNG
seeded at policy construction, so a chaos run's complete retry schedule
replays exactly under the same :class:`~repro.chaos.plan.FaultPlan`
seed (the property tests assert this).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple, Type


class RetryError(RuntimeError):
    """All attempts exhausted; carries how many were made."""

    def __init__(self, message: str, attempts: int) -> None:
        super().__init__(message)
        self.attempts = attempts


@dataclass
class RetryPolicy:
    """Timeout + exponential backoff with seeded jitter.

    Defaults (documented in docs/CHAOS.md): 4 attempts, 25 ms timeout
    per attempt, backoff 5 ms doubling per retry, up to +50% jitter.
    """

    max_attempts: int = 4
    timeout_ms: float = 25.0
    base_backoff_ms: float = 5.0
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: Any = 0
    _rng: random.Random = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.timeout_ms < 0 or self.base_backoff_ms < 0:
            raise ValueError("timeout and backoff cannot be negative")
        if self.multiplier < 1.0:
            raise ValueError("backoff multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self.reseed()

    def reseed(self) -> None:
        """Reset the jitter stream (replaying a run from its start)."""
        self._rng = random.Random(f"retry:{self.seed}")

    def backoff_ms(self, attempt: int) -> float:
        """Jittered delay before retry *attempt* (0-based)."""
        base = self.base_backoff_ms * (self.multiplier ** attempt)
        return base * (1.0 + self.jitter * self._rng.random())

    def penalty_ms(self, attempt: int) -> float:
        """Simulated cost of one failed attempt: timeout + backoff."""
        return self.timeout_ms + self.backoff_ms(attempt)


def call_with_retries(
    fn: Callable[[int], Any],
    policy: RetryPolicy,
    *,
    retry_on: Tuple[Type[BaseException], ...] = (RuntimeError,),
    telemetry: Optional[Any] = None,
    label: str = "retry",
) -> Tuple[Any, float, int]:
    """Call ``fn(attempt)`` until it succeeds or the policy is exhausted.

    Returns ``(result, penalty_ms, attempts)`` where *penalty_ms* is the
    simulated time the failed attempts cost; callers add it to the sim
    timeline they are building.  Raises :class:`RetryError` after the
    last attempt fails.
    """
    penalty = 0.0
    last: Optional[BaseException] = None
    for attempt in range(policy.max_attempts):
        try:
            return fn(attempt), penalty, attempt + 1
        except retry_on as exc:
            last = exc
            penalty += policy.penalty_ms(attempt)
            if telemetry is not None:
                telemetry.inc(f"{label}.attempts")
    if telemetry is not None:
        telemetry.inc(f"{label}.giveups")
    raise RetryError(
        f"gave up after {policy.max_attempts} attempts: {last}", policy.max_attempts
    ) from last
