"""Seeded, replayable fault schedules.

A :class:`FaultPlan` is the chaos subsystem's only source of randomness:
every event time, target, and pairing is drawn from ``random.Random``
seeded with the plan seed, and consumers (retry jitter, benchmark
probes) derive their own namespaced RNGs from the same seed via
:meth:`FaultPlan.rng`.  Two plans generated with the same seed and
parameters are byte-identical — :meth:`schedule_digest` is the replay
contract the property tests assert.
"""

from __future__ import annotations

import enum
import hashlib
import random
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple


class FaultKind(enum.Enum):
    """The fault vocabulary of the simulator."""

    CRASH = "crash"          # node stops; storage repair kicks in
    RECOVER = "recover"      # crashed node returns (replacement hardware)
    SLOW = "slow"            # node CPU + links degrade by `factor`
    RESTORE = "restore"      # slow node returns to full speed
    PARTITION = "partition"  # target <-> peer link drops every message
    HEAL = "heal"            # partitioned link carries traffic again
    CORRUPT = "corrupt"      # one segment replica on target is lost


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: *kind* happens to *target* at sim-time *at_ms*."""

    at_ms: float
    kind: FaultKind
    target: str
    peer: Optional[str] = None  # partition/heal: the other endpoint
    factor: float = 1.0         # slow: fraction of base speed kept

    def __post_init__(self) -> None:
        if self.at_ms < 0:
            raise ValueError("fault times cannot be negative")
        if self.kind in (FaultKind.PARTITION, FaultKind.HEAL) and not self.peer:
            raise ValueError(f"{self.kind.value} events need a peer")
        if not 0.0 < self.factor <= 1.0:
            raise ValueError("factor must be in (0, 1]")

    def sort_key(self) -> Tuple[float, str, str, str]:
        return (self.at_ms, self.kind.value, self.target, self.peer or "")

    def describe(self) -> str:
        suffix = f" <-> {self.peer}" if self.peer else ""
        factor = f" x{self.factor:g}" if self.kind is FaultKind.SLOW else ""
        return f"t={self.at_ms:.1f}ms {self.kind.value} {self.target}{suffix}{factor}"


class FaultPlan:
    """An immutable, time-ordered fault schedule with a seed.

    Build one by hand for scenario tests, or with :meth:`generate` for
    seeded random campaigns.  Events with equal times apply in a stable
    (kind, target) order so replays are exact.
    """

    def __init__(self, events: Iterable[FaultEvent], seed: int = 0) -> None:
        self.seed = seed
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=FaultEvent.sort_key)
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    @property
    def duration_ms(self) -> float:
        return max((e.at_ms for e in self.events), default=0.0)

    def count(self, kind: FaultKind) -> int:
        return sum(1 for e in self.events if e.kind is kind)

    # ------------------------------------------------------------------
    # the seeding / replay contract
    # ------------------------------------------------------------------
    def schedule_digest(self) -> str:
        """Stable digest of the full schedule (same seed ⇒ same digest)."""
        payload = "\n".join(
            f"{e.at_ms:.6f}|{e.kind.value}|{e.target}|{e.peer or ''}|{e.factor:.6f}"
            for e in self.events
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def rng(self, namespace: str) -> random.Random:
        """A deterministic RNG derived from (seed, namespace).

        Consumers that need randomness during a chaos run (retry jitter,
        probe sampling) must draw from here, never from global state —
        that is what makes a run replayable.
        """
        return random.Random(f"faultplan:{self.seed}:{namespace}")

    def retry_policy(self, **overrides):
        """The plan's seeded :class:`~repro.chaos.retry.RetryPolicy`."""
        from repro.chaos.retry import RetryPolicy

        return RetryPolicy(seed=f"faultplan:{self.seed}", **overrides)

    # ------------------------------------------------------------------
    # seeded generation
    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        seed: int,
        *,
        node_ids: Sequence[str],
        duration_ms: float = 1000.0,
        crashes: int = 1,
        slows: int = 1,
        partitions: int = 1,
        corruptions: int = 0,
        recover_after_ms: Optional[float] = 250.0,
        heal_after_ms: float = 150.0,
        slow_duration_ms: float = 250.0,
        slow_factor: float = 0.25,
    ) -> "FaultPlan":
        """Draw a random campaign from the seeded RNG.

        Crashes pair with a RECOVER ``recover_after_ms`` later (pass
        ``None`` to leave nodes dead — the double-failure scenarios);
        partitions pair with a HEAL; slow-downs pair with a RESTORE.
        Faults land in the first 70% of the window so their paired
        recovery events still fall inside it.
        """
        if not node_ids:
            raise ValueError("fault generation needs at least one node id")
        rng = random.Random(f"faultplan:{seed}")
        window = duration_ms * 0.7
        events: List[FaultEvent] = []

        for _ in range(crashes):
            target = rng.choice(list(node_ids))
            at = rng.uniform(0.0, window)
            events.append(FaultEvent(at, FaultKind.CRASH, target))
            if recover_after_ms is not None:
                events.append(
                    FaultEvent(at + recover_after_ms, FaultKind.RECOVER, target)
                )

        for _ in range(slows):
            target = rng.choice(list(node_ids))
            at = rng.uniform(0.0, window)
            events.append(FaultEvent(at, FaultKind.SLOW, target, factor=slow_factor))
            events.append(FaultEvent(at + slow_duration_ms, FaultKind.RESTORE, target))

        for _ in range(partitions):
            if len(node_ids) < 2:
                break
            a, b = rng.sample(list(node_ids), 2)
            at = rng.uniform(0.0, window)
            events.append(FaultEvent(at, FaultKind.PARTITION, a, peer=b))
            events.append(FaultEvent(at + heal_after_ms, FaultKind.HEAL, a, peer=b))

        for _ in range(corruptions):
            target = rng.choice(list(node_ids))
            at = rng.uniform(0.0, window)
            events.append(FaultEvent(at, FaultKind.CORRUPT, target))

        return cls(events, seed=seed)
