"""Compression and encryption stages for storage pushdown (Section 3.1).

"Another good example for pushing down logic is compression and
encryption.  ...the push-down logic is implemented in the software
component of a storage unit, and thus can be deployed on any type of
commodity hardware."

Both stages operate on serialized document bytes.  Compression is real
(zlib plus a document-aware key dictionary); the "encryption" stage is an
XOR keystream placeholder — the experiment it serves measures *where the
stage runs and what it costs*, not cryptographic strength, and DESIGN.md
documents that substitution.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List

from repro.model.document import Document


@dataclass
class StageStats:
    """Byte accounting for one pipeline stage.

    Standalone by default (benches build stages ad hoc); attached to a
    :class:`repro.obs.telemetry.Telemetry` the counters also flow onto
    the shared metrics registry, so ``Impliance.stats()`` reports every
    stage through one vocabulary (``storage.compress.bytes_in``, ...)
    instead of three ad-hoc counter bags.
    """

    calls: int = 0
    bytes_in: int = 0
    bytes_out: int = 0

    def __post_init__(self) -> None:
        self._telemetry = None
        self._prefix = ""

    def attach(self, telemetry, prefix: str) -> "StageStats":
        """Mirror onto shared metrics: ``<prefix>.calls`` /
        ``<prefix>.bytes_in`` / ``<prefix>.bytes_out`` counters plus a
        ``<prefix>.ratio`` gauge, updated on every :meth:`record`."""
        self._telemetry = telemetry
        self._prefix = prefix
        return self

    def record(self, bytes_in: int, bytes_out: int) -> None:
        self.calls += 1
        self.bytes_in += bytes_in
        self.bytes_out += bytes_out
        telemetry = self._telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.inc(f"{self._prefix}.calls")
            telemetry.inc(f"{self._prefix}.bytes_in", bytes_in)
            telemetry.inc(f"{self._prefix}.bytes_out", bytes_out)
            telemetry.set_gauge(f"{self._prefix}.ratio", self.ratio)

    @property
    def ratio(self) -> float:
        """Output/input byte ratio (< 1 means the stage shrank the data)."""
        if self.bytes_in == 0:
            return 1.0
        return self.bytes_out / self.bytes_in


class Compressor:
    """zlib-based page/document compressor with byte accounting."""

    def __init__(self, level: int = 6, telemetry=None) -> None:
        if not 0 <= level <= 9:
            raise ValueError("zlib level must be in [0, 9]")
        self.level = level
        self.stats = StageStats()
        if telemetry is not None:
            self.stats.attach(telemetry, "storage.compress")

    def compress(self, payload: bytes) -> bytes:
        result = zlib.compress(payload, self.level)
        self.stats.record(len(payload), len(result))
        return result

    def decompress(self, payload: bytes) -> bytes:
        return zlib.decompress(payload)


class DictionaryCompressor:
    """Document-aware compression: shared key dictionary + zlib body.

    Documents in one schema cluster repeat the same path keys; encoding
    keys as small integers before byte compression is the kind of
    data-friendly trick an appliance can apply because it owns the whole
    stack.  The dictionary is learned incrementally and shared across
    documents, so later documents compress better than early ones.
    """

    def __init__(self, level: int = 6, telemetry=None) -> None:
        self.level = level
        self.stats = StageStats()
        if telemetry is not None:
            self.stats.attach(telemetry, "storage.compress")
        self._key_to_code: Dict[str, int] = {}
        self._code_to_key: List[str] = []

    def _encode_keys(self, node: Any) -> Any:
        if isinstance(node, dict):
            encoded = {}
            for key, child in node.items():
                code = self._key_to_code.get(key)
                if code is None:
                    code = len(self._code_to_key)
                    self._key_to_code[key] = code
                    self._code_to_key.append(key)
                encoded[str(code)] = self._encode_keys(child)
            return encoded
        if isinstance(node, list):
            return [self._encode_keys(item) for item in node]
        return node

    def _decode_keys(self, node: Any) -> Any:
        if isinstance(node, dict):
            return {
                self._code_to_key[int(code)]: self._decode_keys(child)
                for code, child in node.items()
            }
        if isinstance(node, list):
            return [self._decode_keys(item) for item in node]
        return node

    def compress_document(self, document: Document) -> bytes:
        raw = document.to_json()
        encoded_content = self._encode_keys(document.content)
        envelope = json.dumps(
            {
                "doc_id": document.doc_id,
                "version": document.version,
                "kind": document.kind.value,
                "source_format": document.source_format,
                "metadata": document.metadata,
                "refs": list(document.refs),
                "ingest_ts": document.ingest_ts,
                "content": encoded_content,
            },
            sort_keys=True,
            default=str,
        )
        compressed = zlib.compress(envelope.encode("utf-8"), self.level)
        self.stats.record(len(raw), len(compressed))
        return compressed

    def decompress_document(self, payload: bytes) -> Document:
        envelope = json.loads(zlib.decompress(payload).decode("utf-8"))
        envelope["content"] = self._decode_keys(envelope["content"])
        return Document.from_json(json.dumps(envelope))

    @property
    def dictionary_size(self) -> int:
        return len(self._code_to_key)


class XorStreamCipher:
    """Keystream XOR stage standing in for real encryption.

    NOT cryptographically secure — it exists so the pushdown experiment
    can place an encrypt/decrypt stage on either side of the network and
    measure the placement's cost, per the DESIGN.md substitution table.
    """

    def __init__(self, key: bytes, telemetry=None) -> None:
        if not key:
            raise ValueError("key must be non-empty")
        self._key = key
        self.stats = StageStats()
        if telemetry is not None:
            self.stats.attach(telemetry, "storage.encrypt")

    def _keystream(self, length: int, nonce: int) -> bytes:
        stream = bytearray()
        counter = 0
        while len(stream) < length:
            block = hashlib.sha256(
                self._key + nonce.to_bytes(8, "big") + counter.to_bytes(8, "big")
            ).digest()
            stream.extend(block)
            counter += 1
        return bytes(stream[:length])

    def encrypt(self, payload: bytes, nonce: int = 0) -> bytes:
        stream = self._keystream(len(payload), nonce)
        result = bytes(a ^ b for a, b in zip(payload, stream))
        self.stats.record(len(payload), len(result))
        return result

    def decrypt(self, payload: bytes, nonce: int = 0) -> bytes:
        return self.encrypt(payload, nonce)
