"""Buffer pool with plan-hinted prefetching (paper Section 3.1).

The appliance-integration claim: a general-purpose storage stack has to
*guess* access patterns by mining page-reference streams, "often
prefetching pages that go unreferenced and thrashing their hypothesized
pattern when the database queries change subtly, even though the database
knows full well from its access plan" what comes next.  Because Impliance
owns the whole stack, the executor passes an explicit
:class:`AccessHint` down with every page request.

Two prefetch policies are provided so the PREFETCH experiment can compare
them:

* :class:`HintedPrefetcher` — trusts the plan hint (Impliance).
* :class:`PatternMiningPrefetcher` — the general-purpose baseline that
  infers sequential runs from the reference stream.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, List, Optional, Protocol, Tuple

from repro.storage.pages import Page

PageKey = Tuple[int, int]  # (segment_id, page_id)

#: How many pages ahead a sequential prefetch reaches.
DEFAULT_PREFETCH_WINDOW = 4

#: Consecutive sequential references the mining baseline needs before it
#: starts prefetching.
MINING_RUN_THRESHOLD = 3


class AccessHint(enum.Enum):
    """The executor's declaration of its access pattern for one request."""

    SEQUENTIAL = "sequential"  # table scan: prefetch ahead aggressively
    RANDOM = "random"          # unclustered index probe: do not prefetch
    NONE = "none"              # caller offers no information


@dataclass
class BufferPoolStats:
    """Counters the prefetch experiment reports."""

    requests: int = 0
    hits: int = 0
    misses: int = 0
    io_reads: int = 0
    prefetch_issued: int = 0
    prefetch_used: int = 0
    prefetch_wasted: int = 0
    evictions: int = 0
    #: Bytes brought in by disk reads, split by page representation:
    #: encoded (compressed column pages) vs decoded (row pages caching
    #: whole documents).  The split is what the columnar refactor is
    #: measured by — the same logical rows cost fewer pool bytes encoded.
    bytes_read_encoded: int = 0
    bytes_read_decoded: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    @property
    def bytes_read(self) -> int:
        return self.bytes_read_encoded + self.bytes_read_decoded

    @property
    def prefetch_accuracy(self) -> float:
        consumed = self.prefetch_used + self.prefetch_wasted
        return self.prefetch_used / consumed if consumed else 0.0


class Prefetcher(Protocol):
    """Decides which pages to read ahead after a demand access."""

    def plan(self, key: PageKey, hint: AccessHint, segment_pages: int) -> List[PageKey]:
        """Return page keys to prefetch following a demand read of *key*."""


class NoPrefetcher:
    """Null policy: never prefetch."""

    def plan(self, key: PageKey, hint: AccessHint, segment_pages: int) -> List[PageKey]:
        return []


class HintedPrefetcher:
    """Prefetch only when the plan says the access is sequential."""

    def __init__(self, window: int = DEFAULT_PREFETCH_WINDOW) -> None:
        if window < 1:
            raise ValueError("prefetch window must be >= 1")
        self.window = window

    def plan(self, key: PageKey, hint: AccessHint, segment_pages: int) -> List[PageKey]:
        if hint is not AccessHint.SEQUENTIAL:
            return []
        segment_id, page_id = key
        upper = min(page_id + self.window, segment_pages - 1)
        return [(segment_id, p) for p in range(page_id + 1, upper + 1)]


class PatternMiningPrefetcher:
    """General-purpose baseline: infer sequential runs, ignore hints.

    After :data:`MINING_RUN_THRESHOLD` consecutive ``page_id + 1``
    references within a segment it hypothesizes a scan and prefetches a
    window ahead.  A single out-of-sequence reference resets the run —
    and until the threshold is met again, sequential accesses get no
    prefetch.  Interleaved scans or scan/probe mixes therefore thrash it,
    which is precisely the pathology the paper describes.
    """

    def __init__(self, window: int = DEFAULT_PREFETCH_WINDOW) -> None:
        if window < 1:
            raise ValueError("prefetch window must be >= 1")
        self.window = window
        self._last_key: Optional[PageKey] = None
        self._run_length = 0

    def plan(self, key: PageKey, hint: AccessHint, segment_pages: int) -> List[PageKey]:
        segment_id, page_id = key
        if (
            self._last_key is not None
            and self._last_key[0] == segment_id
            and page_id == self._last_key[1] + 1
        ):
            self._run_length += 1
        else:
            self._run_length = 1
        self._last_key = key
        if self._run_length < MINING_RUN_THRESHOLD:
            return []
        upper = min(page_id + self.window, segment_pages - 1)
        return [(segment_id, p) for p in range(page_id + 1, upper + 1)]


class BufferPool:
    """LRU page cache in front of a (simulated) disk.

    Parameters
    ----------
    capacity_pages:
        Number of page frames.
    fetch:
        Callable reading a page from disk: ``fetch(segment_id, page_id)``.
    segment_pages:
        Callable returning the page count of a segment (bounds prefetch).
    prefetcher:
        The read-ahead policy.
    capacity_bytes:
        Optional byte budget on top of the frame budget.  Frames are
        charged what the page actually holds — ``page.cached_bytes()``:
        decoded document bytes for row pages, *encoded* vector bytes for
        column pages — so a pool full of compressed column pages fits
        many more logical rows than one full of row pages.
    """

    def __init__(
        self,
        capacity_pages: int,
        fetch: Callable[[int, int], Page],
        segment_pages: Callable[[int], int],
        prefetcher: Optional[Prefetcher] = None,
        *,
        capacity_bytes: Optional[int] = None,
    ) -> None:
        if capacity_pages < 1:
            raise ValueError("buffer pool needs at least one frame")
        if capacity_bytes is not None and capacity_bytes < 1:
            raise ValueError("capacity_bytes must be positive when set")
        self.capacity_pages = capacity_pages
        self.capacity_bytes = capacity_bytes
        self._fetch = fetch
        self._segment_pages = segment_pages
        self.prefetcher: Prefetcher = prefetcher if prefetcher is not None else NoPrefetcher()
        self.stats = BufferPoolStats()
        self._frames: "OrderedDict[PageKey, Page]" = OrderedDict()
        self._frame_bytes: dict = {}
        self._resident_bytes = 0
        self._prefetched_pending: set = set()
        #: Observers invoked on every demand read (page, key); the
        #: discovery engine piggybacks mining passes here (Section 3.2:
        #: "perform both opportunistically on any page retrieved into the
        #: buffer for other reasons").
        self.page_observers: List[Callable[[PageKey, Page], None]] = []

    # ------------------------------------------------------------------
    def _evict_if_needed(self, protected: frozenset = frozenset()) -> None:
        """Evict from the cold end, preferring already-referenced frames
        over pending prefetches.

        A pending prefetched page's reference is still in the *future*:
        evicting it before its demand read arrives converts the
        read-ahead I/O into pure waste (the page is read twice).  So the
        victim is the coldest frame whose reference is in the past; only
        when every frame is a pending prefetch does the oldest pending
        one go — and cold-end installation (see :meth:`_install`) makes
        "oldest pending" exactly the prefetch most likely to have been
        speculative waste.  Frames installed by the in-flight request are
        never victims."""
        while self._over_budget():
            victim = next(
                (
                    k
                    for k in self._frames
                    if k not in protected and k not in self._prefetched_pending
                ),
                None,
            )
            if victim is None:  # every referenced frame is protected
                victim = next(
                    (k for k in self._frames if k not in protected), None
                )
            if victim is None:  # capacity smaller than one request's frames
                victim = next(iter(self._frames))
            del self._frames[victim]
            self._resident_bytes -= self._frame_bytes.pop(victim, 0)
            self.stats.evictions += 1
            if victim in self._prefetched_pending:
                self._prefetched_pending.discard(victim)
                self.stats.prefetch_wasted += 1

    def _over_budget(self) -> bool:
        if len(self._frames) > self.capacity_pages:
            return True
        # The byte budget never evicts the last frame: the in-flight page
        # must stay resident even when it alone exceeds the budget (the
        # same concession the frame budget makes for oversized requests).
        return (
            self.capacity_bytes is not None
            and self._resident_bytes > self.capacity_bytes
            and len(self._frames) > 1
        )

    @staticmethod
    def _page_cost(page: Page) -> int:
        cached = getattr(page, "cached_bytes", None)
        if cached is not None:
            return cached()
        return getattr(page, "used_bytes", 0)

    def _install(
        self,
        key: PageKey,
        page: Page,
        mru: bool = True,
        protected: frozenset = frozenset(),
    ) -> None:
        """Insert a frame at the MRU end (demand reads) or the cold end
        (``mru=False``, speculative prefetch).  Cold-end installation is
        what keeps read-ahead honest: a prefetched page that is never
        referenced is the first victim, instead of evicting demand-read
        pages that are still hot.  A demand hit promotes it to MRU."""
        if key in self._frames:
            self._resident_bytes -= self._frame_bytes.pop(key, 0)
        self._frames[key] = page
        cost = self._page_cost(page)
        self._frame_bytes[key] = cost
        self._resident_bytes += cost
        self._frames.move_to_end(key, last=mru)
        self._evict_if_needed(protected)

    def _read_from_disk(self, key: PageKey) -> Page:
        self.stats.io_reads += 1
        page = self._fetch(key[0], key[1])
        cost = self._page_cost(page)
        if getattr(page, "is_columnar", False):
            self.stats.bytes_read_encoded += cost
        else:
            self.stats.bytes_read_decoded += cost
        return page

    # ------------------------------------------------------------------
    def get(self, segment_id: int, page_id: int, hint: AccessHint = AccessHint.NONE) -> Page:
        """Demand-read a page through the pool."""
        key = (segment_id, page_id)
        self.stats.requests += 1

        if key in self._frames:
            self.stats.hits += 1
            self._frames.move_to_end(key)
            page = self._frames[key]
            if key in self._prefetched_pending:
                self._prefetched_pending.discard(key)
                self.stats.prefetch_used += 1
        else:
            self.stats.misses += 1
            page = self._read_from_disk(key)
            self._install(key, page, protected=frozenset((key,)))

        installed = {key}
        for plan_key in self.prefetcher.plan(key, hint, self._segment_pages(segment_id)):
            if plan_key in self._frames:
                continue
            prefetched = self._read_from_disk(plan_key)
            self.stats.prefetch_issued += 1
            self._prefetched_pending.add(plan_key)
            installed.add(plan_key)
            self._install(plan_key, prefetched, mru=False, protected=frozenset(installed))

        for observer in self.page_observers:
            observer(key, page)
        return page

    def flush(self) -> None:
        """Drop every frame (pending prefetches count as wasted)."""
        self.stats.prefetch_wasted += len(self._prefetched_pending)
        self._prefetched_pending.clear()
        self._frames.clear()
        self._frame_bytes.clear()
        self._resident_bytes = 0

    @property
    def resident_pages(self) -> int:
        return len(self._frames)

    @property
    def resident_bytes(self) -> int:
        """Bytes currently held across frames, at each page's cached
        (encoded for column pages, decoded for row pages) size."""
        return self._resident_bytes

    def __contains__(self, key: PageKey) -> bool:
        return key in self._frames
