"""Native columnar pages: auto-view columns stored encoded (Section 3.1).

The appliance owns its storage stack end-to-end, so data-aware logic —
compression, projection, predicate evaluation — lives *in* the storage
unit instead of above it.  This module is that pushdown for the scan
path: every table-shaped document appended to a :class:`~repro.storage.
store.DocumentStore` also lands, at commit time, in a per-table
:class:`ColumnGroup` whose :class:`ColumnPage`\\ s hold the row's column
values as dictionary codes (:mod:`repro.storage.encoding`).  Scans of the
auto views then read :class:`~repro.exec.batch.ColumnBatch`\\ es straight
off the compressed pages — zero row materialization — while the row pages
remain the home of full documents for ``get``/BLOB reads and for the rare
*irregular* rows the columnar layout cannot express.

Layout invariants the query layers rely on:

* **Order.**  Rows append in commit order and dead rows are masked, so a
  columnar scan yields exactly the rows — in exactly the order — the row
  path's ``matches → project`` scan would.
* **Liveness.**  A new version, tombstone, or table change marks the
  superseded row dead in place; the vectors themselves are immutable.
* **Regular vs irregular.**  A row is stored columnar ("regular") only
  when its content is ``{table: {col: scalar, ...}}`` — the same shape
  ``ColumnProjector``'s fast path accepts — so decoding a code is
  guaranteed byte-identical to ``view.project``.  Anything else stores a
  reference to its row page and is projected through the general
  machinery at scan time, interleaved in order.
* **Shared dictionaries.**  One append-only :class:`ColumnDictionary`
  per (table, column), shared by every page and segment: codes are
  stable, predicate caches survive across pages, and later rows compress
  better than early ones — the same incremental trick
  :class:`~repro.storage.compression.DictionaryCompressor` plays for keys.

Column segments draw ids from the same counter as row segments, so
``(segment_id, page_id)`` buffer-pool keys never collide and the pool
caches *compressed* pages (see ``BufferPool`` byte accounting).  They do
not fire seal listeners: encoded vectors are derivable from the row
pages, so they ride the row segments' replication (reliability classes
place re-creatable data thinner, Section 3.4).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.model.document import Document
from repro.storage.encoding import ColumnDictionary, EncodedColumn, _code_width
from repro.storage.pages import PageAddress

#: Default rows per column page — matches the exec layer's default batch
#: size, so one page feeds one batch.
DEFAULT_COLUMN_PAGE_ROWS = 1024


def is_columnar_view(view) -> bool:
    """Can *view* be answered straight off column pages?

    True for the auto-view shape (``base_table_view``): a table filter
    and nothing else — no kind/label narrowing, no view predicate, and
    every column a self-sourced two-segment ``(table, name)`` path.  For
    such views, group membership (``metadata['table'] == table``) is
    *exactly* ``view.matches``, and column decode is exactly
    ``view.project`` — the two preconditions of result identity.
    """
    if view.table is None:
        return False
    if view.kind is not None or view.annotation_label is not None:
        return False
    if view.predicate is not None:
        return False
    for column in view.columns:
        if column.source != "self":
            return False
        if len(column.path) != 2 or column.path[0] != view.table:
            return False
    return True


def regular_row_values(document: Document, table: str) -> Optional[Dict[str, Any]]:
    """The flat ``{column: scalar}`` mapping of a regular row, or None.

    Mirrors ``ColumnProjector._fast_values``'s conditions, tightened to
    *every* inner value (not just the current view's columns) so the row
    stays decodable for columns future auto-view growth adds.  For a
    regular row, ``document.first((table, c))`` equals ``inner.get(c)``
    for every column ``c`` — which is what lets the scan skip
    ``view.project`` entirely.
    """
    content = document.content
    if type(content) is not dict:
        return None
    inner = content.get(table)
    if type(inner) is not dict:
        return None
    for value in inner.values():
        if isinstance(value, (dict, list, tuple)):
            return None
    return inner


class ColumnPage:
    """One page of a column segment: a row-slice stored column-wise.

    Columns are flat code lists aligned to ``row_count`` (a column that
    first appears mid-page is back-filled with the null code).  The
    encoded form handed to scans is built lazily per column — flat codes
    or run-length pairs, whichever is smaller — and cached until the next
    append.  Dead rows are a position mask; irregular rows store the
    address of their document on the row pages.
    """

    __slots__ = (
        "page_id",
        "segment_id",
        "capacity_rows",
        "row_count",
        "_codes",
        "_irregular",
        "_dead",
        "_built",
        "_null_codes",
    )

    #: Buffer-pool frames holding this page account *encoded* bytes.
    is_columnar = True

    def __init__(self, page_id: int, segment_id: int, capacity_rows: int) -> None:
        self.page_id = page_id
        self.segment_id = segment_id
        self.capacity_rows = capacity_rows
        self.row_count = 0
        self._codes: Dict[str, List[int]] = {}
        self._irregular: Dict[int, PageAddress] = {}
        self._dead: set = set()
        self._built: Dict[str, EncodedColumn] = {}
        self._null_codes: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # writes (called by the owning group only)
    # ------------------------------------------------------------------
    @property
    def is_full(self) -> bool:
        return self.row_count >= self.capacity_rows

    def append_regular(
        self, values: Dict[str, Any], dictionaries: Dict[str, ColumnDictionary]
    ) -> Tuple[int, int]:
        """Append one regular row; returns (position, raw value bytes)."""
        position = self._start_row(values, dictionaries)
        raw = 0
        for name, codes in self._codes.items():
            if name in values:
                dictionary = dictionaries[name]
                code = dictionary.encode_one(values[name])
                codes.append(code)
                raw += dictionary.raw_size(code)
            else:
                codes.append(self._null_codes[name])
        return position, raw

    def append_irregular(
        self, address: PageAddress, dictionaries: Dict[str, ColumnDictionary]
    ) -> int:
        """Store a reference row: null-padded columns + the doc's address."""
        position = self._start_row({}, dictionaries)
        for name, codes in self._codes.items():
            codes.append(self._null_codes[name])
        self._irregular[position] = address
        return position

    def _start_row(
        self, values: Dict[str, Any], dictionaries: Dict[str, ColumnDictionary]
    ) -> int:
        self._built.clear()
        for name in values:
            if name not in self._codes:
                # Column newly observed on this page: back-fill the rows
                # already here with nulls so every column stays aligned.
                dictionary = dictionaries.setdefault(name, ColumnDictionary())
                null_code = dictionary.encode_one(None)
                self._null_codes[name] = null_code
                self._codes[name] = [null_code] * self.row_count
        position = self.row_count
        self.row_count += 1
        return position

    def mark_dead(self, position: int) -> None:
        self._dead.add(position)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def live_positions(self) -> List[int]:
        if not self._dead:
            return list(range(self.row_count))
        dead = self._dead
        return [i for i in range(self.row_count) if i not in dead]

    def live_irregular(self) -> Dict[int, PageAddress]:
        """position → row-page address for live irregular rows."""
        if not self._irregular:
            return {}
        dead = self._dead
        return {p: a for p, a in self._irregular.items() if p not in dead}

    def has_column(self, name: str) -> bool:
        return name in self._codes

    def encoded_column(
        self, name: str, dictionary: ColumnDictionary
    ) -> EncodedColumn:
        built = self._built.get(name)
        if built is None:
            built = EncodedColumn.from_codes(list(self._codes[name]), dictionary)
            self._built[name] = built
        return built

    def raw_codes(self, name: str) -> List[int]:
        return self._codes[name]

    def column_names(self) -> List[str]:
        return list(self._codes)

    # ------------------------------------------------------------------
    # buffer-pool protocol (duck-typed against the row Page)
    # ------------------------------------------------------------------
    def documents(self) -> Iterator[Document]:
        """Column pages hold no whole documents — page observers (the
        piggyback miner) see an empty page and move on."""
        return iter(())

    def cached_bytes(self) -> int:
        """Encoded on-page size — what a buffer-pool frame actually holds."""
        total = 0
        for name, codes in self._codes.items():
            runs = self._built.get(name)
            if runs is not None:
                total += runs.encoded_bytes()
            else:
                total += len(codes)  # width-1 lower bound until built
        return total

    @property
    def doc_count(self) -> int:
        return 0

    @property
    def used_bytes(self) -> int:
        return self.cached_bytes()


class ColumnSegment:
    """A bounded run of column pages (mirrors the row ``Segment``)."""

    def __init__(self, segment_id: int, page_rows: int, max_pages: int) -> None:
        if max_pages < 1:
            raise ValueError("segments need at least one page")
        self.segment_id = segment_id
        self.page_rows = page_rows
        self.max_pages = max_pages
        self._pages: List[ColumnPage] = []

    @property
    def is_sealed(self) -> bool:
        return len(self._pages) >= self.max_pages and self._pages[-1].is_full

    def open_page(self) -> Optional[ColumnPage]:
        """The page accepting the next row, or None when sealed."""
        if self._pages and not self._pages[-1].is_full:
            return self._pages[-1]
        if len(self._pages) >= self.max_pages:
            return None
        page = ColumnPage(len(self._pages), self.segment_id, self.page_rows)
        self._pages.append(page)
        return page

    def page(self, page_id: int) -> ColumnPage:
        return self._pages[page_id]

    def pages(self) -> List[ColumnPage]:
        return list(self._pages)

    @property
    def page_count(self) -> int:
        return len(self._pages)


class ColumnGroup:
    """All columnar state of one table: segments, dictionaries, liveness."""

    __slots__ = (
        "table",
        "page_rows",
        "segment_pages",
        "dictionaries",
        "segments",
        "_live",
        "rows_appended",
        "dead_rows",
        "irregular_rows",
        "raw_bytes",
        "_allocate",
        "_register",
    )

    def __init__(
        self,
        table: str,
        page_rows: int,
        segment_pages: int,
        allocate_segment_id: Callable[[], int],
        register_segment: Callable[["ColumnSegment"], None],
    ) -> None:
        self.table = table
        self.page_rows = page_rows
        self.segment_pages = segment_pages
        self.dictionaries: Dict[str, ColumnDictionary] = {}
        self.segments: List[ColumnSegment] = []
        #: doc_id → (segment_id, page_id, position) of its live row.
        self._live: Dict[str, Tuple[int, int, int]] = {}
        self.rows_appended = 0
        self.dead_rows = 0
        self.irregular_rows = 0
        #: Approximate decoded size of every appended value — the "what
        #: would the row-shaped batch have weighed" side of the ratio.
        self.raw_bytes = 0
        self._allocate = allocate_segment_id
        self._register = register_segment

    # ------------------------------------------------------------------
    def _open_page(self) -> ColumnPage:
        if self.segments:
            page = self.segments[-1].open_page()
            if page is not None:
                return page
        segment = ColumnSegment(self._allocate(), self.page_rows, self.segment_pages)
        self.segments.append(segment)
        self._register(segment)
        page = segment.open_page()
        assert page is not None
        return page

    def append(self, document: Document, address: PageAddress) -> None:
        """Add the live row for *document* (its row-page home = *address*)."""
        page = self._open_page()
        values = regular_row_values(document, self.table)
        if values is None:
            position = page.append_irregular(address, self.dictionaries)
            self.irregular_rows += 1
            self.raw_bytes += document.size_bytes()
        else:
            position, raw = page.append_regular(values, self.dictionaries)
            self.raw_bytes += raw
        self._live[document.doc_id] = (page.segment_id, page.page_id, position)
        self.rows_appended += 1

    def mark_dead(self, doc_id: str) -> bool:
        ref = self._live.pop(doc_id, None)
        if ref is None:
            return False
        segment_id, page_id, position = ref
        for segment in self.segments:
            if segment.segment_id == segment_id:
                segment.page(page_id).mark_dead(position)
                self.dead_rows += 1
                return True
        return False

    @property
    def live_rows(self) -> int:
        return len(self._live)

    # ------------------------------------------------------------------
    def encoded_bytes(self) -> int:
        """Current on-page size: vectors plus the shared dictionaries."""
        total = 0
        for segment in self.segments:
            for page in segment.pages():
                for name in page.column_names():
                    total += page.encoded_column(
                        name, self.dictionaries[name]
                    ).encoded_bytes()
        for dictionary in self.dictionaries.values():
            width = _code_width(len(dictionary))
            total += dictionary.raw_entry_bytes + width * len(dictionary)
        return total


class ColumnStoreStats:
    """Aggregate columnar counters of one store."""

    __slots__ = ("scans",)

    def __init__(self) -> None:
        self.scans = 0


class ColumnStore:
    """Per-table column groups maintained at commit time.

    The owning :class:`~repro.storage.store.DocumentStore` forwards every
    committed document here (:meth:`on_put`) and routes page fetches for
    column segments back (:meth:`page`/:meth:`page_count`), so columnar
    scans flow through the same buffer pool — and the same prefetcher —
    as row scans.
    """

    def __init__(
        self,
        allocate_segment_id: Callable[[], int],
        page_rows: int = DEFAULT_COLUMN_PAGE_ROWS,
        segment_pages: int = 64,
    ) -> None:
        if page_rows < 1:
            raise ValueError("column pages need at least one row")
        self._groups: Dict[str, ColumnGroup] = {}
        self._segments: Dict[int, ColumnSegment] = {}
        #: doc_id → table of its live columnar row (dead-marking needs to
        #: find the old group even when the new version changed tables).
        self._owner: Dict[str, str] = {}
        self._allocate = allocate_segment_id
        self.page_rows = page_rows
        self.segment_pages = segment_pages
        self.stats = ColumnStoreStats()

    # ------------------------------------------------------------------
    # physical routing (for the store's buffer-pool callbacks)
    # ------------------------------------------------------------------
    def owns_segment(self, segment_id: int) -> bool:
        return segment_id in self._segments

    def page(self, segment_id: int, page_id: int) -> ColumnPage:
        return self._segments[segment_id].page(page_id)

    def page_count(self, segment_id: int) -> int:
        return self._segments[segment_id].page_count

    def _register_segment(self, segment: ColumnSegment) -> None:
        self._segments[segment.segment_id] = segment

    # ------------------------------------------------------------------
    # commit-time maintenance
    # ------------------------------------------------------------------
    def on_put(self, document: Document, address: PageAddress) -> None:
        """Maintain columnar state for one committed version.

        Any prior live row of this doc_id dies (supersede / tombstone /
        table change all mark in place); a live, table-tagged version
        appends its new row at the tail — the same position the row
        path's insertion-order scan would see it at.
        """
        doc_id = document.doc_id
        prior_table = self._owner.pop(doc_id, None)
        if prior_table is not None:
            group = self._groups.get(prior_table)
            if group is not None:
                group.mark_dead(doc_id)
        if document.is_tombstone:
            return
        table = document.metadata.get("table")
        if not table or not isinstance(table, str):
            return
        group = self._groups.get(table)
        if group is None:
            group = ColumnGroup(
                table,
                self.page_rows,
                self.segment_pages,
                self._allocate,
                self._register_segment,
            )
            self._groups[table] = group
        group.append(document, address)
        self._owner[doc_id] = table

    # ------------------------------------------------------------------
    # scans
    # ------------------------------------------------------------------
    def group(self, table: str) -> Optional[ColumnGroup]:
        return self._groups.get(table)

    def tables(self) -> List[str]:
        return sorted(self._groups)

    def scan_view_batches(
        self,
        view,
        fetch_page: Callable[[int, int], ColumnPage],
        read_document: Callable[[PageAddress], Document],
        lookup,
        batch_size: int = DEFAULT_COLUMN_PAGE_ROWS,
    ) -> Iterator["Any"]:
        """ColumnBatches for *view* straight off the encoded pages.

        The caller guarantees :func:`is_columnar_view`.  Pages are read
        through *fetch_page* (the store passes its buffer pool with a
        SEQUENTIAL hint), so caching, prefetch, and page observers all
        see this traffic.  Fully-regular pages yield batches whose
        columns are still-encoded :class:`EncodedColumn` vectors;
        a page holding irregular rows decodes and projects those rows
        through ``view.project`` in place, preserving order.
        """
        from repro.exec.batch import ColumnBatch  # lazy: avoids import cycle

        names = [c.name for c in view.columns]
        group = self._groups.get(view.table)
        if group is None:
            return
        for segment in group.segments:
            for page_id in range(segment.page_count):
                page = fetch_page(segment.segment_id, page_id)
                live = page.live_positions()
                if not live:
                    continue
                irregular = page.live_irregular()
                if irregular:
                    batch = self._decoded_batch(
                        ColumnBatch, page, group, names, live, irregular,
                        read_document, lookup, view,
                    )
                else:
                    batch = self._encoded_batch(
                        ColumnBatch, page, group, names, live
                    )
                yield from _sliced(ColumnBatch, batch, batch_size)

    def _encoded_batch(self, ColumnBatch, page, group, names, live):
        all_live = len(live) == page.row_count
        columns: Dict[str, Any] = {}
        for name in names:
            if not page.has_column(name):
                columns[name] = [None] * len(live)
                continue
            encoded = page.encoded_column(name, group.dictionaries[name])
            columns[name] = encoded if all_live else encoded.take(live)
        return ColumnBatch(columns, len(live))

    def _decoded_batch(
        self, ColumnBatch, page, group, names, live, irregular,
        read_document, lookup, view,
    ):
        columns: Dict[str, List[Any]] = {}
        for name in names:
            if page.has_column(name):
                table = group.dictionaries[name].values()
                codes = page.raw_codes(name)
                columns[name] = [table[codes[i]] for i in live]
            else:
                columns[name] = [None] * len(live)
        for out_index, position in enumerate(live):
            address = irregular.get(position)
            if address is None:
                continue
            document = read_document(address)
            row = view.project(document, lookup)
            for name in names:
                columns[name][out_index] = row.get(name) if row else None
        return ColumnBatch(columns, len(live))


def _sliced(ColumnBatch, batch, batch_size: int):
    if batch.length <= batch_size:
        yield batch
        return
    for start in range(0, batch.length, batch_size):
        end = min(start + batch_size, batch.length)
        yield ColumnBatch(
            {name: values[start:end] for name, values in batch.columns.items()},
            end - start,
        )
