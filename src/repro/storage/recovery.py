"""Continuous replication and point-in-time recovery (Section 3.4).

The paper promises autonomic reliability: replicas placed by data class
and re-replicated after failures "with no administrator involvement".
The placement layer (:mod:`repro.storage.replication`) decides *where*
copies belong; this module makes the promise physical — every group
commit a data node takes is shipped, as one :class:`Shipment`, to a
standby log hosted on a cluster node, so a crashed node can be rebuilt
as ``snapshot + log[lsn..]`` replay instead of a full rescan.

The shipping unit is the group commit: ``DocumentStore`` stamps a
monotone ``commit_lsn`` per batch, the invalidation bus publishes the
batch as a :class:`~repro.cache.bus.ChangeSet`, and the
:class:`ContinuousReplicator` subscribed to that stream attributes each
change to the data node that committed it and ships the node's delta
over the simulated network.  Shipments crossing a partitioned link are
buffered in order and retried — never silently dropped — first through
the seeded :class:`~repro.chaos.retry.RetryPolicy`, then again at every
later publication and at explicit ``flush_pending()`` calls.

Recovery metrics follow the classic definitions (docs/RECOVERY.md):
RPO is committed documents lost (must be zero for anything the standby
acknowledged), RTO is simulated time from the crash until queries serve
undegraded again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.chaos.retry import RetryError, RetryPolicy, call_with_retries
from repro.cluster.network import PartitionError
from repro.model.document import Document
from repro.util import stable_hash, validate_positive


class RecoveryError(RuntimeError):
    """A restore could not prove the rebuilt state matches the replicas."""


@dataclass(frozen=True)
class RecoveryConfig:
    """Knobs for the continuous replicator.

    snapshot_every:
        Group commits between standby snapshots per data node.  A
        snapshot replaces the prefix of the standby log at or below its
        LSN, bounding replay work to ``snapshot + log[lsn..]``.
    shipment_overhead_bytes:
        Fixed framing cost charged per shipment on the wire.
    """

    enabled: bool = True
    snapshot_every: int = 32
    shipment_overhead_bytes: int = 64

    def __post_init__(self) -> None:
        validate_positive(
            "RecoveryConfig",
            snapshot_every=self.snapshot_every,
            shipment_overhead_bytes=self.shipment_overhead_bytes,
        )


@dataclass(frozen=True)
class Shipment:
    """One unit on the wire: a group commit's delta, or a full snapshot.

    ``lsn`` is the shipping store's ``commit_lsn`` at publication time;
    ``kind`` is ``"commit"`` or ``"snapshot"``.  Documents arrive in
    commit order (snapshots: chain by chain, oldest version first).
    """

    node_id: str
    lsn: int
    kind: str
    documents: Tuple[Document, ...]
    size_bytes: int


@dataclass
class StandbyLog:
    """A data node's recovery state, hosted on a cluster node.

    Replay state is ``snapshot`` (full chains as of ``snapshot_lsn``)
    followed by ``records`` in LSN order — exactly the
    ``snapshot + log[lsn..]`` the paper-scale recovery path needs.
    """

    node_id: str
    standby_id: str
    snapshot_lsn: int = 0
    snapshot: Tuple[Document, ...] = ()
    records: List[Shipment] = field(default_factory=list)
    applied_lsn: int = 0
    bytes_received: int = 0
    snapshots_applied: int = 0

    def apply(self, shipment: Shipment) -> bool:
        """Apply one delivered shipment; returns False for duplicates."""
        if shipment.kind == "snapshot":
            self.snapshot = shipment.documents
            self.snapshot_lsn = shipment.lsn
            self.records = [r for r in self.records if r.lsn > shipment.lsn]
            self.applied_lsn = max(self.applied_lsn, shipment.lsn)
            self.snapshots_applied += 1
        else:
            if shipment.lsn <= self.applied_lsn:
                return False  # duplicate delivery (a stale buffered copy)
            self.records.append(shipment)
            self.applied_lsn = shipment.lsn
        self.bytes_received += shipment.size_bytes
        return True

    def replay_documents(self) -> Iterator[Document]:
        """Every version needed to rebuild the node, in replay order."""
        yield from self.snapshot
        for record in self.records:
            yield from record.documents

    def restore_bytes(self) -> int:
        """Bytes that cross the wire when this log restores its node."""
        total = sum(d.size_bytes() for d in self.snapshot)
        total += sum(r.size_bytes for r in self.records)
        return total


@dataclass
class ReplicatorStats:
    shipments: int = 0
    shipped_bytes: int = 0
    snapshots: int = 0
    retries: int = 0
    buffered: int = 0
    dropped_duplicates: int = 0
    replays: int = 0
    replayed_versions: int = 0
    restores: int = 0


@dataclass(frozen=True)
class RestoreReport:
    """What one :meth:`Impliance.restore` rebuilt and proved."""

    node_id: str
    chains: int
    versions_replayed: int
    versions_caught_up: int
    records_replayed: int
    snapshot_lsn: int
    verified_chains: int
    unmatched_chains: int
    repairs: int
    transfer_ms: float
    started_ms: float
    finish_ms: float


class ContinuousReplicator:
    """Ships every group commit to a per-data-node standby log.

    Subscribed to the invalidation bus's delta stream
    (:meth:`attach_to_bus`), so the shipping unit is exactly the unit of
    publication: one :class:`ChangeSet` per group commit (the ingest
    pipeline's coalescing window merges a multi-node batch into one
    publication, which this class splits back per owning node — each
    node's share is that node's group commit).
    """

    def __init__(
        self,
        cluster,
        config: Optional[RecoveryConfig] = None,
        telemetry=None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.cluster = cluster
        self.config = config if config is not None else RecoveryConfig()
        self.telemetry = telemetry
        #: Seeded like the chaos layer's policies; the chaos controller
        #: swaps in the plan's own policy so runs replay exactly.
        self.retry_policy = retry_policy or RetryPolicy(seed="recovery")
        self.stats = ReplicatorStats()
        self._standbys: Dict[str, StandbyLog] = {}
        self._pending: List[Shipment] = []
        self._since_snapshot: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach_to_bus(self, bus) -> None:
        bus.subscribe_deltas(self.on_change_set)

    def standby(self, node_id: str) -> StandbyLog:
        """The node's standby log.  While the replicator is enabled a
        node that never committed anything still gets one (empty) on
        demand — it restores to an empty store rather than failing;
        with replication disabled there is nothing to restore from."""
        standby = self._standbys.get(node_id)
        if standby is None and self.config.enabled:
            return self._standby_for(node_id)
        if standby is None:
            raise LookupError(f"no standby log for {node_id!r}")
        return standby

    def _standby_for(self, node_id: str) -> StandbyLog:
        standby = self._standbys.get(node_id)
        if standby is None:
            # Deterministic host assignment: hash the data node over the
            # (stable) cluster-node id list, dead hosts included — a
            # standby must not migrate just because its host blinked.
            from repro.cluster.node import NodeKind

            hosts = [
                n.node_id
                for n in self.cluster.nodes_of(NodeKind.CLUSTER, alive_only=False)
            ]
            if not hosts:
                raise RuntimeError("no cluster nodes to host standby logs")
            host = hosts[stable_hash(f"standby:{node_id}", len(hosts))]
            standby = StandbyLog(node_id=node_id, standby_id=host)
            self._standbys[node_id] = standby
        return standby

    # ------------------------------------------------------------------
    # the shipping path
    # ------------------------------------------------------------------
    def on_change_set(self, changeset) -> None:
        """One publication arrived: split it per owning data node and
        ship each node's share as one commit record."""
        if not self.config.enabled:
            return
        # Earlier buffered shipments go first so per-node order holds.
        if self._pending:
            self.flush_pending()
        groups: Dict[str, List[Document]] = {}
        stores: Dict[str, object] = {}
        for change in changeset:
            owner = self._owner_of(change.document)
            if owner is None:
                continue  # e.g. a store detached mid-restore
            groups.setdefault(owner.node_id, []).append(change.document)
            stores[owner.node_id] = owner.store
        for node_id in sorted(groups):
            store = stores[node_id]
            documents = tuple(groups[node_id])
            self._ship(
                Shipment(
                    node_id=node_id,
                    lsn=store.commit_lsn,
                    kind="commit",
                    documents=documents,
                    size_bytes=self._payload_bytes(documents),
                )
            )
            self._maybe_snapshot(node_id, store)

    def _owner_of(self, document: Document):
        """The live data node whose store committed *document*."""
        for node in self.cluster.data_nodes:
            if node.store is not None and node.store.has_version(
                document.doc_id, document.version
            ):
                return node
        return None

    def _payload_bytes(self, documents: Tuple[Document, ...]) -> int:
        return (
            sum(d.size_bytes() for d in documents)
            + self.config.shipment_overhead_bytes
        )

    def _ship(self, shipment: Shipment) -> bool:
        """Ship now unless earlier traffic for the node is still stuck
        (per-node order must hold: a record never overtakes another)."""
        if any(p.node_id == shipment.node_id for p in self._pending):
            self._buffer(shipment)
            return False
        return self._transfer(shipment) or self._buffer(shipment)

    def _buffer(self, shipment: Shipment) -> bool:
        self._pending.append(shipment)
        self.stats.buffered += 1
        if self.telemetry is not None:
            self.telemetry.inc("recovery.buffered")
        return False

    def _transfer(self, shipment: Shipment) -> bool:
        """Move one shipment over the wire; True when it was applied."""
        standby = self._standby_for(shipment.node_id)
        network = self.cluster.network
        try:
            _, _, attempts = call_with_retries(
                lambda _attempt: network.transfer(
                    shipment.size_bytes, shipment.node_id, standby.standby_id
                ),
                self.retry_policy,
                retry_on=(PartitionError,),
                telemetry=self.telemetry,
                label="recovery.ship",
            )
        except RetryError:
            return False
        self.stats.retries += attempts - 1
        if not standby.apply(shipment):
            self.stats.dropped_duplicates += 1
            return True  # delivered; the standby already had it
        self.stats.shipments += 1
        self.stats.shipped_bytes += shipment.size_bytes
        if shipment.kind == "snapshot":
            self.stats.snapshots += 1
        if self.telemetry is not None:
            self.telemetry.inc("recovery.shipments")
            self.telemetry.inc("recovery.shipped_bytes", shipment.size_bytes)
            if shipment.kind == "snapshot":
                self.telemetry.inc("recovery.snapshots")
        return True

    def flush_pending(self) -> int:
        """Retry every buffered shipment in order; returns how many got
        through.  Shipments behind a still-blocked one for the same node
        stay queued so the standby applies records in LSN order."""
        pending, self._pending = self._pending, []
        blocked: set = set()
        shipped = 0
        for shipment in pending:
            if shipment.node_id in blocked or not self._transfer(shipment):
                blocked.add(shipment.node_id)
                self._pending.append(shipment)
            else:
                shipped += 1
        return shipped

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def _maybe_snapshot(self, node_id: str, store) -> None:
        count = self._since_snapshot.get(node_id, 0) + 1
        if count >= self.config.snapshot_every:
            self.take_snapshot(node_id)
        else:
            self._since_snapshot[node_id] = count

    def take_snapshot(self, node_id: str) -> Shipment:
        """Serialize the node's full chain state (every version, chain by
        chain, tombstones included) and ship it; the standby truncates
        the records the snapshot subsumes."""
        node = self.cluster.node(node_id)
        if node.store is None:
            raise LookupError(f"{node_id} has no document store")
        store = node.store
        documents = tuple(
            doc for doc_id in store.doc_ids() for doc in store.history(doc_id)
        )
        shipment = Shipment(
            node_id=node_id,
            lsn=store.commit_lsn,
            kind="snapshot",
            documents=documents,
            size_bytes=self._payload_bytes(documents),
        )
        self._since_snapshot[node_id] = 0
        self._ship(shipment)
        return shipment

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def replay_into(self, store, node_id: str) -> Tuple[int, int, int]:
        """Rebuild *node_id*'s state into a fresh *store*.

        Returns ``(versions replayed, log records replayed,
        snapshot lsn)``.  The caller attaches listeners only afterwards,
        so replay puts do not republish or re-ship.
        """
        standby = self.standby(node_id)
        replayed = 0
        for document in standby.replay_documents():
            if document.ingest_ts > 0:
                store.clock.observe(document.ingest_ts)
            store.put(document)
            replayed += 1
        self.stats.replays += 1
        self.stats.replayed_versions += replayed
        if self.telemetry is not None:
            self.telemetry.inc("recovery.replays")
            self.telemetry.inc("recovery.replayed_versions", replayed)
        return replayed, len(standby.records), standby.snapshot_lsn

    def resync(self, node_id: str) -> None:
        """After a restore: the rebuilt store restarts its LSN counter,
        so the old log no longer lines up — drop buffered traffic for
        the node, reset its standby, and take a fresh base snapshot."""
        self._pending = [p for p in self._pending if p.node_id != node_id]
        standby = self._standbys.get(node_id)
        if standby is not None:
            self._standbys[node_id] = StandbyLog(
                node_id=node_id, standby_id=standby.standby_id
            )
        self.take_snapshot(node_id)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self) -> Dict[str, object]:
        """The ``stats()["recovery"]`` payload: replicator counters plus
        per-node LSN lag, snapshot age, and standby log depth."""
        from repro.cluster.node import NodeKind

        nodes: Dict[str, Dict[str, object]] = {}
        for node in self.cluster.nodes_of(NodeKind.DATA, alive_only=False):
            if node.store is None:
                continue
            standby = self._standbys.get(node.node_id)
            shipped = standby.applied_lsn if standby else 0
            snapshot_lsn = standby.snapshot_lsn if standby else 0
            lag = node.store.commit_lsn - shipped
            nodes[node.node_id] = {
                "commit_lsn": node.store.commit_lsn,
                "shipped_lsn": shipped,
                "lag": lag,
                "snapshot_lsn": snapshot_lsn,
                "snapshot_age": node.store.commit_lsn - snapshot_lsn,
                "log_records": len(standby.records) if standby else 0,
                "standby": standby.standby_id if standby else None,
            }
            if self.telemetry is not None:
                self.telemetry.set_gauge(f"recovery.lag.{node.node_id}", lag)
        return {
            "enabled": self.config.enabled,
            "shipments": self.stats.shipments,
            "shipped_bytes": self.stats.shipped_bytes,
            "snapshots": self.stats.snapshots,
            "retries": self.stats.retries,
            "buffered": self.stats.buffered,
            "pending": len(self._pending),
            "replays": self.stats.replays,
            "replayed_versions": self.stats.replayed_versions,
            "restores": self.stats.restores,
            "nodes": nodes,
        }
