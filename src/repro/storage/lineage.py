"""Lineage tracing (paper Section 4, citing practical lineage tracing).

"Impliance should be able to trace the lineage of a piece of data..."

Lineage in Impliance is already latent in the model: every annotation and
derived document names its sources in ``refs``, and every version chain
records when each state existed. This module materializes that into a
queryable provenance index: where did this document come from
(:meth:`LineageIndex.ancestry`), what was derived from it
(:meth:`LineageIndex.derivatives`), and the full derivation trace with
version history (:meth:`LineageIndex.trace`).
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from repro.model.document import Document


@dataclass
class LineageNode:
    """One document's entry in a trace."""

    doc_id: str
    kind: str
    version: int
    sources: Tuple[str, ...]

    @classmethod
    def of(cls, document: Document) -> "LineageNode":
        return cls(
            doc_id=document.doc_id,
            kind=document.kind.value,
            version=document.version,
            sources=document.refs,
        )


@dataclass
class LineageTrace:
    """A provenance sub-DAG rooted at one document."""

    root: str
    nodes: Dict[str, LineageNode] = field(default_factory=dict)
    edges: List[Tuple[str, str]] = field(default_factory=list)  # (derived, source)

    @property
    def depth(self) -> int:
        """Longest derivation chain in the trace."""
        memo: Dict[str, int] = {}

        def walk(doc_id: str, active: Set[str]) -> int:
            if doc_id in memo:
                return memo[doc_id]
            if doc_id in active:
                return 0  # defensive: cycles cannot normally occur
            active.add(doc_id)
            node = self.nodes.get(doc_id)
            children = [s for d, s in self.edges if d == doc_id]
            result = 0 if not children else 1 + max(walk(c, active) for c in children)
            active.discard(doc_id)
            memo[doc_id] = result
            return result

        return walk(self.root, set())

    def base_sources(self) -> List[str]:
        """The original ingested documents everything here derives from."""
        derived = {d for d, _ in self.edges}
        return sorted(n for n in self.nodes if n not in derived or not self.nodes[n].sources)


class LineageIndex:
    """Forward (refs) and reverse (derivatives) provenance over a corpus."""

    def __init__(self, documents: Iterable[Document] = ()) -> None:
        self._docs: Dict[str, Document] = {}
        self._derivatives: Dict[str, Set[str]] = defaultdict(set)
        for document in documents:
            self.record(document)

    def record(self, document: Document) -> None:
        """Index one document (latest version replaces earlier state)."""
        previous = self._docs.get(document.doc_id)
        if previous is not None and previous.version >= document.version:
            return
        if previous is not None:
            for source in previous.refs:
                self._derivatives[source].discard(document.doc_id)
        self._docs[document.doc_id] = document
        for source in document.refs:
            self._derivatives[source].add(document.doc_id)

    # ------------------------------------------------------------------
    def sources_of(self, doc_id: str) -> List[str]:
        """Immediate provenance: what this document was derived from."""
        document = self._docs.get(doc_id)
        return sorted(document.refs) if document else []

    def derivatives(self, doc_id: str) -> List[str]:
        """Immediate impact: what was derived from this document."""
        return sorted(self._derivatives.get(doc_id, ()))

    def ancestry(self, doc_id: str) -> Set[str]:
        """Transitive sources (the document's full provenance)."""
        seen: Set[str] = set()
        frontier = deque(self.sources_of(doc_id))
        while frontier:
            current = frontier.popleft()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.sources_of(current))
        return seen

    def impact(self, doc_id: str) -> Set[str]:
        """Transitive derivatives — everything that must be re-derived if
        this document turns out to be wrong (the recall scenario)."""
        seen: Set[str] = set()
        frontier = deque(self.derivatives(doc_id))
        while frontier:
            current = frontier.popleft()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.derivatives(current))
        return seen

    def trace(self, doc_id: str) -> LineageTrace:
        """The provenance sub-DAG rooted at *doc_id*."""
        trace = LineageTrace(root=doc_id)
        frontier = deque([doc_id])
        while frontier:
            current = frontier.popleft()
            if current in trace.nodes:
                continue
            document = self._docs.get(current)
            if document is None:
                trace.nodes[current] = LineageNode(current, "unknown", 0, ())
                continue
            trace.nodes[current] = LineageNode.of(document)
            for source in document.refs:
                trace.edges.append((current, source))
                frontier.append(source)
        return trace

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._docs

    def __len__(self) -> int:
        return len(self._docs)
