"""Branching and merging of versions (paper Section 4).

"We are still investigating whether we should only support a simple
sequential versioning primitive and let various other versioning schemes
be built on top of it, or directly support more complex ones, allowing
branching and merging of versions, as in typical source-code management
systems."

This module takes the first option — the one the storage engine actually
implements — and builds the second on top of it: a branch is a named,
independent document (``doc_id @ branch``) whose chain starts from a
snapshot of some version of the trunk; a merge three-way-combines content
trees and appends the result to the target branch. Nothing below the
sequential :class:`~repro.storage.versions.VersionChain` changes, which
is precisely the paper's "built on top of it" hypothesis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.model.document import Document
from repro.storage.store import DocumentStore

TRUNK = "main"


class MergeConflict(Exception):
    """Both branches changed the same path since their common base."""

    def __init__(self, paths: List[Tuple[str, ...]]) -> None:
        self.paths = paths
        rendered = ", ".join("/".join(p) for p in paths)
        super().__init__(f"conflicting changes at: {rendered}")


@dataclass(frozen=True)
class BranchRef:
    """A branch head pointer: which physical doc_id and base it tracks."""

    logical_id: str
    branch: str
    physical_id: str
    base_branch: Optional[str]
    base_version: Optional[int]


def _branch_doc_id(logical_id: str, branch: str) -> str:
    return logical_id if branch == TRUNK else f"{logical_id}@{branch}"


def _flatten(tree: Any, prefix: Tuple[str, ...] = ()) -> Dict[Tuple[str, ...], Any]:
    """Dict-only flattening used for three-way merge (lists are atomic)."""
    if isinstance(tree, dict):
        flat: Dict[Tuple[str, ...], Any] = {}
        for key, child in tree.items():
            flat.update(_flatten(child, prefix + (str(key),)))
        if not tree:
            flat[prefix] = {}
        return flat
    return {prefix: tree}


def _unflatten(flat: Dict[Tuple[str, ...], Any]) -> Any:
    if list(flat.keys()) == [()]:
        return flat[()]
    root: Dict[str, Any] = {}
    for path, value in sorted(flat.items()):
        if not path:
            continue
        node = root
        for key in path[:-1]:
            node = node.setdefault(key, {})
        node[path[-1]] = value
    return root


def three_way_merge(base: Any, ours: Any, theirs: Any) -> Any:
    """Per-path three-way merge of content trees.

    A path changed on one side takes that side's value; changed on both
    sides to different values raises :class:`MergeConflict`; deletions
    are modeled as paths missing from a side.
    """
    base_flat, ours_flat, theirs_flat = _flatten(base), _flatten(ours), _flatten(theirs)
    all_paths = set(base_flat) | set(ours_flat) | set(theirs_flat)
    merged: Dict[Tuple[str, ...], Any] = {}
    conflicts: List[Tuple[str, ...]] = []
    _MISSING = object()
    for path in sorted(all_paths):
        base_v = base_flat.get(path, _MISSING)
        ours_v = ours_flat.get(path, _MISSING)
        theirs_v = theirs_flat.get(path, _MISSING)
        ours_changed = ours_v is not base_v and ours_v != base_v
        theirs_changed = theirs_v is not base_v and theirs_v != base_v
        if ours_changed and theirs_changed and ours_v != theirs_v:
            conflicts.append(path)
            continue
        winner = ours_v if ours_changed else theirs_v if theirs_changed else base_v
        if winner is not _MISSING:
            merged[path] = winner
    if conflicts:
        raise MergeConflict(conflicts)
    return _unflatten(merged)


class BranchManager:
    """Named branches over a :class:`DocumentStore`'s sequential chains."""

    def __init__(self, store: DocumentStore) -> None:
        self.store = store
        self._refs: Dict[Tuple[str, str], BranchRef] = {}

    # ------------------------------------------------------------------
    def _require_doc(self, logical_id: str, branch: str) -> Document:
        physical = _branch_doc_id(logical_id, branch)
        if not self.store.contains(physical):
            raise LookupError(f"{logical_id!r} has no branch {branch!r}")
        return self.store.get(physical)

    def branches_of(self, logical_id: str) -> List[str]:
        found = [TRUNK] if self.store.contains(logical_id) else []
        found += sorted(
            ref.branch for (lid, _), ref in self._refs.items() if lid == logical_id
        )
        return found

    def head(self, logical_id: str, branch: str = TRUNK) -> Document:
        return self._require_doc(logical_id, branch)

    # ------------------------------------------------------------------
    def create_branch(
        self,
        logical_id: str,
        branch: str,
        from_branch: str = TRUNK,
        at_version: Optional[int] = None,
    ) -> Document:
        """Fork *branch* from a version of *from_branch*."""
        if branch == TRUNK:
            raise ValueError("the trunk always exists; pick another name")
        if (logical_id, branch) in self._refs:
            raise ValueError(f"branch {branch!r} of {logical_id!r} already exists")
        source = self._require_doc(logical_id, from_branch)
        base_version = at_version if at_version is not None else source.version
        base = self.store.get_version(
            _branch_doc_id(logical_id, from_branch), base_version
        )
        forked = Document(
            doc_id=_branch_doc_id(logical_id, branch),
            content=base.content,
            kind=base.kind,
            source_format=base.source_format,
            metadata={**base.metadata, "branch": branch, "branched_from": from_branch,
                      "branch_base_version": base_version},
            refs=(base.doc_id,),
        )
        stored = self.store.put(forked)
        self._refs[(logical_id, branch)] = BranchRef(
            logical_id, branch, stored.doc_id, from_branch, base_version
        )
        return stored

    def commit(self, logical_id: str, branch: str, content: Any) -> Document:
        """Append a new version to a branch (sequential primitive below)."""
        physical = _branch_doc_id(logical_id, branch)
        return self.store.update(physical, content)

    # ------------------------------------------------------------------
    def merge(
        self,
        logical_id: str,
        source_branch: str,
        target_branch: str = TRUNK,
    ) -> Document:
        """Three-way merge source into target; commits the result to the
        target branch. Raises :class:`MergeConflict` when both sides
        changed the same path."""
        ref = self._refs.get((logical_id, source_branch))
        if ref is None:
            raise LookupError(f"{logical_id!r} has no branch {source_branch!r}")
        if ref.base_branch != target_branch:
            raise ValueError(
                f"branch {source_branch!r} forked from {ref.base_branch!r}, "
                f"not {target_branch!r}; merge there first"
            )
        base = self.store.get_version(
            _branch_doc_id(logical_id, target_branch), ref.base_version
        )
        ours = self._require_doc(logical_id, target_branch)
        theirs = self._require_doc(logical_id, source_branch)
        merged_content = three_way_merge(base.content, ours.content, theirs.content)
        return self.commit(logical_id, target_branch, merged_content)

    def diverged(self, logical_id: str, branch: str) -> bool:
        """Has either side moved since the fork point?"""
        ref = self._refs.get((logical_id, branch))
        if ref is None:
            raise LookupError(f"{logical_id!r} has no branch {branch!r}")
        trunk_head = self._require_doc(logical_id, ref.base_branch or TRUNK)
        branch_head = self._require_doc(logical_id, branch)
        return trunk_head.version != ref.base_version or branch_head.version > 1
