"""The document store: segments + version chains + buffer pool.

This is the persistence service a single data node runs.  Documents are
appended into paged segments (never updated in place), every version is
retained in a chain, and all reads flow through the buffer pool so the
prefetching and piggybacked-discovery machinery sees real page traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.model.document import Document
from repro.storage.bufferpool import AccessHint, BufferPool, Prefetcher
from repro.storage.pages import (
    DEFAULT_PAGE_BYTES,
    DEFAULT_SEGMENT_PAGES,
    Page,
    PageAddress,
    Segment,
)
from repro.storage.versions import VersionChain, VersionIndex
from repro.util import LogicalClock


@dataclass
class StoreStats:
    """Aggregate counters of one store instance."""

    puts: int = 0
    gets: int = 0
    scans: int = 0
    bytes_stored: int = 0


class DocumentStore:
    """Append-only, versioned document storage with paged layout.

    Parameters
    ----------
    clock:
        Logical clock supplying ingest timestamps; a private clock is
        created when none is shared in.
    page_bytes / segment_pages:
        Physical layout parameters.
    buffer_capacity:
        Page frames in the buffer pool.
    prefetcher:
        Read-ahead policy (defaults to none; the executor installs a
        hinted prefetcher).
    """

    def __init__(
        self,
        clock: Optional[LogicalClock] = None,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        segment_pages: int = DEFAULT_SEGMENT_PAGES,
        buffer_capacity: int = 128,
        prefetcher: Optional[Prefetcher] = None,
    ) -> None:
        self.clock = clock if clock is not None else LogicalClock()
        self.page_bytes = page_bytes
        self.segment_pages = segment_pages
        self._segments: Dict[int, Segment] = {}
        self._open_segment_id: Optional[int] = None
        self._next_segment_id = 0
        self.versions = VersionIndex()
        self._addresses: Dict[Tuple[str, int], PageAddress] = {}
        self.stats = StoreStats()
        self.buffer_pool = BufferPool(
            capacity_pages=buffer_capacity,
            fetch=self._fetch_page,
            segment_pages=self._segment_page_count,
            prefetcher=prefetcher,
        )
        #: Hooks called after every successful put; indexes subscribe here
        #: so maintenance is incremental (Section 3.3 last paragraph).
        self.put_listeners: List[Callable[[Document, PageAddress], None]] = []
        #: Hooks called when a segment seals; the replica manager places
        #: sealed segments.
        self.seal_listeners: List[Callable[[int], None]] = []

    # ------------------------------------------------------------------
    # physical plumbing
    # ------------------------------------------------------------------
    def _fetch_page(self, segment_id: int, page_id: int) -> Page:
        return self._segments[segment_id].page(page_id)

    def _segment_page_count(self, segment_id: int) -> int:
        return self._segments[segment_id].page_count

    def _open_segment(self) -> Segment:
        if self._open_segment_id is not None:
            return self._segments[self._open_segment_id]
        segment = Segment(
            segment_id=self._next_segment_id,
            page_bytes=self.page_bytes,
            max_pages=self.segment_pages,
        )
        self._segments[segment.segment_id] = segment
        self._open_segment_id = segment.segment_id
        self._next_segment_id += 1
        return segment

    def _seal_open_segment(self) -> None:
        sealed_id = self._open_segment_id
        self._open_segment_id = None
        if sealed_id is not None:
            for listener in self.seal_listeners:
                listener(sealed_id)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def put(self, document: Document) -> Document:
        """Persist *document*; returns the stored (timestamped) version.

        A zero ``ingest_ts`` is replaced by the next clock tick.  Version
        numbering is validated against the chain — callers create new
        versions with :meth:`Document.new_version`, never by mutating.
        """
        if document.ingest_ts == 0:
            document = Document(
                doc_id=document.doc_id,
                content=document.content,
                version=document.version,
                kind=document.kind,
                source_format=document.source_format,
                metadata=document.metadata,
                refs=document.refs,
                ingest_ts=self.clock.tick(),
            )
        self.versions.record(document)

        segment = self._open_segment()
        address = segment.append(document)
        if address is None:
            self._seal_open_segment()
            segment = self._open_segment()
            address = segment.append(document)
            if address is None:
                raise RuntimeError("fresh segment refused an append")
        self._addresses[document.vid] = address
        self.stats.puts += 1
        self.stats.bytes_stored += document.size_bytes()
        for listener in self.put_listeners:
            listener(document, address)
        return document

    def update(self, doc_id: str, content, metadata: Optional[dict] = None) -> Document:
        """Convenience: derive and persist the next version of *doc_id*."""
        head = self.versions.head(doc_id)
        return self.put(head.new_version(content, metadata))

    def import_chain(self, versions) -> int:
        """Adopt a full version chain from another store (re-homing after
        a node failure: the bytes arrive from a surviving replica).

        Versions must arrive oldest-first with their original ingest
        timestamps; the clock observes each so logical time stays
        consistent across the re-homed history.  Returns versions stored.
        """
        imported = 0
        for document in versions:
            if document.ingest_ts > 0:
                self.clock.observe(document.ingest_ts)
            self.put(document)
            imported += 1
        return imported

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def _read_at(self, address: PageAddress, hint: AccessHint) -> Document:
        page = self.buffer_pool.get(address.segment_id, address.page_id, hint)
        return page.read(address.slot)

    def get(self, doc_id: str, hint: AccessHint = AccessHint.RANDOM) -> Document:
        """Latest version of *doc_id* (LookupError when absent)."""
        head = self.versions.head(doc_id)
        self.stats.gets += 1
        return self._read_at(self._addresses[head.vid], hint)

    def get_version(self, doc_id: str, version: int) -> Document:
        doc = self.versions.chain(doc_id).get(version)
        self.stats.gets += 1
        return self._read_at(self._addresses[doc.vid], AccessHint.RANDOM)

    def as_of(self, doc_id: str, ts: int) -> Optional[Document]:
        """Snapshot read: latest version visible at logical time *ts*."""
        doc = self.versions.as_of(doc_id, ts)
        if doc is None:
            return None
        self.stats.gets += 1
        return self._read_at(self._addresses[doc.vid], AccessHint.RANDOM)

    def lookup(self, doc_id: str) -> Optional[Document]:
        """Latest version or ``None`` — the non-throwing form views use."""
        if doc_id not in self.versions:
            return None
        return self.get(doc_id)

    def contains(self, doc_id: str) -> bool:
        return doc_id in self.versions

    def history(self, doc_id: str) -> VersionChain:
        return self.versions.chain(doc_id)

    # ------------------------------------------------------------------
    # scans
    # ------------------------------------------------------------------
    def scan(self, latest_only: bool = True) -> Iterator[Document]:
        """Sequential scan of every stored document, through the pool.

        With ``latest_only`` (the default) superseded versions are
        skipped, so query processing sees current state while audits can
        still scan everything.

        Not itself a generator: the scan is *counted* at the call site,
        not at first iteration — deferred ``stats.scans`` accounting made
        the counter disagree with the number of scans callers issued.
        """
        self.stats.scans += 1
        return self._scan_documents(latest_only)

    def _scan_documents(self, latest_only: bool) -> Iterator[Document]:
        for segment_id in sorted(self._segments):
            segment = self._segments[segment_id]
            for page_id in range(segment.page_count):
                page = self.buffer_pool.get(segment_id, page_id, AccessHint.SEQUENTIAL)
                for document in page.documents():
                    if latest_only:
                        head = self.versions.head(document.doc_id)
                        if head.version != document.version:
                            continue
                    yield document

    def scan_batches(
        self, batch_size: int = 256, latest_only: bool = True
    ) -> Iterator[List[Document]]:
        """Sequential scan yielding documents in fixed-size batches.

        The vectorized execution path consumes scans batch-at-a-time;
        this is the storage end of that pipeline.  Page traffic and scan
        accounting are identical to :meth:`scan` — only the hand-off
        granularity changes.

        Validation is eager: a bad *batch_size* raises here, at the call
        site, not at first ``next()`` deep inside an operator pipeline
        (the wrapper-over-generator pattern :meth:`scan` also uses for
        its accounting).
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        return self._batched(self.scan(latest_only=latest_only), batch_size)

    @staticmethod
    def _batched(
        documents: Iterator[Document], batch_size: int
    ) -> Iterator[List[Document]]:
        batch: List[Document] = []
        for document in documents:
            batch.append(document)
            if len(batch) >= batch_size:
                yield batch
                batch = []
        if batch:
            yield batch

    def scan_addresses(self) -> Iterator[Tuple[PageAddress, Document]]:
        """Scan with physical addresses, for index builders."""
        for segment_id in sorted(self._segments):
            segment = self._segments[segment_id]
            for page_id in range(segment.page_count):
                page = self.buffer_pool.get(segment_id, page_id, AccessHint.SEQUENTIAL)
                for slot in range(page.doc_count):
                    yield PageAddress(segment_id, page_id, slot), page.read(slot)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def doc_count(self) -> int:
        """Distinct documents (not counting superseded versions)."""
        return len(self.versions)

    @property
    def version_count(self) -> int:
        return len(self._addresses)

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    def segment_ids(self) -> List[int]:
        return sorted(self._segments)

    def segment(self, segment_id: int) -> Segment:
        return self._segments[segment_id]

    def doc_ids(self) -> List[str]:
        return self.versions.doc_ids()
