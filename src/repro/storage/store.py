"""The document store: segments + version chains + buffer pool.

This is the persistence service a single data node runs.  Documents are
appended into paged segments (never updated in place), every version is
retained in a chain, and all reads flow through the buffer pool so the
prefetching and piggybacked-discovery machinery sees real page traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.model.document import Document
from repro.storage.bufferpool import AccessHint, BufferPool, Prefetcher
from repro.storage.columnstore import ColumnStore, is_columnar_view
from repro.storage.pages import (
    DEFAULT_PAGE_BYTES,
    DEFAULT_SEGMENT_PAGES,
    Page,
    PageAddress,
    Segment,
)
from repro.storage.versions import VersionChain, VersionConflictError, VersionIndex
from repro.util import LogicalClock


@dataclass
class StoreStats:
    """Aggregate counters of one store instance."""

    puts: int = 0
    gets: int = 0
    scans: int = 0
    bytes_stored: int = 0


class DocumentStore:
    """Append-only, versioned document storage with paged layout.

    Parameters
    ----------
    clock:
        Logical clock supplying ingest timestamps; a private clock is
        created when none is shared in.
    page_bytes / segment_pages:
        Physical layout parameters.
    buffer_capacity:
        Page frames in the buffer pool.
    prefetcher:
        Read-ahead policy (defaults to none; the executor installs a
        hinted prefetcher).
    """

    def __init__(
        self,
        clock: Optional[LogicalClock] = None,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        segment_pages: int = DEFAULT_SEGMENT_PAGES,
        buffer_capacity: int = 128,
        prefetcher: Optional[Prefetcher] = None,
    ) -> None:
        self.clock = clock if clock is not None else LogicalClock()
        self.page_bytes = page_bytes
        self.segment_pages = segment_pages
        self._segments: Dict[int, Segment] = {}
        self._open_segment_id: Optional[int] = None
        self._next_segment_id = 0
        self.versions = VersionIndex()
        self._addresses: Dict[Tuple[str, int], PageAddress] = {}
        self.stats = StoreStats()
        #: Monotone group-commit sequence number: bumped once per commit
        #: (``put`` is a commit of one; ``delete`` rides ``put``) before
        #: any listener fires, so a replication subscriber reading it
        #: during the announcement sees the LSN of the batch it carries.
        #: This is the recovery layer's replay cursor (docs/RECOVERY.md).
        self.commit_lsn = 0
        #: Documents whose head version is live (not tombstoned).
        #: Maintained incrementally at commit so the columnar scan path
        #: can charge the exact per-document scan cost the row path pays
        #: without re-walking the version index.
        self.live_doc_count = 0
        #: Commit-time columnar mirror of table-shaped documents; column
        #: segments draw ids from the same counter as row segments so
        #: buffer-pool keys never collide.
        self.column_store = ColumnStore(
            allocate_segment_id=self._allocate_segment_id,
            segment_pages=segment_pages,
        )
        self.buffer_pool = BufferPool(
            capacity_pages=buffer_capacity,
            fetch=self._fetch_page,
            segment_pages=self._segment_page_count,
            prefetcher=prefetcher,
        )
        #: Hooks called after every successful put; indexes subscribe here
        #: so maintenance is incremental (Section 3.3 last paragraph).
        #: Fired once per document, and only after the whole commit — a
        #: listener never observes a document whose page address is not
        #: durable yet.
        self.put_listeners: List[Callable[[Document, PageAddress], None]] = []
        #: Batch-granular hooks: one call per group commit with the whole
        #: ``[(document, address), ...]`` batch (a plain :meth:`put` is a
        #: batch of one).  Index maintenance and cache invalidation
        #: subscribe here so their work amortizes across the batch.
        self.batch_put_listeners: List[
            Callable[[List[Tuple[Document, PageAddress]]], None]
        ] = []
        #: Hooks called when a segment seals; the replica manager places
        #: sealed segments.
        self.seal_listeners: List[Callable[[int], None]] = []

    # ------------------------------------------------------------------
    # physical plumbing
    # ------------------------------------------------------------------
    def _allocate_segment_id(self) -> int:
        """Next id from the shared row/column segment-id space."""
        segment_id = self._next_segment_id
        self._next_segment_id += 1
        return segment_id

    def _fetch_page(self, segment_id: int, page_id: int):
        segment = self._segments.get(segment_id)
        if segment is not None:
            return segment.page(page_id)
        return self.column_store.page(segment_id, page_id)

    def _segment_page_count(self, segment_id: int) -> int:
        segment = self._segments.get(segment_id)
        if segment is not None:
            return segment.page_count
        return self.column_store.page_count(segment_id)

    def _open_segment(self) -> Segment:
        if self._open_segment_id is not None:
            return self._segments[self._open_segment_id]
        segment = Segment(
            segment_id=self._allocate_segment_id(),
            page_bytes=self.page_bytes,
            max_pages=self.segment_pages,
        )
        self._segments[segment.segment_id] = segment
        self._open_segment_id = segment.segment_id
        return segment

    def _seal_open_segment(self) -> None:
        sealed_id = self._open_segment_id
        self._open_segment_id = None
        if sealed_id is not None:
            for listener in self.seal_listeners:
                listener(sealed_id)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def put(self, document: Document) -> Document:
        """Persist *document*; returns the stored (timestamped) version.

        A zero ``ingest_ts`` is replaced by the next clock tick.  Version
        numbering is validated against the chain — callers create new
        versions with :meth:`Document.new_version`, never by mutating.

        Ordering matters: validate → append to a page → record the
        version → notify.  Validation happens *before* the physical
        append, and the version is recorded *after* it, so a crash (or
        injected fault) at any point leaves no phantom version whose
        address was never written — listeners only ever see durable
        documents.
        """
        if document.ingest_ts == 0:
            document = document.stamped(self.clock.tick())
        self.versions.validate(document)
        address = self._append_physical(document)
        self._commit_version(document, address)
        self.stats.puts += 1
        self.stats.bytes_stored += document.size_bytes()
        self._notify_put([(document, address)])
        return document

    def put_many(self, documents) -> List[Document]:
        """Group commit: persist *documents* as one batch, in order.

        Store state afterwards is exactly what sequential :meth:`put`
        calls would produce — same timestamps, same page layout, same
        version chains.  What changes is the announcement protocol: every
        document in the batch is physically durable (page address written,
        version recorded) before *any* listener fires, and the batch
        listeners fire exactly once for the whole group.

        The batch is admitted as a unit: every document is validated
        against the version chains (and against earlier documents in the
        same batch) before the first page is touched, so a conflicting
        batch is rejected wholesale rather than half-applied.
        """
        staged: List[Document] = []
        batch_next: Dict[str, int] = {}
        batch_last_ts: Dict[str, int] = {}
        for document in documents:
            if document.ingest_ts == 0:
                document = document.stamped(self.clock.tick())
            expected = batch_next.get(document.doc_id)
            if expected is None:
                self.versions.validate(document)
            else:
                if document.version != expected:
                    raise VersionConflictError(
                        f"{document.doc_id}: expected version {expected},"
                        f" got {document.version}"
                    )
                if document.ingest_ts < batch_last_ts[document.doc_id]:
                    raise VersionConflictError(
                        f"{document.doc_id}: version {document.version} has"
                        " ingest_ts earlier than its in-batch predecessor"
                    )
            batch_next[document.doc_id] = document.version + 1
            batch_last_ts[document.doc_id] = document.ingest_ts
            staged.append(document)
        if not staged:
            return []

        pairs: List[Tuple[Document, PageAddress]] = []
        total_bytes = 0
        for document in staged:
            address = self._append_physical(document)
            self._commit_version(document, address)
            total_bytes += document.size_bytes()
            pairs.append((document, address))
        self.stats.puts += len(staged)
        self.stats.bytes_stored += total_bytes
        self._notify_put(pairs)
        return staged

    def _commit_version(self, document: Document, address: PageAddress) -> None:
        """Record one durably-appended version: version chain, address
        map, live-document count, and the columnar mirror.

        Columnar maintenance happens here — at group-commit time, after
        the physical append — so the column pages only ever describe
        durable rows, and a put that fails validation or the page append
        never touches them.
        """
        doc_id = document.doc_id
        was_live = (
            doc_id in self.versions and not self.versions.head(doc_id).is_tombstone
        )
        self.versions.record(document)
        self._addresses[document.vid] = address
        now_live = not document.is_tombstone
        self.live_doc_count += int(now_live) - int(was_live)
        self.column_store.on_put(document, address)

    def _append_physical(self, document: Document) -> PageAddress:
        """Append *document* into the open segment, sealing as needed."""
        segment = self._open_segment()
        address = segment.append(document)
        if address is None:
            self._seal_open_segment()
            segment = self._open_segment()
            address = segment.append(document)
            if address is None:
                raise RuntimeError("fresh segment refused an append")
        return address

    def _notify_put(self, pairs: List[Tuple[Document, PageAddress]]) -> None:
        """Announce a committed batch: batch listeners once, then the
        per-document compat hooks in batch order."""
        self.commit_lsn += 1
        for listener in self.batch_put_listeners:
            listener(pairs)
        for document, address in pairs:
            for listener in self.put_listeners:
                listener(document, address)

    def update(self, doc_id: str, content, metadata: Optional[dict] = None) -> Document:
        """Convenience: derive and persist the next version of *doc_id*."""
        head = self.versions.head(doc_id)
        return self.put(head.new_version(content, metadata))

    def delete(self, doc_id: str) -> Document:
        """Delete *doc_id* by appending a tombstone version.

        The appliance never removes bytes: the tombstone supersedes the
        head, so ``lookup`` answers None and scans skip the chain, while
        ``history``/``as_of`` still see every earlier version.  Listeners
        are notified like any put — the tombstone flows down the
        invalidation bus as a delete change.  Idempotent: deleting a
        deleted document returns the existing tombstone without a new
        version.  Raises LookupError for an unknown doc_id.
        """
        head = self.versions.head(doc_id)
        if head.is_tombstone:
            return head
        return self.put(head.tombstone())

    def import_chain(self, versions) -> int:
        """Adopt a full version chain from another store (re-homing after
        a node failure: the bytes arrive from a surviving replica).

        Versions must arrive oldest-first with their original ingest
        timestamps; the clock observes each so logical time stays
        consistent across the re-homed history.  Returns versions stored.
        """
        imported = 0
        for document in versions:
            if document.ingest_ts > 0:
                self.clock.observe(document.ingest_ts)
            self.put(document)
            imported += 1
        return imported

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def _read_at(self, address: PageAddress, hint: AccessHint) -> Document:
        page = self.buffer_pool.get(address.segment_id, address.page_id, hint)
        return page.read(address.slot)

    def get(self, doc_id: str, hint: AccessHint = AccessHint.RANDOM) -> Document:
        """Latest version of *doc_id* (LookupError when absent)."""
        head = self.versions.head(doc_id)
        self.stats.gets += 1
        return self._read_at(self._addresses[head.vid], hint)

    def get_version(self, doc_id: str, version: int) -> Document:
        doc = self.versions.chain(doc_id).get(version)
        self.stats.gets += 1
        return self._read_at(self._addresses[doc.vid], AccessHint.RANDOM)

    def as_of(self, doc_id: str, ts: int) -> Optional[Document]:
        """Snapshot read: latest version visible at logical time *ts*."""
        doc = self.versions.as_of(doc_id, ts)
        if doc is None:
            return None
        self.stats.gets += 1
        return self._read_at(self._addresses[doc.vid], AccessHint.RANDOM)

    def lookup(self, doc_id: str) -> Optional[Document]:
        """Latest *live* version or ``None`` — the non-throwing form views
        use.  A tombstoned document answers None, like one never stored;
        ``get``/``history``/``as_of`` still reach the physical chain."""
        if doc_id not in self.versions:
            return None
        if self.versions.head(doc_id).is_tombstone:
            return None
        return self.get(doc_id)

    def contains(self, doc_id: str) -> bool:
        return doc_id in self.versions

    def has_version(self, doc_id: str, version: int) -> bool:
        """True when this store committed exactly (*doc_id*, *version*).

        Address-map membership, not a chain walk: the replication layer
        attributes each change in a coalesced multi-node publication to
        the one store that committed it, without touching any page.
        """
        return (doc_id, version) in self._addresses

    def history(self, doc_id: str) -> VersionChain:
        return self.versions.chain(doc_id)

    # ------------------------------------------------------------------
    # scans
    # ------------------------------------------------------------------
    def scan(self, latest_only: bool = True) -> Iterator[Document]:
        """Sequential scan of every stored document, through the pool.

        With ``latest_only`` (the default) superseded versions are
        skipped, so query processing sees current state while audits can
        still scan everything.

        Not itself a generator: the scan is *counted* at the call site,
        not at first iteration — deferred ``stats.scans`` accounting made
        the counter disagree with the number of scans callers issued.
        """
        self.stats.scans += 1
        return self._scan_documents(latest_only)

    def _scan_documents(self, latest_only: bool) -> Iterator[Document]:
        for segment_id in sorted(self._segments):
            segment = self._segments[segment_id]
            for page_id in range(segment.page_count):
                page = self.buffer_pool.get(segment_id, page_id, AccessHint.SEQUENTIAL)
                for document in page.documents():
                    if latest_only:
                        head = self.versions.head(document.doc_id)
                        if head.version != document.version:
                            continue
                        if document.is_tombstone:
                            continue  # deleted: live scans skip the chain
                    yield document

    def scan_batches(
        self, batch_size: int = 256, latest_only: bool = True
    ) -> Iterator[List[Document]]:
        """Sequential scan yielding documents in fixed-size batches.

        The vectorized execution path consumes scans batch-at-a-time;
        this is the storage end of that pipeline.  Page traffic and scan
        accounting are identical to :meth:`scan` — only the hand-off
        granularity changes.

        Validation is eager: a bad *batch_size* raises here, at the call
        site, not at first ``next()`` deep inside an operator pipeline
        (the wrapper-over-generator pattern :meth:`scan` also uses for
        its accounting).
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        return self._batched(self.scan(latest_only=latest_only), batch_size)

    @staticmethod
    def _batched(
        documents: Iterator[Document], batch_size: int
    ) -> Iterator[List[Document]]:
        batch: List[Document] = []
        for document in documents:
            batch.append(document)
            if len(batch) >= batch_size:
                yield batch
                batch = []
        if batch:
            yield batch

    def scan_view_batches(self, view, batch_size: int = 256, lookup=None):
        """Columnar scan of *view* straight off the encoded pages, or
        ``None`` when the view cannot be answered columnar (non-table
        views, views with predicates — anything failing
        :func:`~repro.storage.columnstore.is_columnar_view`).

        Returns an iterator of still-encoded
        :class:`~repro.exec.batch.ColumnBatch`\\ es whose rows/order are
        byte-identical to projecting :meth:`scan` output through *view*.
        Page traffic flows through the buffer pool with a SEQUENTIAL
        hint — same caching, prefetch, and observer behavior as a row
        scan — and the scan is counted here at the call site, like
        :meth:`scan`.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if not is_columnar_view(view):
            return None
        self.stats.scans += 1
        self.column_store.stats.scans += 1
        return self.column_store.scan_view_batches(
            view,
            fetch_page=lambda s, p: self.buffer_pool.get(s, p, AccessHint.SEQUENTIAL),
            read_document=lambda address: self._read_at(address, AccessHint.RANDOM),
            lookup=lookup if lookup is not None else self.lookup,
            batch_size=batch_size,
        )

    def scan_addresses(self) -> Iterator[Tuple[PageAddress, Document]]:
        """Scan with physical addresses, for index builders."""
        for segment_id in sorted(self._segments):
            segment = self._segments[segment_id]
            for page_id in range(segment.page_count):
                page = self.buffer_pool.get(segment_id, page_id, AccessHint.SEQUENTIAL)
                for slot in range(page.doc_count):
                    yield PageAddress(segment_id, page_id, slot), page.read(slot)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def doc_count(self) -> int:
        """Distinct documents (not counting superseded versions)."""
        return len(self.versions)

    @property
    def version_count(self) -> int:
        return len(self._addresses)

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    def segment_ids(self) -> List[int]:
        return sorted(self._segments)

    def segment(self, segment_id: int) -> Segment:
        return self._segments[segment_id]

    def doc_ids(self) -> List[str]:
        return self.versions.doc_ids()
