"""Storage substrate: paged segments, buffer pool, versions, replication.

This package is the "software component of a storage unit" from Section
3.1 of the paper: an append-only, versioned document store whose reads all
flow through a buffer pool that accepts *plan hints* from the executor,
with compression/encryption stages that can be pushed down to the storage
side, and a replica manager implementing the reliability classes of
Section 3.4.
"""

from repro.storage.pages import (
    DEFAULT_PAGE_BYTES,
    DEFAULT_SEGMENT_PAGES,
    Page,
    PageAddress,
    Segment,
)
from repro.storage.bufferpool import (
    AccessHint,
    BufferPool,
    BufferPoolStats,
    HintedPrefetcher,
    NoPrefetcher,
    PatternMiningPrefetcher,
)
from repro.storage.versions import VersionChain, VersionConflictError, VersionIndex
from repro.storage.compression import (
    Compressor,
    DictionaryCompressor,
    StageStats,
    XorStreamCipher,
)
from repro.storage.replication import (
    PlacementError,
    ReliabilityClass,
    RepairAction,
    ReplicaManager,
    ReplicaSet,
    class_for_kind,
)
from repro.storage.encoding import (
    ColumnDictionary,
    EncodedColumn,
    encode_values,
    rle_decode,
    rle_encode,
)
from repro.storage.columnstore import (
    ColumnPage,
    ColumnSegment,
    ColumnStore,
    DEFAULT_COLUMN_PAGE_ROWS,
    is_columnar_view,
)
from repro.storage.store import DocumentStore, StoreStats
from repro.storage.recovery import (
    ContinuousReplicator,
    RecoveryConfig,
    RecoveryError,
    ReplicatorStats,
    RestoreReport,
    Shipment,
    StandbyLog,
)
from repro.storage.branching import (
    BranchManager,
    BranchRef,
    MergeConflict,
    TRUNK,
    three_way_merge,
)
from repro.storage.lineage import LineageIndex, LineageNode, LineageTrace

__all__ = [
    "DEFAULT_PAGE_BYTES",
    "DEFAULT_SEGMENT_PAGES",
    "Page",
    "PageAddress",
    "Segment",
    "AccessHint",
    "BufferPool",
    "BufferPoolStats",
    "HintedPrefetcher",
    "NoPrefetcher",
    "PatternMiningPrefetcher",
    "VersionChain",
    "VersionConflictError",
    "VersionIndex",
    "Compressor",
    "DictionaryCompressor",
    "StageStats",
    "XorStreamCipher",
    "PlacementError",
    "ReliabilityClass",
    "RepairAction",
    "ReplicaManager",
    "ReplicaSet",
    "class_for_kind",
    "ColumnDictionary",
    "EncodedColumn",
    "encode_values",
    "rle_decode",
    "rle_encode",
    "ColumnPage",
    "ColumnSegment",
    "ColumnStore",
    "DEFAULT_COLUMN_PAGE_ROWS",
    "is_columnar_view",
    "DocumentStore",
    "StoreStats",
    "ContinuousReplicator",
    "RecoveryConfig",
    "RecoveryError",
    "ReplicatorStats",
    "RestoreReport",
    "Shipment",
    "StandbyLog",
    "BranchManager",
    "BranchRef",
    "MergeConflict",
    "TRUNK",
    "three_way_merge",
    "LineageIndex",
    "LineageNode",
    "LineageTrace",
]
