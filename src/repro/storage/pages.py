"""Pages and segments: the physical layout of the document store.

Documents are appended into fixed-capacity *pages*; pages belong to
*segments* (the unit of placement and replication, Section 3.4).  The
buffer pool caches pages, and the network simulator charges shipping costs
by page/document byte size, so this layer is what makes pushdown and
prefetching measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.model.document import Document

#: Default page capacity in (approximate, serialized) bytes.
DEFAULT_PAGE_BYTES = 32 * 1024

#: Default number of pages per segment.
DEFAULT_SEGMENT_PAGES = 64


@dataclass
class Page:
    """An append-only container of document versions."""

    page_id: int
    segment_id: int
    capacity_bytes: int = DEFAULT_PAGE_BYTES
    _docs: List[Document] = field(default_factory=list)
    _used_bytes: int = 0

    #: Row pages cache decoded documents; column pages
    #: (:class:`repro.storage.columnstore.ColumnPage`) override this.
    is_columnar = False

    def fits(self, document: Document) -> bool:
        size = document.size_bytes()
        if size > self.capacity_bytes:
            # Oversized documents get a page of their own rather than
            # being rejected; BLOB-ish content must still be storable.
            return not self._docs
        return self._used_bytes + size <= self.capacity_bytes

    def append(self, document: Document) -> int:
        """Append *document*; return its slot index."""
        if not self.fits(document):
            raise ValueError(f"page {self.page_id} cannot fit document {document.doc_id}")
        self._docs.append(document)
        self._used_bytes += document.size_bytes()
        return len(self._docs) - 1

    def read(self, slot: int) -> Document:
        return self._docs[slot]

    def documents(self) -> Iterator[Document]:
        return iter(self._docs)

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    def cached_bytes(self) -> int:
        """Bytes a buffer-pool frame holding this page accounts for.

        A row page caches its documents decoded, so this is simply
        :attr:`used_bytes`; column pages report their *encoded* size —
        the distinction the pool's byte accounting exists to show.
        """
        return self._used_bytes

    @property
    def doc_count(self) -> int:
        return len(self._docs)


@dataclass(frozen=True)
class PageAddress:
    """Physical address of one document version: (segment, page, slot)."""

    segment_id: int
    page_id: int
    slot: int


class Segment:
    """A bounded run of pages; the unit the replica manager places on
    data nodes."""

    def __init__(
        self,
        segment_id: int,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        max_pages: int = DEFAULT_SEGMENT_PAGES,
    ) -> None:
        if max_pages < 1:
            raise ValueError("segments need at least one page")
        self.segment_id = segment_id
        self.page_bytes = page_bytes
        self.max_pages = max_pages
        self._pages: List[Page] = []
        self._next_page_id = 0

    def _new_page(self) -> Page:
        page = Page(
            page_id=self._next_page_id,
            segment_id=self.segment_id,
            capacity_bytes=self.page_bytes,
        )
        self._next_page_id += 1
        self._pages.append(page)
        return page

    @property
    def is_sealed(self) -> bool:
        """A sealed segment has allocated all of its pages.

        Small documents may still squeeze into the last page, but the
        store treats a sealed segment as closed for new placements.
        """
        return len(self._pages) >= self.max_pages

    def append(self, document: Document) -> Optional[PageAddress]:
        """Append *document*; return its address, or ``None`` if sealed."""
        if self._pages and self._pages[-1].fits(document):
            page = self._pages[-1]
        elif len(self._pages) < self.max_pages:
            page = self._new_page()
        else:
            return None
        slot = page.append(document)
        return PageAddress(self.segment_id, page.page_id, slot)

    def page(self, page_id: int) -> Page:
        return self._pages[page_id]

    def pages(self) -> List[Page]:
        return list(self._pages)

    def documents(self) -> Iterator[Document]:
        for page in self._pages:
            yield from page.documents()

    @property
    def page_count(self) -> int:
        return len(self._pages)

    @property
    def used_bytes(self) -> int:
        return sum(p.used_bytes for p in self._pages)

    @property
    def doc_count(self) -> int:
        return sum(p.doc_count for p in self._pages)
