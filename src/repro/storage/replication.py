"""Replica placement and reliability classes (paper Section 3.4).

"Some data, especially data users have added, will require high
reliability ... Other data can be re-created with varying amounts of
effort, such as data derived by analytics or redundant versions of base
data."  The storage manager therefore assigns each segment a
:class:`ReliabilityClass` from the kind of data it holds, places that many
replicas across data nodes, and autonomically re-replicates when a node is
lost — no administrator knob-turning (the VIRT experiment counts exactly
that).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.model.document import DocumentKind
from repro.util import stable_hash


class ReliabilityClass(enum.Enum):
    """Service level of a segment, expressed as a replica count."""

    GOLD = 3    # user-added base data, regulatory data
    SILVER = 2  # annotations worth keeping but re-derivable with effort
    BRONZE = 1  # cheaply re-creatable derived data (indexes, cached views)

    @property
    def replicas(self) -> int:
        # The enum value IS the replica count — returning it directly
        # means adding a class can never silently desync a lookup table.
        return int(self.value)


def class_for_kind(kind: DocumentKind) -> ReliabilityClass:
    """Default autonomic policy: reliability follows re-creation cost."""
    if kind is DocumentKind.BASE:
        return ReliabilityClass.GOLD
    if kind is DocumentKind.ANNOTATION:
        return ReliabilityClass.SILVER
    return ReliabilityClass.BRONZE


class PlacementError(Exception):
    """Raised when a placement cannot satisfy its reliability class."""


@dataclass
class ReplicaSet:
    """Where one segment's replicas live."""

    segment_id: int
    reliability: ReliabilityClass
    node_ids: Set[str] = field(default_factory=set)

    @property
    def satisfied(self) -> bool:
        return len(self.node_ids) >= self.reliability.replicas

    @property
    def deficit(self) -> int:
        return max(0, self.reliability.replicas - len(self.node_ids))


@dataclass
class RepairAction:
    """A re-replication the manager performed after a failure."""

    segment_id: int
    source_node: Optional[str]
    target_node: str


class ReplicaManager:
    """Places segment replicas on data nodes and repairs after failures.

    Placement is capacity-aware (least-loaded nodes first, ties broken by
    a stable hash so runs are deterministic).  The manager is a policy
    object: it decides *where* replicas go; actually copying bytes is the
    cluster layer's job, which consumes the returned
    :class:`RepairAction` list.
    """

    def __init__(self, node_ids: Iterable[str], telemetry=None) -> None:
        self._node_load: Dict[str, int] = {node: 0 for node in node_ids}
        if not self._node_load:
            raise ValueError("replica manager needs at least one node")
        self._placements: Dict[int, ReplicaSet] = {}
        self._failed: Set[str] = set()
        self.telemetry = telemetry

    # ------------------------------------------------------------------
    @property
    def live_nodes(self) -> List[str]:
        return sorted(n for n in self._node_load if n not in self._failed)

    def load_of(self, node_id: str) -> int:
        return self._node_load[node_id]

    def placement(self, segment_id: int) -> ReplicaSet:
        try:
            return self._placements[segment_id]
        except KeyError:
            raise LookupError(f"segment {segment_id} has no placement") from None

    def placements(self) -> List[ReplicaSet]:
        return [self._placements[s] for s in sorted(self._placements)]

    # ------------------------------------------------------------------
    def _pick_nodes(self, count: int, exclude: Set[str], seed: str) -> List[str]:
        candidates = [n for n in self.live_nodes if n not in exclude]
        if len(candidates) < count:
            raise PlacementError(
                f"need {count} nodes but only {len(candidates)} live nodes available"
            )
        candidates.sort(key=lambda n: (self._node_load[n], stable_hash(seed + n, 1 << 30)))
        return candidates[:count]

    def place(self, segment_id: int, reliability: ReliabilityClass) -> ReplicaSet:
        """Choose replica nodes for a new segment."""
        if segment_id in self._placements:
            raise ValueError(f"segment {segment_id} already placed")
        nodes = self._pick_nodes(reliability.replicas, set(), str(segment_id))
        replica_set = ReplicaSet(segment_id, reliability, set(nodes))
        for node in nodes:
            self._node_load[node] += 1
        self._placements[segment_id] = replica_set
        if self.telemetry is not None:
            self.telemetry.inc("storage.replicas_placed", len(nodes))
        return replica_set

    # ------------------------------------------------------------------
    def add_node(self, node_id: str) -> None:
        """A broker granted us a new node (Section 3.4: "brokers offer
        these resources to the groups that will make best use of them")."""
        if node_id in self._node_load and node_id not in self._failed:
            raise ValueError(f"node {node_id} already present")
        self._failed.discard(node_id)
        self._node_load.setdefault(node_id, 0)

    def on_node_failure(self, node_id: str) -> List[RepairAction]:
        """Mark *node_id* dead and re-replicate every segment it held.

        Returns the repair actions taken, in segment order.  Segments that
        cannot reach their replica count (not enough live nodes) keep a
        deficit and are repaired by a later :meth:`repair_deficits` once
        capacity returns.
        """
        if node_id not in self._node_load:
            raise LookupError(f"unknown node {node_id}")
        if node_id in self._failed:
            return []
        self._failed.add(node_id)
        self._node_load[node_id] = 0

        actions: List[RepairAction] = []
        for segment_id in sorted(self._placements):
            replica_set = self._placements[segment_id]
            if node_id not in replica_set.node_ids:
                continue
            replica_set.node_ids.discard(node_id)
            actions.extend(self._repair(replica_set))
        return actions

    def _repair(self, replica_set: ReplicaSet) -> List[RepairAction]:
        actions: List[RepairAction] = []
        while replica_set.deficit > 0:
            try:
                (target,) = self._pick_nodes(
                    1, set(replica_set.node_ids), str(replica_set.segment_id)
                )
            except PlacementError:
                break  # deficit remains; repair_deficits will retry later
            source = min(replica_set.node_ids) if replica_set.node_ids else None
            replica_set.node_ids.add(target)
            self._node_load[target] += 1
            actions.append(RepairAction(replica_set.segment_id, source, target))
        if actions and self.telemetry is not None:
            self.telemetry.inc("storage.repair_actions", len(actions))
        return actions

    def invalidate_replica(self, segment_id: int, node_id: str) -> List[RepairAction]:
        """Drop one (corrupted or lost) replica copy and repair at once.

        The chaos engine's segment-corruption fault lands here: a single
        bad copy is indistinguishable from a failed disk block, so the
        response is the same — discard it and re-replicate from a
        surviving copy.
        """
        replica_set = self.placement(segment_id)
        if node_id not in replica_set.node_ids:
            return []
        replica_set.node_ids.discard(node_id)
        if node_id not in self._failed:
            self._node_load[node_id] = max(0, self._node_load[node_id] - 1)
        if self.telemetry is not None:
            self.telemetry.inc("storage.replicas_invalidated")
        return self._repair(replica_set)

    def repair_deficits(self) -> List[RepairAction]:
        """Retry repairs for every under-replicated segment."""
        actions: List[RepairAction] = []
        for segment_id in sorted(self._placements):
            replica_set = self._placements[segment_id]
            if replica_set.deficit > 0:
                actions.extend(self._repair(replica_set))
        return actions

    # ------------------------------------------------------------------
    def under_replicated(self) -> List[ReplicaSet]:
        return [r for r in self.placements() if not r.satisfied]

    def data_available(self, segment_id: int) -> bool:
        """At least one live replica exists."""
        replica_set = self._placements.get(segment_id)
        return bool(replica_set and replica_set.node_ids)

    def nodes_for(self, segment_id: int) -> List[str]:
        """Live replica holders for a segment, for read routing."""
        return sorted(self.placement(segment_id).node_ids)
