"""Replica placement and reliability classes (paper Section 3.4).

"Some data, especially data users have added, will require high
reliability ... Other data can be re-created with varying amounts of
effort, such as data derived by analytics or redundant versions of base
data."  The storage manager therefore assigns each segment a
:class:`ReliabilityClass` from the kind of data it holds, places that many
replicas across data nodes, and autonomically re-replicates when a node is
lost — no administrator knob-turning (the VIRT experiment counts exactly
that).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.model.document import DocumentKind
from repro.util import stable_hash


class ReliabilityClass(enum.Enum):
    """Service level of a segment, expressed as a replica count."""

    GOLD = 3    # user-added base data, regulatory data
    SILVER = 2  # annotations worth keeping but re-derivable with effort
    BRONZE = 1  # cheaply re-creatable derived data (indexes, cached views)

    @property
    def replicas(self) -> int:
        # The enum value IS the replica count — returning it directly
        # means adding a class can never silently desync a lookup table.
        return int(self.value)


def class_for_kind(kind: DocumentKind) -> ReliabilityClass:
    """Default autonomic policy: reliability follows re-creation cost."""
    if kind is DocumentKind.BASE:
        return ReliabilityClass.GOLD
    if kind is DocumentKind.ANNOTATION:
        return ReliabilityClass.SILVER
    return ReliabilityClass.BRONZE


class PlacementError(Exception):
    """Raised when a placement cannot satisfy its reliability class."""


@dataclass
class ReplicaSet:
    """Where one segment's replicas live."""

    segment_id: int
    reliability: ReliabilityClass
    node_ids: Set[str] = field(default_factory=set)

    @property
    def satisfied(self) -> bool:
        return len(self.node_ids) >= self.reliability.replicas

    @property
    def deficit(self) -> int:
        return max(0, self.reliability.replicas - len(self.node_ids))


@dataclass
class RepairAction:
    """A re-replication the manager performed after a failure."""

    segment_id: int
    source_node: Optional[str]
    target_node: str


class ReplicaManager:
    """Places segment replicas on data nodes and repairs after failures.

    Placement is capacity-aware (least-loaded nodes first, ties broken by
    a stable hash so runs are deterministic).  The manager is a policy
    object: it decides *where* replicas go; actually copying bytes is the
    cluster layer's job, which consumes the returned
    :class:`RepairAction` list.
    """

    def __init__(self, node_ids: Iterable[str], telemetry=None, network=None) -> None:
        self._node_load: Dict[str, int] = {node: 0 for node in node_ids}
        if not self._node_load:
            raise ValueError("replica manager needs at least one node")
        self._placements: Dict[int, ReplicaSet] = {}
        self._failed: Set[str] = set()
        self.telemetry = telemetry
        #: Optional interconnect model; when present, repair sources are
        #: required to be reachable from the copy target (a partitioned
        #: survivor cannot serve the bytes).
        self.network = network

    # ------------------------------------------------------------------
    @property
    def live_nodes(self) -> List[str]:
        return sorted(n for n in self._node_load if n not in self._failed)

    def load_of(self, node_id: str) -> int:
        return self._node_load[node_id]

    def placement(self, segment_id: int) -> ReplicaSet:
        try:
            return self._placements[segment_id]
        except KeyError:
            raise LookupError(f"segment {segment_id} has no placement") from None

    def placements(self) -> List[ReplicaSet]:
        return [self._placements[s] for s in sorted(self._placements)]

    # ------------------------------------------------------------------
    def _pick_nodes(self, count: int, exclude: Set[str], seed: str) -> List[str]:
        candidates = [n for n in self.live_nodes if n not in exclude]
        if len(candidates) < count:
            raise PlacementError(
                f"need {count} nodes but only {len(candidates)} live nodes available"
            )
        candidates.sort(key=lambda n: (self._node_load[n], stable_hash(seed + n, 1 << 30)))
        return candidates[:count]

    def place(self, segment_id: int, reliability: ReliabilityClass) -> ReplicaSet:
        """Choose replica nodes for a new segment."""
        if segment_id in self._placements:
            raise ValueError(f"segment {segment_id} already placed")
        nodes = self._pick_nodes(reliability.replicas, set(), str(segment_id))
        replica_set = ReplicaSet(segment_id, reliability, set(nodes))
        for node in nodes:
            self._node_load[node] += 1
        self._placements[segment_id] = replica_set
        if self.telemetry is not None:
            self.telemetry.inc("storage.replicas_placed", len(nodes))
        return replica_set

    # ------------------------------------------------------------------
    def add_node(self, node_id: str) -> None:
        """A broker granted us a new node (Section 3.4: "brokers offer
        these resources to the groups that will make best use of them")."""
        if node_id in self._node_load and node_id not in self._failed:
            raise ValueError(f"node {node_id} already present")
        self._failed.discard(node_id)
        self._node_load.setdefault(node_id, 0)

    def on_node_failure(self, node_id: str) -> List[RepairAction]:
        """Mark *node_id* dead and re-replicate every segment it held.

        Returns the repair actions taken, in segment order.  Segments that
        cannot reach their replica count (not enough live nodes) keep a
        deficit and are repaired by a later :meth:`repair_deficits` once
        capacity returns.
        """
        if node_id not in self._node_load:
            raise LookupError(f"unknown node {node_id}")
        if node_id in self._failed:
            return []
        self._failed.add(node_id)
        self._node_load[node_id] = 0

        affected: List[ReplicaSet] = []
        for segment_id in sorted(self._placements):
            replica_set = self._placements[segment_id]
            if node_id not in replica_set.node_ids:
                continue
            replica_set.node_ids.discard(node_id)
            affected.append(replica_set)
        return self._repair_round(affected)

    def _repair_round(self, replica_sets: List[ReplicaSet]) -> List[RepairAction]:
        """Repair a batch of deficits with a per-target cap for the round.

        Without the cap, a node that just (re)joined at load 0 is the
        least-loaded candidate for *every* deficit and absorbs the whole
        backlog in one burst; capping each target at its fair share of
        the round (``ceil(total deficit / live nodes)``) spreads the
        copies.  When only capped nodes remain as candidates the cap
        yields — completing the repair beats preserving the spread.
        """
        total = sum(replica_set.deficit for replica_set in replica_sets)
        live = len(self.live_nodes)
        cap = max(1, -(-total // live)) if live else 1
        round_counts: Dict[str, int] = {}
        actions: List[RepairAction] = []
        for replica_set in replica_sets:
            actions.extend(self._repair(replica_set, round_counts, cap))
        return actions

    def _pick_target(
        self,
        replica_set: ReplicaSet,
        round_counts: Optional[Dict[str, int]],
        cap: Optional[int],
    ) -> Optional[str]:
        exclude = set(replica_set.node_ids)
        seed = str(replica_set.segment_id)
        if round_counts is not None and cap is not None:
            capped = {n for n, c in round_counts.items() if c >= cap}
            try:
                (target,) = self._pick_nodes(1, exclude | capped, seed)
                return target
            except PlacementError:
                pass  # every candidate is at its cap: fall through
        try:
            (target,) = self._pick_nodes(1, exclude, seed)
            return target
        except PlacementError:
            return None  # deficit remains; repair_deficits retries later

    def _pick_source(self, replica_set: ReplicaSet, target: str) -> Optional[str]:
        """A reachable, least-loaded surviving holder to copy from.

        Lexicographic ``min(node_ids)`` ignored both load and chaos
        partitions, nominating the hottest — or an unreachable — node as
        copy source.  Ties still break by stable hash so replays are
        deterministic; when no holder can reach the target the action
        ships without a source and is retried once links heal.
        """
        candidates = sorted(
            replica_set.node_ids,
            key=lambda n: (
                self._node_load[n],
                stable_hash(f"src:{replica_set.segment_id}:{n}", 1 << 30),
            ),
        )
        for candidate in candidates:
            if self.network is None or not self.network.is_partitioned(
                candidate, target
            ):
                return candidate
        if candidates and self.telemetry is not None:
            self.telemetry.inc("storage.repair_no_source")
        return None

    def _repair(
        self,
        replica_set: ReplicaSet,
        round_counts: Optional[Dict[str, int]] = None,
        cap: Optional[int] = None,
    ) -> List[RepairAction]:
        actions: List[RepairAction] = []
        while replica_set.deficit > 0:
            target = self._pick_target(replica_set, round_counts, cap)
            if target is None:
                break
            source = self._pick_source(replica_set, target)
            replica_set.node_ids.add(target)
            self._node_load[target] += 1
            if round_counts is not None:
                round_counts[target] = round_counts.get(target, 0) + 1
            actions.append(RepairAction(replica_set.segment_id, source, target))
        if actions and self.telemetry is not None:
            self.telemetry.inc("storage.repair_actions", len(actions))
        return actions

    def invalidate_replica(self, segment_id: int, node_id: str) -> List[RepairAction]:
        """Drop one (corrupted or lost) replica copy and repair at once.

        The chaos engine's segment-corruption fault lands here: a single
        bad copy is indistinguishable from a failed disk block, so the
        response is the same — discard it and re-replicate from a
        surviving copy.
        """
        replica_set = self.placement(segment_id)
        if node_id not in replica_set.node_ids:
            return []
        replica_set.node_ids.discard(node_id)
        if node_id not in self._failed:
            self._node_load[node_id] = max(0, self._node_load[node_id] - 1)
        if self.telemetry is not None:
            self.telemetry.inc("storage.replicas_invalidated")
        return self._repair(replica_set)

    def repair_deficits(self) -> List[RepairAction]:
        """Retry repairs for every under-replicated segment, spreading
        the round across live nodes (see :meth:`_repair_round`)."""
        return self._repair_round(
            [
                self._placements[segment_id]
                for segment_id in sorted(self._placements)
                if self._placements[segment_id].deficit > 0
            ]
        )

    # ------------------------------------------------------------------
    def under_replicated(self) -> List[ReplicaSet]:
        return [r for r in self.placements() if not r.satisfied]

    def data_available(self, segment_id: int) -> bool:
        """At least one live replica exists."""
        replica_set = self._placements.get(segment_id)
        return bool(replica_set and replica_set.node_ids)

    def nodes_for(self, segment_id: int) -> List[str]:
        """Live replica holders for a segment, for read routing."""
        return sorted(self.placement(segment_id).node_ids)
