"""Columnar vector encodings: incremental dictionaries + run lengths.

This is the compression layer the native column pages are built from
(docs/STORAGE.md).  It extends the idea behind
:class:`repro.storage.compression.DictionaryCompressor` — an incremental,
append-only dictionary learned across the whole stream — from document
*keys* to column *values*:

* :class:`ColumnDictionary` maps distinct column values to small integer
  codes.  The dictionary only ever grows, so codes are stable: vectors
  encoded yesterday remain decodable (and comparable) today, and every
  page of one column shares one dictionary.
* :class:`EncodedColumn` is a dictionary-coded vector stored either as a
  flat code list or as run-length ``(code, count)`` pairs — whichever is
  smaller for the data at hand (the workload generators emit both
  low-cardinality fields like ``region`` and unique keys like ``oid``).

An :class:`EncodedColumn` is a real ``Sequence``: operators that iterate
or index it see decoded values, so it can sit inside a
``ColumnBatch.columns`` dict unnoticed.  The scan/filter hot path,
however, checks for it explicitly and works on the *codes* — predicate
evaluation touches each distinct value once (:meth:`ColumnDictionary.
matching_codes`), row selection gathers integers, and nothing decodes
until an operator genuinely needs values.

This module sits at the bottom of the import graph (only
``repro.model.values``) so the exec and query layers can import it
without cycles.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.model.values import MISSING

__all__ = [
    "ColumnDictionary",
    "EncodedColumn",
    "encode_values",
    "rle_encode",
    "rle_decode",
]


def _dict_key(value: Any) -> Tuple[type, Any]:
    """Dictionary lookup key distinguishing equal-but-distinct values.

    Plain ``value`` keys would fuse ``True``/``1``/``1.0`` into one code
    (Python hashes them identically), silently rewriting booleans into
    ints on decode.  Keying by ``(type, value)`` keeps the round trip
    exact.
    """
    return (value.__class__, value)


class ColumnDictionary:
    """Incremental value ↔ code mapping shared by every page of a column.

    Append-only: a value's code never changes once assigned, so encoded
    vectors from different pages/segments are directly comparable.  The
    dictionary also memoizes *predicate* evaluations: a compiled
    comparison is run once per distinct value and the surviving code set
    is cached (and extended incrementally as the dictionary grows), which
    is what makes filtering on codes cheaper than filtering on values.
    """

    __slots__ = ("_code_of", "_values", "_raw_sizes", "raw_entry_bytes", "_match_cache")

    def __init__(self) -> None:
        self._code_of: Dict[Tuple[type, Any], int] = {}
        self._values: List[Any] = []
        # decoded size per code (len(str(value)) + 1), computed once per
        # distinct value so per-row byte accounting never calls str()
        self._raw_sizes: List[int] = []
        #: Running sum of per-entry decoded sizes (the dictionary's own
        #: storage cost, before per-code width).
        self.raw_entry_bytes = 0
        # predicate cache: key -> [n_values_checked, set_of_matching_codes]
        self._match_cache: Dict[Any, List[Any]] = {}

    def __len__(self) -> int:
        return len(self._values)

    def encode_one(self, value: Any) -> int:
        # inlined _dict_key: this is the hottest line of the write path
        key = (value.__class__, value)
        code = self._code_of.get(key)
        if code is None:
            code = len(self._values)
            self._code_of[key] = code
            self._values.append(value)
            size = len(str(value)) + 1
            self._raw_sizes.append(size)
            self.raw_entry_bytes += size
        return code

    def raw_size(self, code: int) -> int:
        """Approximate decoded byte cost of the value behind *code*."""
        return self._raw_sizes[code]

    def encode_many(self, values: Sequence[Any]) -> List[int]:
        encode = self.encode_one
        return [encode(v) for v in values]

    def value(self, code: int) -> Any:
        return self._values[code]

    def values(self) -> List[Any]:
        """The decode table (index = code).  Do not mutate."""
        return self._values

    def decode_many(self, codes: Sequence[int]) -> List[Any]:
        table = self._values
        return [table[c] for c in codes]

    # ------------------------------------------------------------------
    def matching_codes(
        self, cache_key: Any, predicate: Callable[[Any], bool]
    ) -> frozenset:
        """Codes whose decoded value satisfies *predicate*.

        *predicate* sees exactly what ``ColumnBatch.column`` would hand a
        row-at-a-time filter: the decoded value, with :data:`MISSING`
        read as None.  Results are cached under *cache_key* (typically
        the frozen ``Comparison`` itself) and extended incrementally —
        appending values to the dictionary re-evaluates the predicate
        only on the new tail, never on the already-checked prefix.
        """
        try:
            cached = self._match_cache.get(cache_key)
        except TypeError:  # unhashable literal: evaluate without caching
            return self._scan_codes(0, set(), predicate)
        if cached is None:
            cached = [0, set()]
            self._match_cache[cache_key] = cached
        checked, matches = cached
        if checked < len(self._values):
            self._scan_codes(checked, matches, predicate)
            cached[0] = len(self._values)
        return frozenset(matches)

    def _scan_codes(self, start: int, matches: set, predicate) -> frozenset:
        for code in range(start, len(self._values)):
            value = self._values[code]
            if value is MISSING:
                value = None
            if predicate(value):
                matches.add(code)
        return frozenset(matches)


# ----------------------------------------------------------------------
# run-length helpers
# ----------------------------------------------------------------------
def rle_encode(codes: Sequence[int]) -> List[Tuple[int, int]]:
    """Collapse *codes* into ``(code, run_length)`` pairs."""
    runs: List[Tuple[int, int]] = []
    current: Optional[int] = None
    count = 0
    for code in codes:
        if code == current:
            count += 1
        else:
            if count:
                runs.append((current, count))
            current = code
            count = 1
    if count:
        runs.append((current, count))
    return runs


def rle_decode(runs: Sequence[Tuple[int, int]]) -> List[int]:
    """Expand ``(code, run_length)`` pairs back into a flat code list."""
    codes: List[int] = []
    for code, count in runs:
        codes.extend([code] * count)
    return codes


def _code_width(dictionary_size: int) -> int:
    """Bytes per code in the simulated on-page format."""
    if dictionary_size <= 1 << 8:
        return 1
    if dictionary_size <= 1 << 16:
        return 2
    return 4


class EncodedColumn(Sequence):
    """A dictionary-coded column vector, flat or run-length encoded.

    Behaves as an immutable ``Sequence`` of *decoded* values (so generic
    operators — sorts, joins, aggregates — work unchanged), while the
    scan/filter hot path uses :meth:`codes`, :meth:`take`, and the
    dictionary's predicate cache to stay on integers.  Decoding is lazy
    and memoized; :meth:`take`/slicing produce new still-encoded columns.
    """

    __slots__ = ("dictionary", "_codes", "_runs", "length", "_decoded")

    def __init__(
        self,
        dictionary: ColumnDictionary,
        codes: Optional[List[int]] = None,
        runs: Optional[List[Tuple[int, int]]] = None,
    ) -> None:
        if (codes is None) == (runs is None):
            raise ValueError("exactly one of codes/runs must be given")
        self.dictionary = dictionary
        self._codes = codes
        self._runs = runs
        self.length = (
            len(codes) if codes is not None else sum(c for _, c in runs)
        )
        self._decoded: Optional[List[Any]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_values(
        cls, values: Sequence[Any], dictionary: Optional[ColumnDictionary] = None
    ) -> "EncodedColumn":
        """Encode *values*, choosing the smaller of flat vs run-length."""
        dictionary = dictionary if dictionary is not None else ColumnDictionary()
        codes = dictionary.encode_many(values)
        return cls.from_codes(codes, dictionary)

    @classmethod
    def from_codes(
        cls, codes: List[int], dictionary: ColumnDictionary
    ) -> "EncodedColumn":
        """Wrap already-encoded *codes*, run-length encoding when smaller."""
        runs = rle_encode(codes)
        # A run costs a code plus a count; keep runs only when they beat
        # the flat layout outright (ties keep flat: cheaper to address).
        if len(runs) * 2 < len(codes):
            return cls(dictionary, runs=runs)
        return cls(dictionary, codes=codes)

    # ------------------------------------------------------------------
    # encoded access (the hot path)
    # ------------------------------------------------------------------
    @property
    def is_run_length(self) -> bool:
        return self._runs is not None

    def runs(self) -> Optional[List[Tuple[int, int]]]:
        return self._runs

    def codes(self) -> List[int]:
        """Flat code vector (expanded and memoized for run-length data)."""
        if self._codes is None:
            self._codes = rle_decode(self._runs)
        return self._codes

    def take(self, indices: Sequence[int]) -> "EncodedColumn":
        """Still-encoded gather of the rows at *indices*."""
        codes = self.codes()
        return EncodedColumn.from_codes([codes[i] for i in indices], self.dictionary)

    def encoded_bytes(self) -> int:
        """Approximate on-page size of this vector.

        Codes cost the byte width the dictionary size requires; a
        run-length pair additionally carries a two-byte count.  The
        dictionary itself is shared across every page of the column, so
        it is charged where it lives (once per store), not per vector.
        """
        width = _code_width(len(self.dictionary))
        if self._runs is not None:
            # The page stores the runs; a memoized flat expansion (a
            # decode cache) does not change the on-page size.
            return len(self._runs) * (width + 2)
        return self.length * width

    # ------------------------------------------------------------------
    # decoded access (Sequence protocol for generic operators)
    # ------------------------------------------------------------------
    def decoded(self) -> List[Any]:
        """The exact value stream this column encodes (memoized)."""
        if self._decoded is None:
            self._decoded = self.dictionary.decode_many(self.codes())
        return self._decoded

    def __len__(self) -> int:
        return self.length

    def __iter__(self) -> Iterator[Any]:
        return iter(self.decoded())

    def __getitem__(self, index):
        if isinstance(index, slice):
            return EncodedColumn.from_codes(self.codes()[index], self.dictionary)
        return self.decoded()[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, EncodedColumn):
            return self.decoded() == other.decoded()
        if isinstance(other, list):
            return self.decoded() == other
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        layout = "rle" if self.is_run_length else "flat"
        return f"EncodedColumn({self.length} rows, {layout}, dict={len(self.dictionary)})"


def encode_values(
    values: Sequence[Any], dictionary: Optional[ColumnDictionary] = None
) -> EncodedColumn:
    """Convenience: dictionary- and run-length-encode one value stream."""
    return EncodedColumn.from_values(values, dictionary)
