"""Immutable version chains (paper Section 4).

"Impliance does not update data in-place.  Instead, changes are
implemented as the addition of a new version."  The chain keeps every
version of a document in ingest order, supports as-of reads against the
logical clock, and records the simple sequential-versioning primitive the
paper proposes as the base on which richer schemes can be layered.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.model.document import Document


class VersionConflictError(Exception):
    """Raised when an append does not extend the chain head by exactly one."""


@dataclass(frozen=True)
class VersionRecord:
    """One link of a chain: the version number and when it appeared."""

    version: int
    ingest_ts: int
    digest: str


class VersionChain:
    """All versions of one ``doc_id``, oldest first."""

    def __init__(self, doc_id: str) -> None:
        self.doc_id = doc_id
        self._versions: List[Document] = []
        #: Parallel list of ingest timestamps (``validate`` keeps them
        #: monotone), so as-of reads can bisect instead of scanning.
        self._timestamps: List[int] = []

    # ------------------------------------------------------------------
    def validate(self, document: Document) -> None:
        """Check that *document* may extend this chain — without mutating it.

        The store validates *before* touching a page so a rejected write
        leaves no trace anywhere: no phantom version record, no orphaned
        page bytes.
        """
        if document.doc_id != self.doc_id:
            raise ValueError(
                f"document {document.doc_id} appended to chain {self.doc_id}"
            )
        expected = len(self._versions) + 1
        if document.version != expected:
            raise VersionConflictError(
                f"{self.doc_id}: expected version {expected}, got {document.version}"
            )
        if self._versions and document.ingest_ts < self._versions[-1].ingest_ts:
            raise VersionConflictError(
                f"{self.doc_id}: version {document.version} has ingest_ts "
                f"{document.ingest_ts} earlier than its predecessor"
            )

    def append(self, document: Document) -> None:
        """Append the next version.

        The version number must be exactly ``head + 1`` — concurrent
        writers that both derive from the same head conflict, and the
        loser must re-derive (optimistic concurrency; there is no in-place
        update to lock).
        """
        self.validate(document)
        self._versions.append(document)
        self._timestamps.append(document.ingest_ts)

    # ------------------------------------------------------------------
    @property
    def head(self) -> Document:
        """The latest version."""
        if not self._versions:
            raise LookupError(f"chain {self.doc_id} is empty")
        return self._versions[-1]

    @property
    def head_version(self) -> int:
        return len(self._versions)

    def get(self, version: int) -> Document:
        if not 1 <= version <= len(self._versions):
            raise LookupError(f"{self.doc_id} has no version {version}")
        return self._versions[version - 1]

    def as_of(self, ts: int) -> Optional[Document]:
        """Latest version whose ``ingest_ts`` is ≤ *ts* (``None`` if the
        document did not exist yet).  Readers pin a timestamp and see a
        stable snapshot regardless of concurrent appends.

        ``validate`` keeps timestamps monotone, so this bisects — the
        log-replay path issues point-in-time reads per record, and an
        O(n) scan per read made replay quadratic in chain length.  Ties
        resolve to the *last* version at the timestamp, matching the
        linear scan this replaced (the property test pins equivalence).
        """
        index = bisect_right(self._timestamps, ts)
        return self._versions[index - 1] if index else None

    def records(self) -> List[VersionRecord]:
        """The audit-friendly lineage of this chain."""
        return [
            VersionRecord(d.version, d.ingest_ts, d.content_digest())
            for d in self._versions
        ]

    def __iter__(self) -> Iterator[Document]:
        return iter(self._versions)

    def __len__(self) -> int:
        return len(self._versions)


class VersionIndex:
    """Repository-wide map of doc_id → :class:`VersionChain`."""

    def __init__(self) -> None:
        self._chains: Dict[str, VersionChain] = {}

    def validate(self, document: Document) -> None:
        """Check *document* against its chain without recording anything.

        A document with no chain yet must be version 1; an existing chain
        applies its usual head+1 / timestamp-monotonicity rules.
        """
        chain = self._chains.get(document.doc_id)
        if chain is not None:
            chain.validate(document)
        elif document.version != 1:
            raise VersionConflictError(
                f"{document.doc_id}: expected version 1, got {document.version}"
            )

    def record(self, document: Document) -> VersionChain:
        chain = self._chains.get(document.doc_id)
        if chain is None:
            chain = VersionChain(document.doc_id)
            self._chains[document.doc_id] = chain
        chain.append(document)
        return chain

    def chain(self, doc_id: str) -> VersionChain:
        try:
            return self._chains[doc_id]
        except KeyError:
            raise LookupError(f"no versions recorded for {doc_id!r}") from None

    def head(self, doc_id: str) -> Document:
        return self.chain(doc_id).head

    def as_of(self, doc_id: str, ts: int) -> Optional[Document]:
        chain = self._chains.get(doc_id)
        return chain.as_of(ts) if chain else None

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._chains

    def __len__(self) -> int:
        return len(self._chains)

    def doc_ids(self) -> List[str]:
        return sorted(self._chains)
