"""The appliance core: configuration, upgrades, and the Impliance facade.

This package is the paper's primary contribution surface: an appliance
that is operational out of the box, ingests anything, discovers
structure asynchronously, and exposes keyword/faceted/SQL/graph query
interfaces over one uniform data model.
"""

from repro.core.appliance import Impliance
from repro.core.config import ApplianceConfig
from repro.core.upgrades import (
    UpgradeEngine,
    UpgradePolicy,
    UpgradeReport,
)

__all__ = [
    "Impliance",
    "ApplianceConfig",
    "UpgradeEngine",
    "UpgradePolicy",
    "UpgradeReport",
]
