"""Appliance configuration: the few knobs that exist.

An appliance ships "operational out of the box" (Section 3.1); the
default configuration is the product.  Everything here has a sensible
default, and nothing here requires ongoing administration — the knobs
configure the simulation's scale, not the system's behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.cache.config import CacheConfig
from repro.cluster.network import DEFAULT_BANDWIDTH_BYTES_PER_MS, DEFAULT_LATENCY_MS
from repro.ingest.config import IngestConfig
from repro.query.adaptive import AdaptiveConfig
from repro.serving.config import ServingConfig
from repro.storage.recovery import RecoveryConfig
from repro.util import validate_positive


@dataclass(frozen=True)
class ApplianceConfig:
    """Scale and workload hints for one Impliance instance."""

    #: Node counts per flavor (Figure 3 topology).
    n_data_nodes: int = 4
    n_grid_nodes: int = 2
    n_cluster_nodes: int = 1
    #: Buffer-pool frames per data node.
    buffer_capacity: int = 256
    #: Interconnect model.
    network_latency_ms: float = DEFAULT_LATENCY_MS
    network_bandwidth: float = DEFAULT_BANDWIDTH_BYTES_PER_MS
    #: Background work's protected share of scheduling quanta.
    background_share: float = 0.25
    #: Observability: when True the appliance records metrics and traces
    #: (``Impliance.telemetry`` / ``Impliance.stats()``).  When False the
    #: telemetry layer is a guaranteed no-op on every hot path.
    telemetry: bool = True
    #: Execution engine: when True (the default) queries run on the
    #: vectorized ColumnBatch interpreter; False keeps the legacy
    #: row-at-a-time engine alive for comparison runs (docs/EXECUTION.md).
    vectorized: bool = True
    #: Rows per ColumnBatch on the vectorized path.
    batch_size: int = 1024
    #: Cache hierarchy: per-tier size caps and the off switch
    #: (``CacheConfig(enabled=False)`` makes every tier a no-op).
    cache: CacheConfig = field(default_factory=CacheConfig)
    #: Batched write path: group-commit batch size, staging-queue bound,
    #: and the admission policy when the queue is full (docs/INGEST.md).
    ingest: IngestConfig = field(default_factory=IngestConfig)
    #: Multi-tenant serving layer: tenant quotas, QoS fair-share weights,
    #: and scheduler knobs (docs/SERVING.md).  Validated through the same
    #: shared helpers as ``cache`` and ``ingest``.
    serving: ServingConfig = field(default_factory=ServingConfig)
    #: Continuous replication / point-in-time recovery: snapshot cadence
    #: and the off switch (docs/RECOVERY.md).
    recovery: RecoveryConfig = field(default_factory=RecoveryConfig)
    #: Compiled pipelines + mid-query re-optimization: divergence
    #: threshold, replan budget, and the off switches (docs/ADAPTIVE.md).
    adaptive: AdaptiveConfig = field(default_factory=AdaptiveConfig)
    #: Domain lexicons for the out-of-the-box annotator suite; empty
    #: tuples simply disable the corresponding lexicon annotator.
    product_lexicon: Tuple[str, ...] = ()
    location_lexicon: Tuple[str, ...] = ()
    procedure_lexicon: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.n_data_nodes < 1:
            raise ValueError("need at least one data node")
        if self.n_cluster_nodes < 1:
            raise ValueError("need at least one cluster node")
        validate_positive(
            "ApplianceConfig",
            buffer_capacity=self.buffer_capacity,
            batch_size=self.batch_size,
        )
        object.__setattr__(self, "product_lexicon", tuple(self.product_lexicon))
        object.__setattr__(self, "location_lexicon", tuple(self.location_lexicon))
        object.__setattr__(self, "procedure_lexicon", tuple(self.procedure_lexicon))
