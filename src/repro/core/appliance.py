"""The Impliance appliance: the public, single-system-image facade.

This class is what a user of the appliance sees (Section 2.2's "stewing
pot"): throw data in with no preparation, search it immediately, let
asynchronous discovery enrich it, and query the enriched soup through
keyword, faceted, SQL, and graph interfaces.  Internally it wires the
simulated cluster, global indexes, the view catalog, the discovery
engine, execution management, storage management, and rolling upgrades.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Union

from repro.cache import CacheHierarchy
from repro.cluster.network import Network
from repro.cluster.node import NodeKind
from repro.cluster.topology import ImplianceCluster
from repro.core.config import ApplianceConfig
from repro.core.upgrades import UpgradeEngine, UpgradePolicy, UpgradeReport
from repro.discovery.annotators import Annotator, default_annotators
from repro.discovery.mining import PiggybackMiner
from repro.discovery.pipeline import DiscoveryEngine
from repro.discovery.relationships import RelationshipRule
from repro.exec.parallel import ParallelExecutor
from repro.index.facets import FacetDefinition, metadata_facet, source_format_facet
from repro.index.manager import IndexManager
from repro.ingest import IngestPipeline, IngestReport
from repro.model.converters import (
    from_csv,
    from_email,
    from_json_object,
    from_relational_row,
    from_text,
    from_xml,
    sniff_format,
)
from repro.model.document import Document
from repro.model.projection import projection_of
from repro.model.views import RelationalView, ViewCatalog, base_table_view
from repro.obs.telemetry import Telemetry
from repro.query.continuous import SubscriptionManager
from repro.query.engine import QueryEngine
from repro.query.faceted import FacetedSession
from repro.query.materialized import MaterializationManager, MaterializedQuery
from repro.query.graph import GraphQuery
from repro.query.result import QueryResult
from repro.security.policy import Principal
from repro.serving import RequestScheduler, Session
from repro.storage.compression import DictionaryCompressor
from repro.storage.recovery import ContinuousReplicator, RecoveryError, RestoreReport
from repro.storage.replication import ReplicaManager
from repro.storage.store import DocumentStore
from repro.util import IdGenerator
from repro.virt.execmgr import ExecutionManager, Task, TaskClass
from repro.virt.storagemgr import StorageManager


class Impliance:
    """One appliance instance — operational out of the box.

    >>> app = Impliance()
    >>> app.ingest_text("hello world, the widget is great")
    >>> app.discover()
    >>> hits = app.search("widget")

    The constructor performs the entire "deployment": hardware detection,
    software wiring, index/creation, annotator installation.  No further
    setup calls are required before ingesting or querying — the TCO
    experiment counts exactly this.
    """

    def __init__(self, config: Optional[ApplianceConfig] = None) -> None:
        self.config = config if config is not None else ApplianceConfig()
        # Observability first: every other subsystem threads through it.
        self.telemetry = Telemetry(enabled=self.config.telemetry)
        # True while the staged pipeline is committing a batch — the
        # reactive store listeners stand down so each maintenance stage
        # runs exactly once per document (see repro.ingest.pipeline).
        self._pipeline_active = False
        self.cluster = ImplianceCluster(
            n_data=self.config.n_data_nodes,
            n_grid=self.config.n_grid_nodes,
            n_cluster=self.config.n_cluster_nodes,
            network=Network(
                latency_ms=self.config.network_latency_ms,
                bandwidth=self.config.network_bandwidth,
            ),
            buffer_capacity=self.config.buffer_capacity,
        )
        self.cluster.attach_telemetry(self.telemetry)
        # Single-system-image catalog: a global index over everything,
        # plus the view catalog legacy SQL applications use (Figure 2).
        self.indexes = IndexManager(
            facets=[source_format_facet(), metadata_facet("table", "table")],
            telemetry=self.telemetry if self.telemetry.enabled else None,
        )
        self.views = ViewCatalog()
        # The cache hierarchy sits between the engine and everything that
        # can change an answer: every data node's put stream and every
        # chaos/topology event flow into its invalidation bus, and results
        # are only admitted while no storage segment is missing (a
        # degraded answer must never outlive the degradation).
        self.caches = CacheHierarchy(self.config.cache, telemetry=self.telemetry)
        self.caches.admit_results = lambda: self.missing_segments() == 0
        self.engine = QueryEngine(
            self,
            telemetry=self.telemetry,
            vectorized=self.config.vectorized,
            batch_size=self.config.batch_size,
            cache=self.caches,
            adaptive_config=self.config.adaptive,
        )
        # Materializations ride the same bus as the query caches.
        self.materializations = MaterializationManager(self.engine)
        self.materializations.attach_to_bus(self.caches.bus)
        self.executor = ParallelExecutor(
            self.cluster,
            telemetry=self.telemetry,
            batch_size=self.config.batch_size,
        )
        self.miner = PiggybackMiner()

        annotators = default_annotators(
            products=self.config.product_lexicon,
            locations=self.config.location_lexicon,
            procedures=self.config.procedure_lexicon,
        )
        self.discovery = DiscoveryEngine(
            repository=self,
            persist=self._persist_annotation,
            annotators=annotators,
            telemetry=self.telemetry,
        )
        self.background = ExecutionManager(
            self.cluster.grid_nodes or self.cluster.data_nodes,
            background_share=self.config.background_share,
        )
        self.upgrades = UpgradeEngine()
        # The staged write path every public ingest entry point funnels
        # through (a single document is a batch of one).
        self.ingest_pipeline = IngestPipeline(self, self.config.ingest)
        # The serving layer: every session request passes this
        # scheduler's per-tenant admission control and fair-share
        # dispatch (docs/SERVING.md).
        self.serving = RequestScheduler(
            self.config.serving,
            telemetry=self.telemetry if self.telemetry.enabled else None,
        )
        # Standing queries: result deltas pushed per invalidation epoch,
        # delivered through the scheduler as discovery-tier work.
        self.subscriptions = SubscriptionManager(self)
        self.subscriptions.attach_to_bus(self.caches.bus)
        self._default_session: Optional[Session] = None
        self._session_count = 0

        # Continuous replication: every group commit published on the
        # bus is shipped to a per-data-node standby log on a cluster
        # node, so a crashed node restores as snapshot + log replay
        # (docs/RECOVERY.md).  Subscribed after the cache/view tiers:
        # shipping is passive and must not observe half-invalidated
        # state, and a replay never re-publishes.
        self.recovery = ContinuousReplicator(
            self.cluster,
            config=self.config.recovery,
            telemetry=self.telemetry if self.telemetry.enabled else None,
        )
        self.recovery.attach_to_bus(self.caches.bus)

        # Per-data-node storage managers + a miner on each buffer pool.
        # One shared cold-path compressor: the key dictionary is learned
        # across every node's sealed segments, and its byte counters flow
        # onto the shared metrics (storage.compress.*).
        self._storage_managers: List[StorageManager] = []
        storage_telemetry = self.telemetry if self.telemetry.enabled else None
        self.compressor = DictionaryCompressor(telemetry=storage_telemetry)
        data_ids = [n.node_id for n in self.cluster.data_nodes]
        for node in self.cluster.data_nodes:
            assert node.store is not None
            self._storage_managers.append(
                StorageManager(
                    node.store,
                    ReplicaManager(
                        data_ids,
                        telemetry=storage_telemetry,
                        network=self.cluster.network,
                    ),
                    telemetry=storage_telemetry,
                    compressor=self.compressor,
                    network=self.cluster.network,
                )
            )
            self.miner.attach(node.store.buffer_pool)
            node.store.batch_put_listeners.append(self._on_any_put_batch)
            self.caches.attach_to_store(node.store)

        self._ids: Dict[str, IdGenerator] = {}
        self._auto_views: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # Repository protocol (query engine / discovery look through this)
    # ------------------------------------------------------------------
    def documents(self) -> Iterator[Document]:
        return self.cluster.scan_all()

    def document_batches(self, batch_size: int = 256) -> Iterator[List[Document]]:
        """Batched scan feeding the vectorized engine (same order as
        :meth:`documents`)."""
        return self.cluster.scan_all_batches(batch_size)

    def view_column_batches(self, view, batch_size: int = 256):
        """Native columnar scan across the cluster (docs/STORAGE.md):
        still-encoded batches straight off the data nodes' column pages,
        or ``None`` when *view* cannot be answered columnar.  The charged
        document count is the cluster-wide live population — the same
        documents :meth:`documents` would have walked."""
        batches = self.cluster.scan_all_view_batches(view, batch_size)
        if batches is None:
            return None
        return batches, self.cluster.live_doc_count

    def lookup(self, doc_id: str) -> Optional[Document]:
        return self.cluster.lookup(doc_id)

    # ------------------------------------------------------------------
    # internal wiring
    # ------------------------------------------------------------------
    def _on_any_put_batch(self, pairs) -> None:
        """Every persisted document updates the global catalog and joins
        the discovery queue (annotations excluded there).

        This is the *reactive* maintenance path — direct ``store.put``
        calls (replication repair, chaos re-homing, annotation persistence)
        land here.  While the staged pipeline commits a batch it performs
        each stage itself, exactly once per batch, so the listener stands
        down.
        """
        if self._pipeline_active:
            return
        for document, _address in pairs:
            if document.is_tombstone:
                # A delete: drop the document from every index; discovery
                # and view growth have nothing to learn from a tombstone.
                self.indexes.unindex(document.doc_id)
                continue
            self.indexes.index_document(document)
            self.discovery.enqueue(document)
            if document.metadata.get("table"):
                self._maintain_auto_views((document,))

    def _maintain_auto_views(self, documents: Sequence[Document]) -> None:
        """Auto-define/extend the identity views of tabular documents —
        rows are SQL-queryable immediately, with no schema declaration,
        whatever channel they arrived by (relational, CSV, consolidated).

        Batched: columns are unioned per table first, so one ingest batch
        replaces each grown view at most once.  The resulting catalog
        state is identical to per-document maintenance over the same
        sequence.
        """
        per_table: Dict[str, Set[str]] = {}
        for document in documents:
            table = document.metadata.get("table")
            if not table:
                continue
            columns = {
                path[-1]
                for path in projection_of(document).leaf_paths
                if len(path) == 2 and path[0] == table
            }
            if columns:  # content shaped like rows of this table
                per_table.setdefault(table, set()).update(columns)
        for table, columns in per_table.items():
            known = self._auto_views.get(table)
            if known is None:
                self._auto_views[table] = set(columns)
                if table not in self.views:
                    self.views.define(base_table_view(table, table, sorted(columns)))
            elif not columns <= known:
                known |= columns
                self.views.replace(base_table_view(table, table, sorted(known)))

    def _persist_annotation(self, document: Document) -> Document:
        home, _ = self.cluster.ingest(document)
        assert home.store is not None
        # Head lookup goes through the version index, not the buffer
        # pool — persisting must not generate page traffic of its own.
        return home.store.versions.head(document.doc_id)

    def _next_id(self, prefix: str) -> str:
        gen = self._ids.get(prefix)
        if gen is None:
            gen = IdGenerator(prefix)
            self._ids[prefix] = gen
        return gen.next()

    # ------------------------------------------------------------------
    # ingestion: any type, schema, or format — no preparation
    # ------------------------------------------------------------------
    def ingest_document(self, document: Document) -> Document:
        """Persist an already-converted document (routes to its home
        data node, indexes it, queues discovery) — a staged batch of
        one."""
        return self.ingest_pipeline.run_documents((document,))[0]

    def _convert(
        self,
        payload: Any,
        fmt: str,
        *,
        table: Optional[str] = None,
        doc_id: Optional[str] = None,
        title: str = "",
        primary_key: Optional[Sequence[str]] = None,
        metadata: Optional[Mapping[str, Any]] = None,
        delimiter: str = ",",
    ) -> List[Document]:
        """Parse/convert stage: normalize one payload of *fmt* into model
        documents (CSV fans out to one per record)."""
        if fmt == "document":
            return [payload]
        if fmt == "relational":
            if table is None:
                raise ValueError("relational ingest requires table=")
            the_id = doc_id or self._next_id(f"row-{table}")
            return [from_relational_row(the_id, table, payload, primary_key)]
        if fmt == "json":
            the_id = doc_id or self._next_id("doc")
            return [from_json_object(the_id, payload, metadata)]
        if fmt == "xml":
            the_id = doc_id or self._next_id("xml")
            return [from_xml(the_id, payload)]
        if fmt == "email":
            the_id = doc_id or self._next_id("eml")
            return [from_email(the_id, payload)]
        if fmt == "csv":
            if table is None:
                raise ValueError("CSV ingest requires table=")
            prefix = doc_id or self._next_id(f"csv-{table}")
            return list(from_csv(prefix, table, payload, delimiter=delimiter))
        if fmt == "text":
            the_id = doc_id or self._next_id("txt")
            return [from_text(the_id, payload, title)]
        raise ValueError(f"unknown ingest format {fmt!r}")

    def ingest(
        self,
        payload: Any,
        format: Optional[str] = None,
        *,
        table: Optional[str] = None,
        doc_id: Optional[str] = None,
        title: str = "",
        primary_key: Optional[Sequence[str]] = None,
        metadata: Optional[Mapping[str, Any]] = None,
        delimiter: str = ",",
    ) -> Union[Document, List[Document]]:
        """Throw anything in the pot: the single ingestion entry point.

        *payload* may be a :class:`Document`, a mapping (a relational row
        when *table* is given, a JSON tree otherwise), or a string of XML,
        e-mail, CSV (*table* required), or free text.  When *format* is
        omitted the payload is sniffed (:func:`sniff_format`); pass one of
        ``"document"``, ``"relational"``, ``"json"``, ``"xml"``,
        ``"email"``, ``"csv"``, ``"text"`` to override.

        Returns the persisted :class:`Document` — or a list of them for
        CSV, which yields one document per record.
        """
        fmt = format or sniff_format(payload, table=table)
        with self.telemetry.span("ingest", format=fmt) as span:
            documents = self._convert(
                payload,
                fmt,
                table=table,
                doc_id=doc_id,
                title=title,
                primary_key=primary_key,
                metadata=metadata,
                delimiter=delimiter,
            )
            stored = self.ingest_pipeline.run_documents(documents)
            result: Union[Document, List[Document]] = (
                stored if fmt == "csv" else stored[0]
            )
            span.tag("docs", len(stored))
        self.telemetry.inc(f"ingest.format.{fmt}")
        return result

    def ingest_many(
        self,
        payloads: Iterable[Any],
        format: Optional[str] = None,
        *,
        table: Optional[str] = None,
        delimiter: str = ",",
    ) -> List[Document]:
        """Bulk ingest through the staged pipeline (the fast path).

        Each payload is converted exactly as :meth:`ingest` would convert
        it (per-payload sniffing when *format* is omitted); the resulting
        documents then flow through the batched write path — group-commit
        storage writes sharded across the data nodes, one index
        maintenance round and one cache invalidation epoch per batch.
        Returns every stored document in arrival order (CSV payloads fan
        out in place).
        """
        documents: List[Document] = []
        formats: Dict[str, int] = {}
        for payload in payloads:
            fmt = format or sniff_format(payload, table=table)
            documents.extend(
                self._convert(payload, fmt, table=table, delimiter=delimiter)
            )
            formats[fmt] = formats.get(fmt, 0) + 1
        with self.telemetry.span("ingest.many", payloads=len(documents)) as span:
            stored = self.ingest_pipeline.run_documents(documents)
            span.tag("docs", len(stored))
        for fmt, count in formats.items():
            self.telemetry.inc(f"ingest.format.{fmt}", count)
        return stored

    def ingest_stream(
        self,
        payloads: Iterable[Any],
        format: Optional[str] = None,
        *,
        table: Optional[str] = None,
        delimiter: str = ",",
    ) -> "IngestReport":
        """Streaming ingest under the configured admission policy.

        Like :meth:`ingest_many` but honors the staging queue's admission
        control: a ``"shed"``-configured appliance may drop documents
        when the queue is full rather than stalling the producer.  The
        returned :class:`repro.ingest.IngestReport` accounts for every
        offered, stored, and shed document.
        """
        def documents() -> Iterator[Document]:
            for payload in payloads:
                fmt = format or sniff_format(payload, table=table)
                self.telemetry.inc(f"ingest.format.{fmt}")
                yield from self._convert(
                    payload, fmt, table=table, delimiter=delimiter
                )

        with self.telemetry.span("ingest.stream") as span:
            report = self.ingest_pipeline.run_stream(documents())
            span.tag("docs", report.stored)
        return report

    def _shim_ingest(
        self, old: str, hint: str, payload: Any, fmt: str, **kwargs: Any
    ) -> Union[Document, List[Document]]:
        """The one internal entry every deprecated ``ingest_*`` shim goes
        through: warn once per call (attributed to the caller's caller),
        then delegate to :meth:`ingest` — results are byte-identical to a
        direct ``ingest(payload, fmt, ...)`` call."""
        warnings.warn(
            f"Impliance.{old}() is deprecated; use {hint}",
            DeprecationWarning,
            stacklevel=3,
        )
        return self.ingest(payload, fmt, **kwargs)

    def ingest_row(
        self,
        table: str,
        row: Mapping[str, Any],
        primary_key: Optional[Sequence[str]] = None,
        doc_id: Optional[str] = None,
    ) -> Document:
        """Deprecated: use :meth:`ingest` with ``table=``."""
        return self._shim_ingest(
            "ingest_row", "ingest(row, table=...)", row, "relational",
            table=table, primary_key=primary_key, doc_id=doc_id,
        )

    def ingest_text(self, text: str, title: str = "", doc_id: Optional[str] = None) -> Document:
        """Deprecated: use :meth:`ingest`."""
        return self._shim_ingest(
            "ingest_text", "ingest(text)", text, "text", title=title, doc_id=doc_id
        )

    def ingest_email(self, raw: str, doc_id: Optional[str] = None) -> Document:
        """Deprecated: use :meth:`ingest`."""
        return self._shim_ingest("ingest_email", "ingest(raw)", raw, "email", doc_id=doc_id)

    def ingest_xml(self, payload: str, doc_id: Optional[str] = None) -> Document:
        """Deprecated: use :meth:`ingest`."""
        return self._shim_ingest("ingest_xml", "ingest(payload)", payload, "xml", doc_id=doc_id)

    def ingest_csv(self, table: str, payload: str) -> List[Document]:
        """Deprecated: use :meth:`ingest` with ``table=``."""
        return self._shim_ingest(
            "ingest_csv", "ingest(payload, table=...)", payload, "csv", table=table
        )

    def ingest_json(self, obj: Any, doc_id: Optional[str] = None,
                    metadata: Optional[Mapping[str, Any]] = None) -> Document:
        """Deprecated: use :meth:`ingest`."""
        return self._shim_ingest(
            "ingest_json", "ingest(obj)", obj, "json", doc_id=doc_id, metadata=metadata
        )

    def update_document(self, doc_id: str, content: Any) -> Document:
        """Versioned update through the consistency group (never in
        place, Section 4)."""
        applied, _ = self.executor.cluster_update({doc_id: lambda _old: content})
        if applied != 1:
            raise LookupError(f"no document {doc_id!r} to update")
        updated = self.lookup(doc_id)
        assert updated is not None
        return updated

    def delete_document(self, doc_id: str) -> Document:
        """Delete *doc_id* by appending a tombstone version (Section 4:
        never in place — history and snapshots survive).

        The tombstone flows down the invalidation bus as a delete change:
        indexes drop the document, materialized views subtract its rows
        incrementally, subscriptions see it leave their results, and
        ``lookup``/scans answer as if it were never stored.  Returns the
        tombstone; raises LookupError for an unknown document.
        """
        for node in self.cluster.data_nodes:
            if node.store is not None and node.store.contains(doc_id):
                tombstone = node.store.delete(doc_id)
                self.telemetry.inc("ingest.deletes")
                return tombstone
        raise LookupError(f"no document {doc_id!r} to delete")

    # ------------------------------------------------------------------
    # discovery control
    # ------------------------------------------------------------------
    def discover(self, budget: Optional[int] = None) -> int:
        """Run discovery synchronously (drain, or up to *budget* docs)."""
        if budget is None:
            return self.discovery.drain()
        return self.discovery.run_pass(budget)

    def schedule_discovery(self, batch: int = 32, cost_ms_per_doc: float = 1.0) -> int:
        """Queue the current backlog as background tasks; returns the
        number of tasks submitted.  Use :meth:`run_background` to make
        progress alongside interactive work."""
        backlog = self.discovery.backlog
        submitted = 0
        while backlog > 0:
            todo = min(batch, backlog)
            self.background.submit(
                Task(
                    label="discovery-pass",
                    cost_ms=todo * cost_ms_per_doc,
                    task_class=TaskClass.BACKGROUND,
                    action=lambda todo=todo: self.discovery.run_pass(todo),
                )
            )
            backlog -= todo
            submitted += 1
        return submitted

    def run_background(self, quantum_ms: float = 100.0) -> None:
        self.background.run_quantum(quantum_ms)

    def add_annotator(self, annotator: Annotator) -> None:
        self.discovery.annotators.append(annotator)

    def add_relationship_rule(self, rule: RelationshipRule) -> None:
        self.discovery.add_rule(rule)

    def consolidate(
        self,
        source_docs: Sequence[Document],
        target_docs: Sequence[Document],
        target_root: str,
        dedup: bool = True,
    ) -> List[Document]:
        """Schema-map *source_docs* into the target schema and ingest the
        consolidated DERIVED documents (Section 3.2: purchase orders "can
        all be searched together" whatever channel they arrived by).

        With *dedup* (default), a source record whose mapped values match
        an existing target record is recognized as the *same business
        object*: no derived copy is ingested — aggregates must not
        "double-count revenues contained in diverse sources" (§2.2) —
        and a ``same_as`` edge links the channels for provenance.

        Returns the ingested consolidated documents (duplicates excluded).
        """
        from repro.discovery.schemamapping import SchemaMapper
        from repro.index.joins import JoinEdge

        mapper = SchemaMapper()
        targets = list(target_docs)
        mapping = mapper.propose(list(source_docs), targets, target_root)
        consolidated = []
        for document in source_docs:
            duplicate_of = None
            if dedup:
                duplicate_of = mapper.find_duplicate(document, mapping, targets)
            if duplicate_of is not None:
                self.indexes.joins.add(
                    JoinEdge("same_as", document.doc_id, duplicate_of, confidence=0.9)
                )
                continue
            derived = mapper.consolidate(
                document, mapping, self._next_id(f"cons-{target_root}")
            )
            consolidated.append(self.ingest_document(derived))
        return consolidated

    # ------------------------------------------------------------------
    # sessions — the serving layer's client API (docs/SERVING.md)
    # ------------------------------------------------------------------
    def connect(
        self,
        principal: Optional[Principal] = None,
        *,
        qos: Optional[str] = None,
        policy=None,
        audit=None,
        tenant: Optional[str] = None,
    ) -> Session:
        """Open a tenant-bound :class:`~repro.serving.Session`.

        Every request issued on the session is attributed to the
        principal's tenant, admitted under the serving layer's quotas
        and QoS fair share, and — when *policy* is given — enforced on
        the hot path at the repository boundary.  *qos* is one of
        ``"interactive"``, ``"batch"``, ``"discovery"`` (default from
        :class:`~repro.serving.ServingConfig`).
        """
        if principal is None:
            principal = Principal("default", ("system",))
        self._session_count += 1
        return Session(
            self,
            principal,
            qos if qos is not None else self.config.serving.default_qos,
            policy=policy,
            audit=audit,
            tenant=tenant,
            session_id=self._session_count,
        )

    def default_session(self) -> Session:
        """The implicit session the bare query entry points delegate to:
        principal ``default``, the default QoS tier, no policy — results
        are byte-identical to the pre-session entry points."""
        if self._default_session is None or self._default_session.closed:
            self._default_session = self.connect()
        return self._default_session

    # ------------------------------------------------------------------
    # query interfaces — thin shims over the implicit default session.
    # Deprecation path (like the PR 5 ingest_* shims): prefer
    # ``app.connect(...).search(...)``; these remain for existing
    # callers and delegate verbatim — see docs/SERVING.md for the
    # migration guide.
    # ------------------------------------------------------------------
    def _flag_degradation(self, result: QueryResult) -> QueryResult:
        """Graceful degradation: a query issued while replicas are
        unreachable still answers, but the result is flagged partial
        with the count of segments that had no live copy."""
        missing = self.missing_segments()
        if missing:
            result.mark_degraded(missing)
            self.telemetry.inc("query.degraded")
        return result

    def search(self, query: str, top_k: int = 10) -> QueryResult:
        """Keyword search — works out of the box (Section 3.2.1).

        Deprecated in favor of ``connect().search()``; delegates to the
        implicit default session (byte-identical results).
        """
        return self.default_session().search(query, top_k=top_k)

    def sql(
        self,
        query: str,
        planner: str = "simple",
        statistics=None,
        adaptive: bool = False,
    ) -> QueryResult:
        """SQL over views (Figure 2's legacy-application path).

        Deprecated in favor of ``connect().sql()``; delegates to the
        implicit default session (byte-identical results).
        """
        return self.default_session().sql(
            query, planner=planner, statistics=statistics, adaptive=adaptive
        )

    def faceted(self, query: Optional[str] = None) -> FacetedSession:
        """Start a guided-search session.

        Deprecated in favor of ``connect().faceted()``; delegates to the
        implicit default session.
        """
        return self.default_session().faceted(query)

    def graph(self) -> GraphQuery:
        """The graph/connection query interface.

        Deprecated in favor of ``connect().graph()``; delegates to the
        implicit default session.
        """
        return self.default_session().graph()

    def connections(
        self,
        source: str,
        target: str,
        max_hops: int = 4,
        relations: Optional[Sequence[str]] = None,
    ) -> QueryResult:
        """Graph search through the unified result surface: how is
        *source* connected to *target*?  Empty (falsy) result when no
        path exists; otherwise ``result.connection`` holds the
        :class:`ConnectionResult` and ``result.rows`` the edge list.
        """
        return self.default_session().connections(
            source, target, max_hops=max_hops, relations=relations
        )

    def as_of(self, ts: int):
        """Time-travel: a queryable snapshot of the whole appliance at
        logical time *ts* (Section 4 versioning, operationalized).

        >>> snapshot = app.as_of(earlier_ts)
        >>> snapshot.sql("SELECT * FROM orders")
        """
        from repro.query.snapshot import SnapshotRepository

        return SnapshotRepository(self, ts, views=self.views)

    def find(self, query, top_k: int = 10) -> QueryResult:
        """Hybrid search: one conjunctive query over content, structure,
        values, facets, and annotations (Section 3.2's unified search).

        *query* is a :class:`repro.query.hybrid.HybridQuery`.  Delegates
        to the implicit default session like the other entry points.
        """
        return self.default_session().find(query, top_k=top_k)

    def define_view(self, view: RelationalView) -> None:
        self.views.define(view)
        # New catalog state can change what plans are valid and what a
        # cached result would contain; flush through the bus.
        self.caches.on_catalog_change()

    def materialize(self, name: str, sql: str) -> MaterializedQuery:
        """Define a named materialized query; it refreshes lazily and is
        invalidated through the shared cache bus like every other tier."""
        return self.materializations.define(name, sql)

    def secure_session(self, principal, policy, audit=None):
        """A policy-scoped, audited view of the appliance for one
        principal (Section 4 security extension).  All query interfaces
        work on the returned session exactly as on the appliance.

        Prefer :meth:`connect` with ``policy=`` — it layers the same
        enforcement under the serving scheduler's admission control.
        """
        from repro.security.enforcement import SecureSession

        return SecureSession(self, principal, policy, audit)

    def define_facet(self, definition: FacetDefinition) -> None:
        self.indexes.facets.define(definition)
        # Back-fill the facet over already-stored documents.
        for document in self.documents():
            self.indexes.facets.add(document)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def upgrade_software(self, version: str, policy: Optional[UpgradePolicy] = None) -> UpgradeReport:
        engine = UpgradeEngine(policy) if policy is not None else self.upgrades
        return engine.apply(self.cluster.nodes(), version)

    def fail_node(self, node_id: str) -> int:
        """Inject a node failure; repair keeps the data available.

        The replica managers re-plan placements, and the lost node's
        version chains are re-homed onto surviving data nodes.  (In the
        simulation the bytes are read from the dead node's store object,
        standing in for the surviving replica copies the placement layer
        tracked — the observable behaviour is identical: every document
        remains queryable.)  Returns the number of chains re-homed.
        """
        victim = self.cluster.node(node_id)
        chains = []
        if victim.store is not None:
            chains = [
                list(victim.store.history(doc_id))
                for doc_id in victim.store.doc_ids()
            ]
        self.cluster.fail_node(node_id)
        for manager in self._storage_managers:
            try:
                manager.on_node_failure(node_id)
            except LookupError:
                pass  # this manager's replica set never used that node
        rehomed = 0
        for chain in chains:
            home = self.cluster.home_of(chain[0].doc_id)
            assert home.store is not None
            if not home.store.contains(chain[0].doc_id):
                home.store.import_chain(chain)
                rehomed += 1
        # After re-homing, not before: results computed mid-repair must
        # not survive the flush that announces the new topology.
        self.caches.bus.publish_node_event(node_id, "crash")
        return rehomed

    def recover_node(self, node_id: str) -> int:
        """Bring a failed node back; repairs drain onto it autonomically.

        Returns the number of repair actions the storage managers took
        now that the capacity is back.
        """
        node = self.cluster.recover_node(node_id)
        node.restore_speed()
        repairs = 0
        if node.kind is NodeKind.DATA:
            for manager in self._storage_managers:
                try:
                    repairs += len(manager.on_node_added(node_id))
                except ValueError:
                    # Manager already counts the node as live; just sweep
                    # its outstanding deficits.
                    repairs += len(manager.repair_outstanding())
        self.caches.bus.publish_node_event(node_id, "recover")
        return repairs

    def restore(self, node_id: str) -> RestoreReport:
        """Point-in-time recovery of a failed data node from its standby
        log: rebuild the store as ``snapshot + log[lsn..]`` replay,
        catch the chains up from surviving replicas, prove digest
        identity against them, and bring the node back into service.

        The rebuilt :class:`DocumentStore` re-derives everything from
        the replayed versions — chains, tombstones, page layout, the
        columnar mirror — and a fresh node-local index populates during
        replay.  Every chain is verified against a surviving replica's
        version records (version, timestamp, content digest); any
        divergence raises :class:`RecoveryError` *before* the node
        serves a query.  Versions committed to the re-homed copies while
        the node was down are appended during catch-up, so the restored
        node returns current, not stale.

        Simulated time is charged for the standby transfer and the
        replay CPU; the returned :class:`RestoreReport` carries the
        finish time so benchmarks can measure RTO against the crash
        instant.  Raises LookupError when replication is disabled (there
        is no standby to restore from), and ValueError for a live or
        non-data node.  A node that never committed anything restores to
        an empty store.
        """
        node = self.cluster.node(node_id)
        if node.kind is not NodeKind.DATA:
            raise ValueError(f"{node_id} is not a data node")
        if node.alive:
            raise ValueError(f"{node_id} is alive; restore targets a failed node")
        started = self.cluster.makespan()
        # Buffered shipments first: anything committed before the crash
        # that a partition delayed must reach the standby before replay.
        self.recovery.flush_pending()
        standby = self.recovery.standby(node_id)
        restore_bytes = standby.restore_bytes()

        rebuilt = DocumentStore(
            clock=self.cluster.clock, buffer_capacity=self.config.buffer_capacity
        )
        # The node-local index attaches before replay so it populates
        # incrementally; global listeners (bus, catalog, caches) attach
        # only after — a replay must not re-publish or re-ship.
        local_indexes = IndexManager(rebuilt)
        replayed, records, snapshot_lsn = self.recovery.replay_into(rebuilt, node_id)
        caught_up, verified, unmatched = self._catch_up_from_survivors(rebuilt)

        old_store = node.store
        node.store = rebuilt
        node.indexes = local_indexes
        manager = next(
            (m for m in self._storage_managers if m.store is old_store), None
        )
        storage_telemetry = self.telemetry if self.telemetry.enabled else None
        replicas = ReplicaManager(
            [n.node_id for n in self.cluster.nodes_of(NodeKind.DATA, alive_only=False)],
            telemetry=storage_telemetry,
            network=self.cluster.network,
        )
        for other in self.cluster.nodes_of(NodeKind.DATA, alive_only=False):
            if not other.alive and other.node_id != node_id:
                replicas.on_node_failure(other.node_id)
        if manager is not None:
            manager.adopt_store(rebuilt, replicas)
        else:
            manager = StorageManager(
                rebuilt,
                replicas,
                telemetry=storage_telemetry,
                compressor=self.compressor,
                network=self.cluster.network,
            )
            self._storage_managers.append(manager)
        self.miner.attach(rebuilt.buffer_pool)
        rebuilt.batch_put_listeners.append(self._on_any_put_batch)
        self.caches.attach_to_store(rebuilt)

        transfer_ms = self.cluster.network.transfer(
            restore_bytes, standby.standby_id, node_id
        )
        repairs = self.recover_node(node_id)
        from repro.cluster.topology import INGEST_CPU_MS_PER_KB

        replay_cost_ms = INGEST_CPU_MS_PER_KB * restore_bytes / 1024.0
        finish = node.run(replay_cost_ms, after=started + transfer_ms, label="restore")
        manager.place_open_segments()
        # The rebuilt store restarts its LSN counter: re-base the standby
        # on a fresh snapshot so shipping resumes with aligned cursors.
        self.recovery.resync(node_id)
        self.recovery.stats.restores += 1
        self.telemetry.inc("recovery.restores")
        return RestoreReport(
            node_id=node_id,
            chains=rebuilt.doc_count,
            versions_replayed=replayed,
            versions_caught_up=caught_up,
            records_replayed=records,
            snapshot_lsn=snapshot_lsn,
            verified_chains=verified,
            unmatched_chains=unmatched,
            repairs=repairs,
            transfer_ms=transfer_ms,
            started_ms=started,
            finish_ms=finish,
        )

    def _catch_up_from_survivors(self, rebuilt: DocumentStore):
        """Verify every replayed chain against a surviving replica and
        append the versions committed while the node was down.

        ``fail_node`` re-homes the victim's chains onto survivors, so
        each rebuilt chain should be a *prefix* of some surviving chain
        (equal when nothing changed during the outage).  Divergence —
        same version number, different timestamp or content digest — is
        unrecoverable corruption and raises :class:`RecoveryError`.
        Returns ``(versions caught up, chains verified, chains with no
        surviving copy)``.
        """
        caught_up = verified = unmatched = 0
        for doc_id in rebuilt.doc_ids():
            ours = rebuilt.history(doc_id).records()
            surviving = None
            for other in self.cluster.data_nodes:  # the victim is dead: excluded
                if other.store is not None and other.store.contains(doc_id):
                    surviving = other.store.history(doc_id)
                    break
            if surviving is None:
                unmatched += 1
                continue
            theirs = surviving.records()
            if theirs[: len(ours)] != ours:
                raise RecoveryError(
                    f"restored chain {doc_id!r} diverges from the surviving "
                    f"replica (replayed {len(ours)} versions, replica holds "
                    f"{len(theirs)})"
                )
            for document in list(surviving)[len(ours):]:
                if document.ingest_ts > 0:
                    rebuilt.clock.observe(document.ingest_ts)
                rebuilt.put(document)
                caught_up += 1
            verified += 1
        return caught_up, verified, unmatched

    def missing_segments(self) -> int:
        """Storage segments with zero live replicas right now — the
        degradation signal every query entry point reports."""
        return sum(len(m.data_loss_risk()) for m in self._storage_managers)

    def probe_penalty(self) -> float:
        """Current index-probe cost multiplier (1.0 = healthy cluster).

        Index probes land on whichever data node owns the key, so a
        chaos-degraded node inflates every probe by its slowdown.  The
        query engine folds this into the cost model and the mid-query
        re-optimizer's checkpoints (docs/ADAPTIVE.md)."""
        return self.executor.slowdown_factor()

    def chaos(self, plan):
        """Bind a seeded :class:`repro.chaos.FaultPlan` to this appliance.

        Returns the :class:`repro.chaos.ChaosController` that will apply
        the plan's faults against this cluster and count every injection,
        retry, and repair in the appliance telemetry.
        """
        from repro.chaos.controller import ChaosController

        return ChaosController(
            self.cluster, plan, appliance=self, telemetry=self.telemetry
        )

    def health(self) -> Dict[str, Any]:
        """Single-pane health report: topology, storage, discovery."""
        inventory = self.cluster.inventory
        storage_reports = [m.service_report() for m in self._storage_managers]
        return {
            "topology": {
                "data": inventory.data_nodes,
                "grid": inventory.grid_nodes,
                "cluster": inventory.cluster_nodes,
            },
            "documents": self.cluster.doc_count,
            "discovery_backlog": self.discovery.backlog,
            "annotations": self.discovery.stats.annotations_created,
            "join_edges": self.indexes.joins.edge_count,
            "under_replicated": sum(
                len(r["under_replicated"]) for r in storage_reports
            ),
            "missing_segments": self.missing_segments(),
            "admin_actions": 0,
        }

    def stats(self) -> Dict[str, Any]:
        """One snapshot of everything the telemetry layer observed, plus
        the appliance facts ``health()`` reports: counters, gauges,
        histograms, span timings, document/annotation totals.  Feed it to
        :func:`repro.obs.format_snapshot` for a printable report.
        """
        snapshot = self.telemetry.snapshot()
        snapshot["appliance"] = {
            "documents": self.cluster.doc_count,
            "discovery_backlog": self.discovery.backlog,
            "annotations": self.discovery.stats.annotations_created,
            "join_edges": self.indexes.joins.edge_count,
        }
        snapshot["cache"] = self.caches.stats()
        snapshot["serving"] = self.serving.stats()
        snapshot["storage"] = self.storage_stats()
        snapshot["recovery"] = self.recovery.report()
        snapshot["adaptive"] = self.engine.adaptive_stats()
        return snapshot

    def storage_stats(self) -> Dict[str, Any]:
        """Aggregate storage-layer report across the data nodes: row
        bytes vs columnar raw/encoded bytes (the native page format's
        compression ratio, docs/STORAGE.md), buffer-pool byte traffic
        split encoded/decoded, and the cold-path compressor's stage
        counters."""
        live_docs = 0
        row_bytes = 0
        columnar_rows = 0
        columnar_dead = 0
        columnar_irregular = 0
        columnar_raw = 0
        columnar_encoded = 0
        pool_encoded = 0
        pool_decoded = 0
        pool_resident = 0
        for node in self.cluster.data_nodes:
            store = node.store
            assert store is not None
            live_docs += store.live_doc_count
            row_bytes += store.stats.bytes_stored
            for table in store.column_store.tables():
                group = store.column_store.group(table)
                assert group is not None
                columnar_rows += group.rows_appended
                columnar_dead += group.dead_rows
                columnar_irregular += group.irregular_rows
                columnar_raw += group.raw_bytes
                columnar_encoded += group.encoded_bytes()
            pool_encoded += store.buffer_pool.stats.bytes_read_encoded
            pool_decoded += store.buffer_pool.stats.bytes_read_decoded
            pool_resident += store.buffer_pool.resident_bytes
        ratio = columnar_encoded / columnar_raw if columnar_raw else 1.0
        if self.telemetry.enabled:
            self.telemetry.set_gauge("storage.columnar.bytes_raw", columnar_raw)
            self.telemetry.set_gauge("storage.columnar.bytes_encoded", columnar_encoded)
            self.telemetry.set_gauge("storage.columnar.ratio", ratio)
        compress = self.compressor.stats
        return {
            "live_documents": live_docs,
            "row_bytes_stored": row_bytes,
            "columnar": {
                "rows": columnar_rows,
                "dead_rows": columnar_dead,
                "irregular_rows": columnar_irregular,
                "bytes_raw": columnar_raw,
                "bytes_encoded": columnar_encoded,
                "ratio": ratio,
            },
            "buffer_pool": {
                "bytes_read_encoded": pool_encoded,
                "bytes_read_decoded": pool_decoded,
                "resident_bytes": pool_resident,
            },
            "compress": {
                "calls": compress.calls,
                "bytes_in": compress.bytes_in,
                "bytes_out": compress.bytes_out,
                "ratio": compress.ratio,
            },
        }

    @property
    def doc_count(self) -> int:
        return self.cluster.doc_count
