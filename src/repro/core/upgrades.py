"""Rolling software upgrades under an availability policy (Section 3.1).

"Impliance software upgrades are automatically pushed to the nodes and
installed automatically according to user-modifiable policies that
balance the performance and availability impact of doing the upgrade
with the hope for security and reliability gains."

The upgrade engine partitions the node set into waves such that no more
than the policy's fraction of any flavor is offline at once, charges the
install downtime to each node's timeline, and reports the schedule —
zero administrator actions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.cluster.node import NodeKind, SimNode

#: Simulated time to install and restart one node's software stack.
DEFAULT_INSTALL_MS = 500.0


@dataclass(frozen=True)
class UpgradePolicy:
    """How aggressively upgrades may take capacity offline."""

    #: Maximum fraction of each node flavor offline simultaneously.
    max_offline_fraction: float = 0.25
    #: Per-node install time.
    install_ms: float = DEFAULT_INSTALL_MS

    def __post_init__(self) -> None:
        if not 0.0 < self.max_offline_fraction <= 1.0:
            raise ValueError("max_offline_fraction must be in (0, 1]")
        if self.install_ms <= 0:
            raise ValueError("install time must be positive")


@dataclass
class UpgradeReport:
    """What a rolling upgrade did."""

    version: str
    waves: List[List[str]] = field(default_factory=list)
    finish_ms: float = 0.0

    @property
    def wave_count(self) -> int:
        return len(self.waves)

    @property
    def nodes_upgraded(self) -> int:
        return sum(len(w) for w in self.waves)


class UpgradeEngine:
    """Plans and applies rolling upgrades over a node set."""

    def __init__(self, policy: UpgradePolicy = UpgradePolicy()) -> None:
        self.policy = policy
        self.installed_version: Dict[str, str] = {}

    def plan_waves(self, nodes: Sequence[SimNode]) -> List[List[SimNode]]:
        """Partition nodes into waves respecting per-flavor availability.

        Each flavor contributes at most ``ceil(count * fraction)`` nodes
        per wave, and at least one (otherwise single-node flavors could
        never upgrade).
        """
        by_kind: Dict[NodeKind, List[SimNode]] = {}
        for node in nodes:
            if node.alive:
                by_kind.setdefault(node.kind, []).append(node)
        waves: List[List[SimNode]] = []
        for kind, members in sorted(by_kind.items(), key=lambda kv: kv[0].value):
            members.sort(key=lambda n: n.node_id)
            per_wave = max(1, math.floor(len(members) * self.policy.max_offline_fraction))
            for i in range(0, len(members), per_wave):
                chunk = members[i:i + per_wave]
                if i // per_wave < len(waves):
                    waves[i // per_wave].extend(chunk)
                else:
                    waves.append(list(chunk))
        return waves

    def apply(self, nodes: Sequence[SimNode], version: str, after: float = 0.0) -> UpgradeReport:
        """Run a rolling upgrade; waves execute sequentially, nodes
        within a wave in parallel."""
        report = UpgradeReport(version=version)
        wave_start = after
        for wave in self.plan_waves(nodes):
            wave_finish = wave_start
            for node in wave:
                finish = node.run(self.policy.install_ms, wave_start, label=f"upgrade-{version}")
                self.installed_version[node.node_id] = version
                wave_finish = max(wave_finish, finish)
            report.waves.append([n.node_id for n in wave])
            wave_start = wave_finish
        report.finish_ms = wave_start
        return report

    def versions(self) -> Dict[str, str]:
        return dict(self.installed_version)
